//! # chariots
//!
//! Umbrella crate for the Rust reproduction of *Chariots: A Scalable Shared
//! Log for Data Management in Multi-Datacenter Cloud Environments* (Nawab,
//! Arora, Agrawal, El Abbadi — EDBT 2015).
//!
//! The stack, bottom to top:
//!
//! | Layer | Crate | Paper section |
//! |---|---|---|
//! | Data model (ids, records, tags, causal cuts) | [`types`] | §3 |
//! | Simulated cluster substrate | [`simnet`] | §7 (hardware substitution) |
//! | FLStore: intra-DC distributed log, post-assignment | [`flstore`] | §5 |
//! | Chariots: geo-replicated causal pipeline | [`core`] | §6 |
//! | CORFU sequencer baseline | [`corfu`] | §1, §2.1 |
//! | Hyksos causal KV store | [`hyksos`] | §4.1 |
//! | Multi-DC event processing | [`streamproc`] | §4.2 |
//! | Message Futures / Helios transactions | [`msgfutures`] | §4.3 |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure (regenerate with `cargo run -p chariots-bench --bin harness`).
//!
//! ## Quickstart
//!
//! ```
//! use chariots::prelude::*;
//! use std::time::Duration;
//!
//! // A two-datacenter deployment with fast test timings.
//! let mut cfg = ChariotsConfig::new().datacenters(2);
//! cfg.propagation_interval = Duration::from_millis(2);
//! cfg.batcher_flush_interval = Duration::from_millis(1);
//! cfg.batcher_flush_threshold = 1;
//! cfg.flstore = FLStoreConfig::new()
//!     .maintainers(2)
//!     .batch_size(8)
//!     .gossip_interval(Duration::from_millis(1));
//! let cluster = ChariotsCluster::launch(
//!     cfg,
//!     StageStations::default(),
//!     LinkConfig::with_latency(Duration::from_millis(1)),
//! ).unwrap();
//!
//! let mut client = cluster.client(DatacenterId(0));
//! let (toid, lid) = client.append(TagSet::new(), "hello").unwrap();
//! assert_eq!(toid.as_u64(), 1);
//! assert!(cluster.wait_for_replication(1, Duration::from_secs(10)));
//! cluster.shutdown();
//! ```

pub use chariots_core as core;
pub use chariots_corfu as corfu;
pub use chariots_flstore as flstore;
pub use chariots_hyksos as hyksos;
pub use chariots_msgfutures as msgfutures;
pub use chariots_simnet as simnet;
pub use chariots_streamproc as streamproc;
pub use chariots_types as types;

/// The most commonly used items across the stack.
pub mod prelude {
    pub use chariots_core::{
        AbstractCluster, AbstractDc, Actuator, AutoscaleConfig, AutoscaleOutcome, Autoscaler,
        AutoscalerHandle, ChariotsClient, ChariotsCluster, ChariotsDc, ScaleDecision, ScaleStage,
        StagePolicy, StageStations,
    };
    pub use chariots_flstore::{AppendPayload, FLStore, FLStoreClient};
    pub use chariots_hyksos::{HyksosClient, Materializer, PutBatch, Versioned};
    pub use chariots_msgfutures::{CommitPolicy, Outcome, Transaction, TxnManager};
    pub use chariots_simnet::{LinkConfig, StationConfig};
    pub use chariots_streamproc::{Joiner, Publisher, Reader};
    pub use chariots_types::{
        ChariotsConfig, ChariotsError, Condition, DatacenterId, Entry, FLStoreConfig, LId,
        ReadRule, Record, StageCounts, TOId, Tag, TagSet, TagValue, ValuePredicate, VersionVector,
    };
}
