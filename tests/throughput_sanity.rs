//! A coarse performance regression guard: the uncapped pipeline must
//! sustain well above the simulated machine rates, proving the
//! service-station pacing (not software overhead) governs every macro
//! experiment.

mod common;

use std::time::{Duration, Instant};

use chariots::prelude::*;

#[test]
fn uncapped_pipeline_sustains_bulk_appends() {
    let mut cfg = common::fast_cfg(1);
    cfg.batcher_flush_threshold = 64;
    let cluster = ChariotsCluster::launch(
        cfg,
        StageStations::default(),
        LinkConfig::default(),
    )
    .unwrap();
    let mut client = cluster.client(DatacenterId(0));
    const N: u64 = 30_000;
    let t0 = Instant::now();
    for i in 0..N {
        client
            .append_async(TagSet::new(), format!("r{i}"))
            .unwrap();
    }
    assert!(
        cluster.wait_for_replication(N, Duration::from_secs(30)),
        "pipeline never digested the burst"
    );
    let rate = N as f64 / t0.elapsed().as_secs_f64();
    // The bench machines are simulated at 13k rec/s; the real software
    // path must clear that with a wide margin or the capacity model is
    // not what the experiments measure.
    assert!(
        rate > 26_000.0,
        "pipeline too slow: {rate:.0} rec/s (needs > 2× the simulated machine rate)"
    );
    cluster.shutdown();
}

#[test]
fn uncapped_flstore_sustains_bulk_appends() {
    let store = FLStore::launch(
        DatacenterId(0),
        FLStoreConfig::new()
            .maintainers(4)
            .batch_size(1000)
            .gossip_interval(Duration::from_millis(1)),
    )
    .unwrap();
    const N: u64 = 100_000;
    const BATCH: usize = 100;
    let t0 = Instant::now();
    let handles: Vec<_> = store
        .maintainers()
        .iter()
        .cloned()
        .map(|m| {
            std::thread::spawn(move || {
                for _ in 0..(N as usize / 4 / BATCH) {
                    let batch = (0..BATCH)
                        .map(|_| AppendPayload::new(TagSet::new(), vec![0u8; 64]))
                        .collect();
                    m.append_async(batch);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let total: u64 = store
            .maintainers()
            .iter()
            .map(|m| m.appended_counter().get())
            .sum();
        if total >= N {
            break;
        }
        assert!(Instant::now() < deadline, "FLStore never digested the burst");
        std::thread::sleep(Duration::from_millis(5));
    }
    let rate = N as f64 / t0.elapsed().as_secs_f64();
    assert!(
        rate > 100_000.0,
        "FLStore too slow: {rate:.0} rec/s uncapped"
    );
    store.shutdown();
}
