//! A coarse performance regression guard: the uncapped pipeline must
//! sustain well above the simulated machine rates, proving the
//! service-station pacing (not software overhead) governs every macro
//! experiment.

mod common;

use std::time::{Duration, Instant};

use chariots::prelude::*;

#[test]
fn uncapped_pipeline_sustains_bulk_appends() {
    let mut cfg = common::fast_cfg(1);
    cfg.batcher_flush_threshold = 64;
    let cluster =
        ChariotsCluster::launch(cfg, StageStations::default(), LinkConfig::default()).unwrap();
    let mut client = cluster.client(DatacenterId(0));
    const N: u64 = 30_000;
    let t0 = Instant::now();
    for i in 0..N {
        client.append_async(TagSet::new(), format!("r{i}")).unwrap();
    }
    assert!(
        cluster.wait_for_replication(N, Duration::from_secs(30)),
        "pipeline never digested the burst"
    );
    let rate = N as f64 / t0.elapsed().as_secs_f64();
    // The bench machines are simulated at 13k rec/s; the real software
    // path must clear that with a wide margin or the capacity model is
    // not what the experiments measure.
    assert!(
        rate > 26_000.0,
        "pipeline too slow: {rate:.0} rec/s (needs > 2× the simulated machine rate)"
    );
    cluster.shutdown();
}

#[test]
fn traced_stage_latencies_account_for_end_to_end_latency() {
    let mut cfg = common::fast_cfg(1);
    cfg.trace_sample_every = 1; // trace every record
    let cluster =
        ChariotsCluster::launch(cfg, StageStations::default(), LinkConfig::default()).unwrap();
    let dc = cluster.dc(DatacenterId(0));
    let mut client = cluster.client(DatacenterId(0));

    // Warm the pipeline so the measured appends see steady state.
    for i in 0..32 {
        client.append(TagSet::new(), format!("warm{i}")).unwrap();
    }

    const N: usize = 100;
    let mut e2e = Vec::with_capacity(N);
    let mut staged = Vec::with_capacity(N);
    for i in 0..N {
        let t0 = Instant::now();
        let (_, lid) = client.append(TagSet::new(), format!("r{i}")).unwrap();
        // The append reply arrives at LId assignment; poll the read so the
        // end-to-end span also covers the store stage persisting the record.
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.read(lid).is_err() {
            assert!(
                Instant::now() < deadline,
                "record at {lid} never became readable"
            );
            std::thread::sleep(Duration::from_micros(50));
        }
        e2e.push(t0.elapsed());

        let trace = client
            .last_trace()
            .expect("sample_every=1 must trace every append");
        let stages = dc
            .tracer()
            .stage_latencies(trace)
            .expect("traced record must have stage stamps");
        assert!(
            !stages.is_empty(),
            "traced record must cross at least one stage"
        );
        staged.push(stages.iter().map(|(_, d)| *d).sum::<Duration>());
    }

    // The traced stages (batcher → filter → queue → store) cover a
    // contiguous subinterval of the observed append-to-readable span, so
    // their sum must agree with it to within 2× in both directions.
    let med_e2e = median(&mut e2e);
    let med_staged = median(&mut staged);
    assert!(
        med_staged <= med_e2e * 2,
        "stage sum {med_staged:?} exceeds 2x the end-to-end latency {med_e2e:?}"
    );
    assert!(
        med_e2e <= med_staged * 2,
        "end-to-end {med_e2e:?} exceeds 2x the traced stage sum {med_staged:?} \
         (stages are losing track of where records spend their time)"
    );

    // Every pipeline stage publishes its latency histogram.
    let snapshot = cluster.metrics();
    for stage in ["receiver", "batcher", "filter", "queue", "store", "sender"] {
        let name = format!("dc0.{stage}.latency_us");
        assert!(
            snapshot.histograms.contains_key(&name),
            "missing histogram {name}"
        );
    }
    cluster.shutdown();
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[test]
fn uncapped_flstore_sustains_bulk_appends() {
    let store = FLStore::launch(
        DatacenterId(0),
        FLStoreConfig::new()
            .maintainers(4)
            .batch_size(1000)
            .gossip_interval(Duration::from_millis(1)),
    )
    .unwrap();
    const N: u64 = 100_000;
    const BATCH: usize = 100;
    let t0 = Instant::now();
    let handles: Vec<_> = store
        .maintainers()
        .iter()
        .cloned()
        .map(|m| {
            std::thread::spawn(move || {
                for _ in 0..(N as usize / 4 / BATCH) {
                    let batch = (0..BATCH)
                        .map(|_| AppendPayload::new(TagSet::new(), vec![0u8; 64]))
                        .collect();
                    m.append_async(batch);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let total: u64 = store
            .maintainers()
            .iter()
            .map(|m| m.appended_counter().get())
            .sum();
        if total >= N {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "FLStore never digested the burst"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let rate = N as f64 / t0.elapsed().as_secs_f64();
    assert!(
        rate > 100_000.0,
        "FLStore too slow: {rate:.0} rec/s uncapped"
    );
    store.shutdown();
}
