//! Chaos scenarios: scripted sequences of partitions, crashes, and
//! recoveries against a live multi-datacenter deployment, always ending in
//! convergence with the log invariants intact.

mod common;

use std::time::Duration;

use chariots::prelude::*;
use common::{assert_log_invariants, assert_same_record_sets, dump_log, fast_cfg};

fn launch3() -> ChariotsCluster {
    ChariotsCluster::launch(
        fast_cfg(3),
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(2)).jitter(Duration::from_millis(2)),
    )
    .unwrap()
}

fn verify_converged(cluster: &ChariotsCluster, total: u64) {
    assert!(
        cluster.wait_for_replication(total, Duration::from_secs(40)),
        "cluster never converged to {total} records"
    );
    let logs: Vec<Vec<Entry>> = (0..3).map(|i| dump_log(cluster, DatacenterId(i))).collect();
    for log in &logs {
        assert_eq!(log.len() as u64, total);
        assert_log_invariants(log, 3);
    }
    assert_same_record_sets(&logs);
}

#[test]
fn rolling_partitions_between_three_datacenters() {
    let cluster = launch3();
    let mut clients: Vec<_> = (0..3).map(|i| cluster.client(DatacenterId(i))).collect();
    let mut total = 0u64;
    // Each phase cuts a different pair while everyone keeps writing.
    let pairs = [(0u16, 1u16), (1, 2), (0, 2)];
    for (phase, (a, b)) in pairs.iter().enumerate() {
        cluster.partition(DatacenterId(*a), DatacenterId(*b));
        for (i, client) in clients.iter_mut().enumerate() {
            for j in 0..4 {
                client
                    .append(TagSet::new(), format!("p{phase}-dc{i}-r{j}"))
                    .unwrap();
                total += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(30));
        cluster.heal(DatacenterId(*a), DatacenterId(*b));
    }
    verify_converged(&cluster, total);
    cluster.shutdown();
}

#[test]
fn datacenter_isolated_then_rejoins() {
    // DC 2 is fully cut off; the majority keeps working; on heal, DC 2
    // both catches up and delivers its partition-era writes.
    let cluster = launch3();
    cluster.partition(DatacenterId(0), DatacenterId(2));
    cluster.partition(DatacenterId(1), DatacenterId(2));
    let mut majority_a = cluster.client(DatacenterId(0));
    let mut isolated = cluster.client(DatacenterId(2));
    for i in 0..6 {
        majority_a
            .append(TagSet::new(), format!("major{i}"))
            .unwrap();
        isolated
            .append(TagSet::new(), format!("isolated{i}"))
            .unwrap();
    }
    // The majority pair replicates between themselves meanwhile.
    std::thread::sleep(Duration::from_millis(100));
    let mut b_store = cluster.dc(DatacenterId(1)).flstore().client();
    assert!(
        b_store.head_of_log().unwrap() >= LId(6),
        "majority replication stalled during the partition"
    );
    cluster.heal(DatacenterId(0), DatacenterId(2));
    cluster.heal(DatacenterId(1), DatacenterId(2));
    verify_converged(&cluster, 12);
    cluster.shutdown();
}

#[test]
fn store_crash_during_replication_recovers() {
    let cluster = launch3();
    let mut a = cluster.client(DatacenterId(0));
    for i in 0..10 {
        a.append(TagSet::new(), format!("r{i}")).unwrap();
    }
    // Crash one of DC 1's log maintainers mid-replication; the ATable
    // re-offer loop re-delivers whatever died with it.
    cluster.dc(DatacenterId(1)).flstore().maintainers()[0].crash();
    std::thread::sleep(Duration::from_millis(100));
    cluster.dc(DatacenterId(1)).flstore().maintainers()[0].recover();
    verify_converged(&cluster, 10);
    cluster.shutdown();
}

#[test]
fn lossy_jittery_duplicating_network_with_partitions() {
    // Everything at once: drops, duplicates, reordering, and a partition
    // in the middle.
    let wan = LinkConfig::with_latency(Duration::from_millis(2))
        .jitter(Duration::from_millis(5))
        .drop_prob(0.2)
        .duplicate_prob(0.3)
        .seed(99);
    let cluster = ChariotsCluster::launch(fast_cfg(3), StageStations::default(), wan).unwrap();
    let mut clients: Vec<_> = (0..3).map(|i| cluster.client(DatacenterId(i))).collect();
    for round in 0..3 {
        for (i, c) in clients.iter_mut().enumerate() {
            c.append(TagSet::new(), format!("x{round}-{i}")).unwrap();
        }
        if round == 1 {
            cluster.partition(DatacenterId(0), DatacenterId(1));
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    cluster.heal(DatacenterId(0), DatacenterId(1));
    assert!(
        cluster.wait_for_replication(9, Duration::from_secs(40)),
        "never converged under compound chaos"
    );
    let logs: Vec<Vec<Entry>> = (0..3)
        .map(|i| dump_log(&cluster, DatacenterId(i)))
        .collect();
    for log in &logs {
        assert_eq!(log.len(), 9, "exactly-once violated under chaos");
        assert_log_invariants(log, 3);
    }
    assert_same_record_sets(&logs);
    cluster.shutdown();
}

#[test]
fn queue_crash_stalls_but_never_loses_records() {
    // Two queues; one crashes mid-stream. Records staged at the crashed
    // queue wait out the outage (the token skips it) and flow after
    // recovery — nothing is lost, nothing duplicates.
    let mut cluster =
        ChariotsCluster::launch(fast_cfg(1), StageStations::default(), LinkConfig::default())
            .unwrap();
    cluster.dc_mut(DatacenterId(0)).add_queue();
    let mut client = cluster.client(DatacenterId(0));
    for i in 0..10 {
        client.append(TagSet::new(), format!("pre{i}")).unwrap();
    }
    let q1 = cluster.dc(DatacenterId(0)).queue_handles()[1].clone();
    q1.station().crash();
    // Fire-and-forget appends while one queue is down: the filter
    // round-robins over both queues, so some of these stall.
    for i in 0..10 {
        client
            .append_async(TagSet::new(), format!("during{i}"))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));
    q1.station().recover();
    assert!(
        cluster.wait_for_replication(20, Duration::from_secs(20)),
        "records lost across the queue crash"
    );
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len(), 20);
    assert_log_invariants(&log, 1);
    cluster.shutdown();
}
