//! End-to-end: all three case-study applications sharing one Chariots
//! deployment — the paper's "variety of programming platforms coexisting"
//! vision (§1), where one shared log serves a key-value store, a stream
//! processor, and a transaction manager at once.

mod common;

use std::time::{Duration, Instant};

use chariots::prelude::*;
use common::launch;

#[test]
fn three_applications_share_one_log() {
    let cluster = launch(2, 2);
    let a = DatacenterId(0);
    let b = DatacenterId(1);

    // 1. Hyksos puts at A.
    let mut kv = HyksosClient::new(cluster.client(a));
    kv.put("user:1:name", "ada").unwrap();
    kv.put("user:1:city", "london").unwrap();

    // 2. Stream events published at B.
    let mut publisher = Publisher::new(cluster.client(b));
    publisher
        .publish_keyed("pageviews", "user:1", "GET /home")
        .unwrap();
    publisher
        .publish_keyed("pageviews", "user:1", "GET /pricing")
        .unwrap();

    // 3. A transaction at A.
    let mut tm = TxnManager::new(cluster.dc(a), CommitPolicy::MessageFutures);
    let mut txn = Transaction::new("upgrade-plan");
    txn.write("user:1:plan", "pro");
    let outcome = tm.commit(txn, Duration::from_secs(15)).unwrap();
    assert!(matches!(outcome, Outcome::Committed(_)));

    // Everything replicates into both logs.
    assert!(cluster.wait_for_replication(5, Duration::from_secs(20)));

    // The KV store sees its keys at B.
    let mut kv_b = HyksosClient::new(cluster.client(b));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = kv_b.get_txn(&["user:1:name", "user:1:city"]).unwrap();
        if snap.values().all(Option::is_some) {
            assert_eq!(snap["user:1:name"].as_ref().unwrap().value, "ada");
            break;
        }
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }

    // The stream reader at A sees B's events, exactly once.
    let mut reader = Reader::new(cluster.client(a), "analytics", "pageviews");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut events = Vec::new();
    while events.len() < 2 {
        events.extend(reader.poll(16).unwrap());
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(events.iter().all(|e| e.publisher == b));
    assert!(reader.poll(16).unwrap().is_empty(), "exactly once");

    // The transaction manager at B agrees on the commit.
    let mut tm_b = TxnManager::new(cluster.dc(b), CommitPolicy::MessageFutures);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if tm_b.get_committed("user:1:plan").unwrap().as_deref() == Some("pro") {
            break;
        }
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }

    // And the log itself remains a coherent audit trail: the Hyksos puts,
    // the stream events, and the transaction record all in one causal log.
    let log = common::dump_log(&cluster, a);
    assert!(log.len() >= 5);
    common::assert_log_invariants(&log, 2);
    cluster.shutdown();
}

#[test]
fn log_as_audit_trail_time_travel() {
    // "The log provides a trace of all application events providing a
    // natural framework for … time travel" (§1): replaying the log prefix
    // reconstructs any historical KV state.
    let cluster = launch(1, 0);
    let mut kv = HyksosClient::new(cluster.client(DatacenterId(0)));
    kv.put("x", "1").unwrap();
    kv.put("x", "2").unwrap();
    kv.put("x", "3").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(v) = kv.get("x").unwrap() {
            if v.value == "3" {
                break;
            }
        }
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(3));
    }
    // Replay: state as of every prefix of the log.
    let log = common::dump_log(&cluster, DatacenterId(0));
    let mut historical = Vec::new();
    let mut current: Option<String> = None;
    for entry in &log {
        if let Ok(batch) = serde_json::from_slice::<serde_json::Value>(&entry.record.body) {
            if let Some(v) = batch.pointer("/puts/x") {
                current = Some(v.as_str().unwrap().to_string());
            }
        }
        historical.push(current.clone());
    }
    assert_eq!(
        historical,
        vec![Some("1".into()), Some("2".into()), Some("3".into())]
    );
    cluster.shutdown();
}
