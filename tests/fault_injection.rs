//! Fault injection across the stack: lossy and duplicating WAN links,
//! partitions, maintainer crashes, and crash recovery from the WAL.

mod common;

use std::time::{Duration, Instant};

use chariots::prelude::*;
use common::{assert_log_invariants, assert_same_record_sets, dump_log, fast_cfg};

#[test]
fn replication_survives_a_lossy_wan() {
    // 30 % of propagation messages dropped: the ATable re-offer loop must
    // still converge.
    let wan = LinkConfig::with_latency(Duration::from_millis(2))
        .drop_prob(0.3)
        .seed(42);
    let cluster = ChariotsCluster::launch(fast_cfg(2), StageStations::default(), wan).unwrap();
    let mut a = cluster.client(DatacenterId(0));
    let mut b = cluster.client(DatacenterId(1));
    for i in 0..15 {
        a.append(TagSet::new(), format!("a{i}")).unwrap();
        b.append(TagSet::new(), format!("b{i}")).unwrap();
    }
    assert!(
        cluster.wait_for_replication(30, Duration::from_secs(30)),
        "lossy WAN never converged"
    );
    let logs = vec![
        dump_log(&cluster, DatacenterId(0)),
        dump_log(&cluster, DatacenterId(1)),
    ];
    for log in &logs {
        assert_log_invariants(log, 2);
    }
    assert_same_record_sets(&logs);
    cluster.shutdown();
}

#[test]
fn replication_survives_duplication_and_jitter() {
    let wan = LinkConfig::with_latency(Duration::from_millis(2))
        .jitter(Duration::from_millis(4))
        .duplicate_prob(0.5)
        .seed(7);
    let cluster = ChariotsCluster::launch(fast_cfg(2), StageStations::default(), wan).unwrap();
    let mut a = cluster.client(DatacenterId(0));
    for i in 0..20 {
        a.append(TagSet::new(), format!("a{i}")).unwrap();
    }
    assert!(cluster.wait_for_replication(20, Duration::from_secs(30)));
    // Give late duplicates time to land, then verify exactly-once.
    std::thread::sleep(Duration::from_millis(150));
    let log = dump_log(&cluster, DatacenterId(1));
    assert_eq!(log.len(), 20, "duplicates extended the log");
    assert_log_invariants(&log, 2);
    cluster.shutdown();
}

#[test]
fn maintainer_crash_blocks_its_range_until_recovery() {
    let cluster =
        ChariotsCluster::launch(fast_cfg(1), StageStations::default(), LinkConfig::default())
            .unwrap();
    let dc = cluster.dc(DatacenterId(0));
    let mut client = dc.client();
    for i in 0..4 {
        client.append(TagSet::new(), format!("pre{i}")).unwrap();
    }
    // Crash maintainer 1, then keep appending: records routed to the
    // crashed maintainer's ranges are lost in flight; the queue keeps
    // assigning, so the HL stalls at the crashed maintainer's frontier.
    dc.flstore().maintainers()[1].crash();
    for i in 0..8 {
        let _ = client.append_async(TagSet::new(), format!("during{i}"));
    }
    std::thread::sleep(Duration::from_millis(100));
    dc.flstore().maintainers()[1].recover();
    // New appends eventually land; reads below the final HL always work.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut hl = LId::ZERO;
    while Instant::now() < deadline {
        hl = client.head_of_log().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    for l in 0..hl.0 {
        assert!(client.read(LId(l)).is_ok(), "gap below HL at {l}");
    }
    cluster.shutdown();
}

#[test]
fn flstore_recovers_from_wal_after_crash() {
    let tmp = chariots_simnet::TestDir::new("chariots-it-recover");
    let dir = tmp.path().to_path_buf();
    let cfg = FLStoreConfig::new()
        .maintainers(3)
        .batch_size(4)
        .gossip_interval(Duration::from_millis(1));
    let pre_crash_hl;
    {
        let store = FLStore::launch_with(
            DatacenterId(0),
            cfg.clone(),
            StationConfig::uncapped(),
            Some(dir.clone()),
        )
        .unwrap();
        let mut client = store.client();
        for i in 0..30 {
            client
                .append(
                    TagSet::new().with(Tag::with_value("i", i as i64)),
                    format!("r{i}"),
                )
                .unwrap();
        }
        // Round-robin appends leave each maintainer mid-round, so the HL
        // settles below 30; capture where it stabilizes.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let hl = client.head_of_log().unwrap();
            std::thread::sleep(Duration::from_millis(5));
            if client.head_of_log().unwrap() == hl && hl > LId::ZERO {
                pre_crash_hl = hl;
                break;
            }
            assert!(Instant::now() < deadline, "HL never stabilized");
        }
        store.shutdown();
    }
    // Whole-deployment crash; relaunch from the same directory.
    let store = FLStore::launch_with(
        DatacenterId(0),
        cfg,
        StationConfig::uncapped(),
        Some(dir.clone()),
    )
    .unwrap();
    let mut client = store.client();
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.head_of_log().unwrap() < pre_crash_hl {
        assert!(
            Instant::now() < deadline,
            "recovered HL never reached {pre_crash_hl}"
        );
        std::thread::sleep(Duration::from_millis(3));
    }
    for l in 0..pre_crash_hl.0 {
        let e = client.read(LId(l)).unwrap();
        assert_eq!(e.lid, LId(l));
    }
    store.shutdown();
}

#[test]
fn availability_during_partition_then_convergence() {
    // The CAP stance (§1): Chariots favors availability — both sides keep
    // accepting appends during the partition and converge afterwards.
    let cluster = ChariotsCluster::launch(
        fast_cfg(2),
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(2)),
    )
    .unwrap();
    cluster.partition(DatacenterId(0), DatacenterId(1));
    let mut a = cluster.client(DatacenterId(0));
    let mut b = cluster.client(DatacenterId(1));
    for i in 0..10 {
        a.append(TagSet::new(), format!("a{i}")).unwrap();
        b.append(TagSet::new(), format!("b{i}")).unwrap();
    }
    // Both sides applied their own writes (availability).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let ha = cluster
            .dc(DatacenterId(0))
            .flstore()
            .client()
            .head_of_log()
            .unwrap();
        let hb = cluster
            .dc(DatacenterId(1))
            .flstore()
            .client()
            .head_of_log()
            .unwrap();
        if ha >= LId(10) && hb >= LId(10) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "local appends stalled during partition"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    cluster.heal(DatacenterId(0), DatacenterId(1));
    assert!(cluster.wait_for_replication(20, Duration::from_secs(30)));
    let logs = vec![
        dump_log(&cluster, DatacenterId(0)),
        dump_log(&cluster, DatacenterId(1)),
    ];
    for log in &logs {
        assert_log_invariants(log, 2);
        assert_eq!(log.len(), 20);
    }
    assert_same_record_sets(&logs);
    cluster.shutdown();
}
