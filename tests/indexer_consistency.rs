//! Cross-component consistency of the tag index: rule-based reads through
//! the distributed indexers must agree with a brute-force scan of the log,
//! including across garbage collection and elastic expansion.

mod common;

use std::time::{Duration, Instant};

use chariots::prelude::*;
use common::{dump_log, launch};

/// Brute-force evaluation of a rule against a dumped log (the oracle).
fn oracle(log: &[Entry], rule: &ReadRule) -> Vec<LId> {
    rule.apply(log.iter()).into_iter().map(|e| e.lid).collect()
}

fn wait_indexed(client: &mut chariots::core::ChariotsClient, rule: &ReadRule, expect: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.read_rule(rule).map(|h| h.len()).unwrap_or(0) >= expect {
            return;
        }
        assert!(Instant::now() < deadline, "index never caught up");
        std::thread::sleep(Duration::from_millis(3));
    }
}

#[test]
fn indexed_reads_agree_with_log_scan() {
    let cluster = launch(1, 0);
    let mut client = cluster.client(DatacenterId(0));
    for i in 0..30i64 {
        let tags = TagSet::new()
            .with(Tag::with_value("user", format!("u{}", i % 3)))
            .with(Tag::with_value("n", i));
        client.append(tags, format!("r{i}")).unwrap();
    }
    assert!(cluster.wait_for_replication(30, Duration::from_secs(10)));

    let rules = vec![
        ReadRule::where_(Condition::TagValue(
            "user".into(),
            ValuePredicate::Eq(TagValue::Str("u1".into())),
        )),
        ReadRule::where_(Condition::TagValue(
            "n".into(),
            ValuePredicate::Gt(TagValue::Int(20)),
        )),
        ReadRule::where_(Condition::TagValue(
            "user".into(),
            ValuePredicate::Eq(TagValue::Str("u0".into())),
        ))
        .and(Condition::TagValue(
            "n".into(),
            ValuePredicate::Le(TagValue::Int(15)),
        ))
        .most_recent(3),
        ReadRule::where_(Condition::HasTag("user".into())).oldest(5),
    ];
    // Let the asynchronous indexers catch up before comparing.
    wait_indexed(
        &mut client,
        &ReadRule::where_(Condition::HasTag("user".into())),
        30,
    );
    let log = dump_log(&cluster, DatacenterId(0));
    for (i, rule) in rules.iter().enumerate() {
        let expected = oracle(&log, rule);
        let got: Vec<LId> = client
            .read_rule(rule)
            .unwrap()
            .into_iter()
            .map(|e| e.lid)
            .collect();
        assert_eq!(got, expected, "rule #{i} disagreed with the scan oracle");
    }
    cluster.shutdown();
}

#[test]
fn index_respects_gc() {
    let cluster = launch(1, 0);
    let mut client = cluster.client(DatacenterId(0));
    for i in 0..16i64 {
        client
            .append(TagSet::new().with(Tag::with_value("k", i)), format!("r{i}"))
            .unwrap();
    }
    assert!(cluster.wait_for_replication(16, Duration::from_secs(10)));
    wait_indexed(
        &mut client,
        &ReadRule::where_(Condition::HasTag("k".into())),
        16,
    );
    // GC the first half directly at the FLStore layer.
    cluster.dc(DatacenterId(0)).flstore().gc_before(LId(8));
    std::thread::sleep(Duration::from_millis(50));
    let rule = ReadRule::where_(Condition::HasTag("k".into()));
    let hits = client.read_rule(&rule).unwrap();
    assert!(
        hits.iter().all(|e| e.lid >= LId(8)),
        "collected positions leaked through the index"
    );
    assert_eq!(hits.len(), 8);
    cluster.shutdown();
}
