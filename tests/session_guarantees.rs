//! Causal session guarantees across client handovers: a session token (the
//! client's causal context) carried from one datacenter's frontend to
//! another preserves read-your-writes and monotonic reads.

mod common;

use std::time::Duration;

use chariots::prelude::*;
use common::launch;

#[test]
fn session_token_preserves_read_your_writes_across_datacenters() {
    let cluster = launch(2, 3);
    // The user writes at A…
    let mut at_a = cluster.client(DatacenterId(0));
    let (toid, _lid) = at_a
        .append(TagSet::new().with(Tag::with_value("key", "profile")), "v1")
        .unwrap();
    let token = at_a.context().clone();
    assert_eq!(token.get(DatacenterId(0)), toid);

    // …then their session moves to B. Adopting the token and waiting for
    // it guarantees the write is visible before any read happens.
    let mut at_b = cluster.client(DatacenterId(1)).with_context(token.clone());
    assert!(
        at_b.wait_for(&token, Duration::from_secs(10)),
        "B never caught up to the session token"
    );
    // The record is readable; the tag index may lag a few milliseconds
    // behind persistence (indexing is asynchronous).
    let rule = ReadRule::where_(Condition::TagValue(
        "key".into(),
        ValuePredicate::Eq(TagValue::Str("profile".into())),
    ))
    .most_recent(1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let hits = loop {
        let hits = at_b.read_rule(&rule).unwrap();
        if !hits.is_empty() {
            break hits;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "read-your-writes violated across DCs"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(&hits[0].record.body[..], b"v1");
    cluster.shutdown();
}

#[test]
fn appends_after_handover_are_causally_ordered_after_the_token() {
    let cluster = launch(2, 3);
    let mut at_a = cluster.client(DatacenterId(0));
    at_a.append(TagSet::new(), "first (at A)").unwrap();
    let token = at_a.context().clone();

    // The session continues at B *without* reading anything — only the
    // token carries the causality.
    let at_b = cluster.client(DatacenterId(1)).with_context(token);
    let mut at_b = at_b;
    at_b.append(TagSet::new(), "second (at B)").unwrap();

    assert!(cluster.wait_for_replication(2, Duration::from_secs(10)));
    // At every datacenter, the A-record precedes the B-record.
    for dc in [DatacenterId(0), DatacenterId(1)] {
        let log = common::dump_log(&cluster, dc);
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].record.host(), DatacenterId(0), "{dc}: order broken");
        assert_eq!(log[1].record.host(), DatacenterId(1));
        common::assert_log_invariants(&log, 2);
    }
    cluster.shutdown();
}

#[test]
fn applied_cut_is_monotone() {
    let cluster = launch(1, 0);
    let mut client = cluster.client(DatacenterId(0));
    let mut last = client.applied_cut();
    for i in 0..10 {
        client.append(TagSet::new(), format!("r{i}")).unwrap();
        assert!(client.wait_for_self(Duration::from_secs(5)));
        let now = client.applied_cut();
        assert!(now.dominates(&last), "applied cut regressed");
        last = now;
    }
    assert_eq!(last.get(DatacenterId(0)), TOId(10));
    cluster.shutdown();
}
