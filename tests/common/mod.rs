//! Shared helpers for the integration tests: fast-timing deployments and
//! log-invariant checkers.
//!
//! Each integration suite compiles its own copy and uses a subset of the
//! helpers, so unused-by-this-suite warnings are expected.
#![allow(dead_code)]

use std::time::Duration;

use chariots::prelude::*;

/// A cluster configuration with millisecond-scale timings so integration
/// tests run fast.
pub fn fast_cfg(n: usize) -> ChariotsConfig {
    let mut cfg = ChariotsConfig::new().datacenters(n);
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(8)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 2;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.propagation_interval = Duration::from_millis(2);
    cfg
}

/// Launches a fast-timing cluster with the given WAN latency.
pub fn launch(n: usize, wan_ms: u64) -> ChariotsCluster {
    ChariotsCluster::launch(
        fast_cfg(n),
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(wan_ms)),
    )
    .expect("launch cluster")
}

/// Reads datacenter `dc`'s entire log (positions `0..hl`).
pub fn dump_log(cluster: &ChariotsCluster, dc: DatacenterId) -> Vec<Entry> {
    let mut client = cluster.dc(dc).flstore().client();
    let hl = client.head_of_log().expect("head of log");
    (0..hl.0)
        .map(|l| client.read(LId(l)).expect("position below HL readable"))
        .collect()
}

/// Asserts the three core log invariants on one datacenter's log:
///
/// 1. `LId`s are dense (0, 1, 2, …) with no duplicates.
/// 2. Records of each host appear in `TOId` order with no gaps.
/// 3. Every record's causal dependency cut is satisfied by the records
///    that precede it.
pub fn assert_log_invariants(log: &[Entry], num_dcs: usize) {
    let mut applied = VersionVector::new(num_dcs);
    for (i, entry) in log.iter().enumerate() {
        assert_eq!(entry.lid, LId(i as u64), "LIds must be dense");
        let r = &entry.record;
        assert_eq!(
            r.toid(),
            applied.get(r.host()).next(),
            "host {} total order broken at {}",
            r.host(),
            entry.lid
        );
        assert!(
            applied.dominates(&r.deps),
            "record {} at {} has unsatisfied dependencies {} (applied {})",
            r.id,
            entry.lid,
            r.deps,
            applied
        );
        applied.set(r.host(), r.toid());
    }
}

/// Asserts that all datacenters hold the same set of records.
pub fn assert_same_record_sets(logs: &[Vec<Entry>]) {
    let mut sets: Vec<Vec<RecordId>> = logs
        .iter()
        .map(|log| {
            let mut ids: Vec<RecordId> = log.iter().map(|e| e.id()).collect();
            ids.sort();
            ids
        })
        .collect();
    let first = sets.remove(0);
    for (i, other) in sets.into_iter().enumerate() {
        assert_eq!(first, other, "datacenter {} diverged", i + 1);
    }
}

pub use chariots_types::RecordId;
