//! Model-based testing: the distributed pipeline (§6.2) against the
//! paper's abstract solution (§6.1).
//!
//! The paper's claim: "the distributed implementation … will result in a
//! behavior identical to the abstract solution with a higher performance."
//! These tests drive both with the same workloads and check that the
//! distributed outcome satisfies exactly the abstract specification:
//! identical record sets everywhere, per-host total order, and causal
//! dependencies satisfied at every position.

mod common;

use std::time::Duration;

use chariots::prelude::*;
use common::{assert_log_invariants, assert_same_record_sets, dump_log, launch};

/// A deterministic pseudo-random workload: per step, one datacenter
/// appends. Returns the number of appends per datacenter.
fn run_workload(cluster: &ChariotsCluster, n: usize, steps: usize, seed: u64) -> Vec<u64> {
    let mut clients: Vec<ChariotsClient> = (0..n)
        .map(|i| cluster.client(DatacenterId(i as u16)))
        .collect();
    let mut counts = vec![0u64; n];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for step in 0..steps {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let dc = (state % n as u64) as usize;
        clients[dc]
            .append(TagSet::new(), format!("s{step}"))
            .expect("append");
        counts[dc] += 1;
    }
    counts
}

#[test]
fn distributed_matches_abstract_spec_two_dcs() {
    let n = 2;
    let cluster = launch(n, 2);
    let counts = run_workload(&cluster, n, 40, 7);
    let total: u64 = counts.iter().sum();
    assert!(cluster.wait_for_replication(total, Duration::from_secs(20)));
    let logs: Vec<Vec<Entry>> = (0..n)
        .map(|i| dump_log(&cluster, DatacenterId(i as u16)))
        .collect();
    for log in &logs {
        assert_eq!(log.len() as u64, total);
        assert_log_invariants(log, n);
    }
    assert_same_record_sets(&logs);
    cluster.shutdown();
}

#[test]
fn distributed_matches_abstract_spec_three_dcs() {
    let n = 3;
    let cluster = launch(n, 3);
    let counts = run_workload(&cluster, n, 45, 13);
    let total: u64 = counts.iter().sum();
    assert!(cluster.wait_for_replication(total, Duration::from_secs(20)));
    let logs: Vec<Vec<Entry>> = (0..n)
        .map(|i| dump_log(&cluster, DatacenterId(i as u16)))
        .collect();
    for log in &logs {
        assert_log_invariants(log, n);
    }
    assert_same_record_sets(&logs);
    cluster.shutdown();
}

#[test]
fn abstract_model_accepts_the_distributed_outcome() {
    // Replay the distributed system's per-DC local sequences into the
    // abstract cluster; after settle, both must contain the same records —
    // i.e. the distributed outcome is reachable by the abstract model.
    let n = 2;
    let cluster = launch(n, 2);
    let counts = run_workload(&cluster, n, 30, 99);
    let total: u64 = counts.iter().sum();
    assert!(cluster.wait_for_replication(total, Duration::from_secs(20)));
    let logs: Vec<Vec<Entry>> = (0..n)
        .map(|i| dump_log(&cluster, DatacenterId(i as u16)))
        .collect();

    let mut abstract_cluster = AbstractCluster::new(n);
    for dc in 0..n {
        let dcid = DatacenterId(dc as u16);
        // Local records of this DC, in TOId order.
        let mut local: Vec<&Entry> = logs[dc]
            .iter()
            .filter(|e| e.record.host() == dcid)
            .collect();
        local.sort_by_key(|e| e.record.toid());
        for e in local {
            abstract_cluster
                .dc_mut(dcid)
                .append(e.record.tags.clone(), e.record.body.clone());
        }
    }
    abstract_cluster.settle();
    for dc in 0..n {
        let dcid = DatacenterId(dc as u16);
        let mut abstract_ids: Vec<RecordId> = abstract_cluster
            .dc(dcid)
            .log()
            .iter()
            .map(|e| e.id())
            .collect();
        abstract_ids.sort();
        let mut distributed_ids: Vec<RecordId> = logs[dc].iter().map(|e| e.id()).collect();
        distributed_ids.sort();
        assert_eq!(abstract_ids, distributed_ids);
    }
    cluster.shutdown();
}

use chariots_types::RecordId;

#[test]
fn cross_dc_causal_chain_is_ordered_at_every_replica() {
    // A chain of length 6 hopping between datacenters: each append is made
    // by a client that read the previous link, so the chain is totally
    // causally ordered and must appear in chain order in every log.
    let n = 3;
    let cluster = launch(n, 2);
    let mut expected_order = Vec::new();
    for i in 0..6u64 {
        let dc = DatacenterId((i % n as u64) as u16);
        let mut client = cluster.client(dc);
        if i > 0 {
            // Read every record so far (establishing the dependency).
            assert!(
                cluster.wait_for_replication(i, Duration::from_secs(20)),
                "link {i} never replicated"
            );
            for l in 0..i {
                client.read(LId(l)).expect("chain prefix readable");
            }
        }
        let (toid, _lid) = client
            .append(TagSet::new(), format!("link{i}"))
            .expect("append link");
        expected_order.push((dc, toid));
    }
    assert!(cluster.wait_for_replication(6, Duration::from_secs(20)));
    for dc in 0..n {
        let log = dump_log(&cluster, DatacenterId(dc as u16));
        let got: Vec<(DatacenterId, TOId)> = log
            .iter()
            .map(|e| (e.record.host(), e.record.toid()))
            .collect();
        assert_eq!(got, expected_order, "chain order broken at DC {dc}");
        assert_log_invariants(&log, n);
    }
    cluster.shutdown();
}

/// Group-commit equivalence: any interleaving of `Append` and `Store`
/// requests served through the maintainer node's coalescing drain loop
/// produces exactly the log (contents and position assignments) of a
/// [`MaintainerCore`] serving the same operations one at a time.
mod group_commit_equivalence {
    use std::sync::Arc;
    use std::time::Duration;

    use bytes::Bytes;
    use chariots_flstore::node::{spawn_maintainer, Fabric};
    use chariots_flstore::{AppendPayload, EpochJournal, MaintainerCore, RangeMap};
    use chariots_simnet::{ServiceStation, Shutdown, StationConfig};
    use chariots_types::{
        DatacenterId, Entry, LId, MaintainerId, Record, RecordId, TOId, TagSet, VersionVector,
    };
    use proptest::prelude::*;

    /// One submitted request. `Append(n)` carries `n` payloads; `Store(n)`
    /// carries `n` pre-routed entries at far positions that cannot collide
    /// with post-assignment.
    #[derive(Debug, Clone)]
    enum Op {
        Append(usize),
        Store(usize),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (1usize..=4).prop_map(Op::Append),
                (1usize..=3).prop_map(Op::Store),
            ],
            1..12,
        )
    }

    /// Base position of the `Store` operand space: far above anything the
    /// appends of one case can assign, so the two request kinds never race
    /// for a slot.
    const STORE_BASE: u64 = 100_000;

    /// Materializes the concrete operations: payload bodies for appends,
    /// full entries (deterministic far positions, a second host's record
    /// ids) for stores. Both the serial and the batched run consume these
    /// verbatim.
    fn materialize(ops: &[Op]) -> Vec<MaterializedOp> {
        let mut out = Vec::new();
        let mut store_slot = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Append(n) => out.push(MaterializedOp::Append(
                    (0..*n)
                        .map(|j| {
                            AppendPayload::new(
                                TagSet::new(),
                                Bytes::from(format!("a{i}.{j}").into_bytes()),
                            )
                        })
                        .collect(),
                )),
                Op::Store(n) => {
                    let entries: Vec<Entry> = (0..*n)
                        .map(|_| {
                            let slot = store_slot;
                            store_slot += 1;
                            Entry::new(
                                LId(STORE_BASE + slot),
                                Record::new(
                                    RecordId::new(DatacenterId(1), TOId(slot + 1)),
                                    VersionVector::new(2),
                                    TagSet::new(),
                                    Bytes::from(format!("s{slot}").into_bytes()),
                                ),
                            )
                        })
                        .collect();
                    out.push(MaterializedOp::Store(entries));
                }
            }
        }
        out
    }

    enum MaterializedOp {
        Append(Vec<AppendPayload>),
        Store(Vec<Entry>),
    }

    fn journal() -> EpochJournal {
        EpochJournal::new(RangeMap::new(1, 16))
    }

    fn scan_all(entries: Vec<Entry>) -> Vec<(LId, RecordId, Bytes)> {
        entries
            .into_iter()
            .map(|e| (e.lid, e.record.id, e.record.body))
            .collect()
    }

    proptest! {
        // Each case spawns a node thread; keep the case count modest.
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn coalesced_serving_matches_serial(ops in arb_ops()) {
            let materialized = materialize(&ops);
            let total: u64 = materialized
                .iter()
                .map(|op| match op {
                    MaterializedOp::Append(p) => p.len() as u64,
                    MaterializedOp::Store(e) => e.len() as u64,
                })
                .sum();

            // Serial reference: one core, one operation at a time.
            let mut serial = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal());
            for op in &materialized {
                match op {
                    MaterializedOp::Append(payloads) => {
                        serial.append_batch(payloads.clone()).expect("serial append");
                    }
                    MaterializedOp::Store(entries) => {
                        serial.store_entries(entries.clone()).expect("serial store");
                    }
                }
            }

            // Batched run: the same operations fired into a node whose loop
            // coalesces whatever it finds queued (submission order = channel
            // order, so the batch order matches the serial order).
            let core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal());
            let station = Arc::new(ServiceStation::new("gce", StationConfig::uncapped()));
            let shutdown = Shutdown::new();
            let (handle, thread) = spawn_maintainer(
                core,
                station,
                Fabric::new(),
                Duration::from_millis(50),
                shutdown.clone(),
            );
            let counter = handle.appended_counter();
            for op in materialized {
                match op {
                    MaterializedOp::Append(payloads) => {
                        prop_assert!(handle.append_async(payloads));
                    }
                    MaterializedOp::Store(entries) => {
                        prop_assert!(handle.store(entries));
                    }
                }
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while counter.get() < total {
                prop_assert!(
                    std::time::Instant::now() < deadline,
                    "only {}/{} records committed",
                    counter.get(),
                    total
                );
                std::thread::sleep(Duration::from_millis(1));
            }

            let batched_log = handle.scan(LId(0), 1_000_000).expect("scan");
            shutdown.signal();
            thread.join().expect("join node");

            let serial_log = serial.scan_from(LId(0), 1_000_000);
            prop_assert_eq!(scan_all(batched_log), scan_all(serial_log));
        }
    }
}

/// WAN propagation equivalence: cursor-based delta shipping (per-peer send
/// cursors, event-driven rounds, timeout-triggered re-offer healing)
/// delivers exactly the outcome of the always-re-offer policy under
/// message drops, duplication, and a partition-then-heal with *sustained*
/// append load across the heal — the cursor is a
/// transmission-scheduling optimization, not a semantic change. Both
/// policies must converge to identical record sets with all log
/// invariants intact, and every datacenter's applied cut must cover the
/// full workload.
mod wan_propagation_equivalence {
    use std::time::{Duration, Instant};

    use chariots::prelude::*;
    use chariots_types::RecordId;
    use proptest::prelude::*;

    use crate::common::{assert_log_invariants, assert_same_record_sets, dump_log};

    #[derive(Debug, Clone)]
    struct Scenario {
        dcs: usize,
        steps: usize,
        /// Partition DC 0 ↔ DC 1 for the middle third of the workload,
        /// forcing the delta policy through its stall-fallback path.
        partition: bool,
        seed: u64,
    }

    fn arb_scenario() -> impl Strategy<Value = Scenario> {
        (2usize..=3, 12usize..=24, any::<bool>(), any::<u64>()).prop_map(
            |(dcs, steps, partition, seed)| Scenario {
                dcs,
                steps,
                partition,
                seed,
            },
        )
    }

    fn launch(s: &Scenario, delta: bool) -> ChariotsCluster {
        let mut cfg = ChariotsConfig::new().datacenters(s.dcs);
        cfg.flstore = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(8)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = 2;
        cfg.batcher_flush_interval = Duration::from_millis(1);
        cfg.propagation_interval = Duration::from_millis(2);
        cfg.sender_delta_shipping = delta;
        // Small enough that dropped chunks re-offer many times within the
        // convergence deadline.
        cfg.retransmit_timeout = Duration::from_millis(25);
        // A hostile WAN: drops exercise the healing fallback, duplication
        // exercises the filters, jitter reorders chunks.
        let wan = LinkConfig::with_latency(Duration::from_millis(1))
            .jitter(Duration::from_millis(1))
            .drop_prob(0.05)
            .duplicate_prob(0.05)
            .seed(s.seed ^ u64::from(delta));
        ChariotsCluster::launch(cfg, StageStations::default(), wan).expect("launch cluster")
    }

    /// Runs the deterministic workload (same construction as
    /// [`super::run_workload`]) with an optional mid-run partition of
    /// DC 0 ↔ DC 1. Returns total appends.
    fn drive(cluster: &ChariotsCluster, s: &Scenario) -> u64 {
        let mut clients: Vec<ChariotsClient> = (0..s.dcs)
            .map(|i| cluster.client(DatacenterId(i as u16)))
            .collect();
        let (a, b) = (DatacenterId(0), DatacenterId(1));
        let mut state = s.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut dc0_appends = 0u64;
        for step in 0..s.steps {
            if s.partition && step == s.steps / 3 {
                cluster.partition(a, b);
            }
            if s.partition && step == (2 * s.steps) / 3 {
                // Let the outage outlast the retransmit timeout so healing
                // really goes through the fallback re-offer.
                std::thread::sleep(Duration::from_millis(40));
                cluster.heal(a, b);
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let dc = (state % s.dcs as u64) as usize;
            if dc == 0 {
                dc0_appends += 1;
            }
            clients[dc]
                .append(TagSet::new(), format!("w{step}"))
                .expect("append");
        }
        let mut total = s.steps as u64;
        if s.partition {
            // Sustained post-heal load: DC 0 keeps appending (paced well
            // inside the retransmit timeout) and DC 1 must absorb every
            // pre-heal DC 0 record *while* the load runs. The partition
            // guarantees the delta policy enters this phase with offered
            // records outstanding (cursor > known), so a stall clock that
            // fresh offers can restart would never fire and DC 1 would
            // stay stuck at the gap for the whole window. The extra count
            // is fixed so both policies produce identical record sets.
            const EXTRA: u64 = 300;
            let atable = cluster.dc(b).atable();
            let mut converged_under_load = false;
            for extra in 0..EXTRA {
                converged_under_load =
                    converged_under_load || atable.read().row(b).get(a).0 >= dc0_appends;
                clients[0]
                    .append(TagSet::new(), format!("x{extra}"))
                    .expect("append");
                total += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(
                converged_under_load || atable.read().row(b).get(a).0 >= dc0_appends,
                "DC 1 never absorbed DC 0's pre-heal records under sustained load"
            );
        }
        total
    }

    /// Record-id sets of every datacenter's log, sorted.
    fn record_sets(cluster: &ChariotsCluster, s: &Scenario, total: u64) -> Vec<Vec<RecordId>> {
        assert!(
            cluster.wait_for_replication(total, Duration::from_secs(30)),
            "cluster never converged"
        );
        let logs: Vec<Vec<Entry>> = (0..s.dcs)
            .map(|i| dump_log(cluster, DatacenterId(i as u16)))
            .collect();
        for log in &logs {
            assert_eq!(log.len() as u64, total);
            assert_log_invariants(log, s.dcs);
        }
        assert_same_record_sets(&logs);
        logs.iter()
            .map(|log| {
                let mut ids: Vec<RecordId> = log.iter().map(|e| e.id()).collect();
                ids.sort();
                ids
            })
            .collect()
    }

    /// Waits until every datacenter's own applied cut (row `i` of its
    /// ATable) covers the per-host workload counts — the cut the senders
    /// gossip, and the quantity delta shipping must not corrupt.
    fn assert_applied_cuts_converge(cluster: &ChariotsCluster, s: &Scenario, ids: &[RecordId]) {
        let per_host =
            |host: DatacenterId| -> u64 { ids.iter().filter(|id| id.host == host).count() as u64 };
        let deadline = Instant::now() + Duration::from_secs(10);
        for i in 0..s.dcs {
            let dc = DatacenterId(i as u16);
            let atable = cluster.dc(dc).atable();
            loop {
                let row = atable.read().row(dc);
                let done = (0..s.dcs).all(|j| {
                    let host = DatacenterId(j as u16);
                    row.get(host).0 >= per_host(host)
                });
                if done {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "DC {i} applied cut stalled at {row}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    proptest! {
        // Each case launches two full multi-DC clusters; keep it small.
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn delta_shipping_matches_full_reoffer(s in arb_scenario()) {
            let delta_cluster = launch(&s, true);
            let total = drive(&delta_cluster, &s);
            let delta_sets = record_sets(&delta_cluster, &s, total);
            assert_applied_cuts_converge(&delta_cluster, &s, &delta_sets[0]);
            delta_cluster.shutdown();

            let full_cluster = launch(&s, false);
            let full_total = drive(&full_cluster, &s);
            prop_assert_eq!(total, full_total);
            let full_sets = record_sets(&full_cluster, &s, total);
            assert_applied_cuts_converge(&full_cluster, &s, &full_sets[0]);
            full_cluster.shutdown();

            // The equivalence: both policies deliver the same records
            // everywhere.
            prop_assert_eq!(delta_sets, full_sets);
        }
    }
}

/// Commit-path equivalence: the pipelined quorum commit (primary ships
/// the batch to its backups first, overlaps its own WAL fsync with the
/// replication RPCs, and acks at f+1 durable copies) is a latency
/// optimization, not a semantic change. Under the same deterministic
/// workload — including a primary crash that drops every in-flight RPC
/// on the dead station and forces a failover mid-run — `PipelinedQuorum`
/// and `Serial` must produce identical acked-record sets, every acked
/// `(LId, body)` must read back from the surviving group, no acked
/// position may be reused, and the log below the final Head of the Log
/// must stay dense.
mod commit_mode_equivalence {
    use std::collections::BTreeSet;
    use std::time::{Duration, Instant};

    use chariots_flstore::{FLStore, FLStoreClient};
    use chariots_types::{CommitMode, DatacenterId, FLStoreConfig, LId, TagSet};
    use proptest::prelude::*;

    /// Positions per striping round (`batch_size`).
    const ROUND: usize = 4;

    /// Appends fired after the crash, riding client retries across the
    /// failover window.
    const POST_CRASH: usize = 8;

    #[derive(Debug, Clone)]
    struct Scenario {
        maintainers: usize,
        replication: usize,
        records: usize,
        crash_primary: bool,
        seed: u64,
    }

    fn arb_scenario() -> impl Strategy<Value = Scenario> {
        (
            1usize..=2,
            2usize..=3,
            1usize..=2,
            any::<bool>(),
            any::<u64>(),
        )
            .prop_map(
                |(maintainers, replication, rounds, crash_primary, seed)| Scenario {
                    maintainers,
                    replication,
                    records: maintainers * ROUND * rounds,
                    crash_primary,
                    seed,
                },
            )
    }

    fn launch(s: &Scenario, mode: CommitMode) -> FLStore {
        let cfg = FLStoreConfig::new()
            .maintainers(s.maintainers)
            .batch_size(ROUND as u64)
            .replication(s.replication)
            .commit_mode(mode)
            .gossip_interval(Duration::from_millis(1))
            .heartbeat_interval(Duration::from_millis(2))
            .suspicion_timeout(Duration::from_millis(40));
        FLStore::launch(DatacenterId(0), cfg).expect("launch")
    }

    /// Polls until `lid` reads back, returning its body; panics at the
    /// deadline (a just-promoted backup may briefly lag on gossip).
    fn read_body(client: &mut FLStoreClient, lid: LId, deadline: Instant) -> bytes::Bytes {
        loop {
            match client.read_with_hl(lid, true) {
                Ok(entry) => return entry.record.body,
                Err(e) => {
                    assert!(Instant::now() < deadline, "acked {lid} unreadable: {e}");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }

    /// Drives the workload under one commit mode and verifies the
    /// durability contract inside the run; returns the acked `(LId, body)`
    /// pairs in append order.
    fn run(s: &Scenario, mode: CommitMode) -> Vec<(LId, String)> {
        let store = launch(s, mode);
        let mut client = store.client();
        let mut acked: Vec<(LId, String)> = Vec::new();
        for i in 0..s.records {
            let body = format!("p{i}");
            let (_, lid) = client.append(TagSet::new(), body.clone()).expect("append");
            acked.push((lid, body));
        }
        // Let the pre-crash workload settle (HL covers every acked
        // position) so both modes reach the same state at the crash point.
        let max_pre = acked.iter().map(|&(lid, _)| lid).max().expect("acked");
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.head_of_log().expect("hl") <= max_pre {
            assert!(Instant::now() < deadline, "HL never covered the appends");
            std::thread::sleep(Duration::from_millis(2));
        }

        if s.crash_primary {
            // Crash one group's primary: its in-flight RPCs are dropped
            // wholesale, the monitor promotes a backup, and the client's
            // retry schedule carries the post-crash appends across the
            // window. A failed attempt assigned nothing, so no retry can
            // duplicate a record.
            let group = s.seed as usize % s.maintainers;
            store.maintainers()[group].crash();
            for i in 0..POST_CRASH {
                let body = format!("q{i}");
                let (_, lid) = client
                    .append(TagSet::new(), body.clone())
                    .expect("append must survive the failover window");
                acked.push((lid, body));
            }
        }

        // No acked position was ever assigned twice.
        let positions: BTreeSet<LId> = acked.iter().map(|&(lid, _)| lid).collect();
        assert_eq!(positions.len(), acked.len(), "an acked LId was reused");

        // Every acked record is durable: it reads back from the surviving
        // group with exactly the acked body at exactly the acked position.
        let deadline = Instant::now() + Duration::from_secs(10);
        for (lid, body) in &acked {
            let got = read_body(&mut client, *lid, deadline);
            assert_eq!(&got[..], body.as_bytes(), "acked {lid} lost or replaced");
        }

        // Log density: every position below the final HL is readable —
        // the commit path left no holes behind.
        let hl = client.head_of_log().expect("hl");
        let deadline = Instant::now() + Duration::from_secs(10);
        for l in 0..hl.0 {
            read_body(&mut client, LId(l), deadline);
        }

        store.shutdown();
        acked
    }

    proptest! {
        // Each case launches two full deployments; keep the case count
        // small.
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn pipelined_quorum_matches_serial(s in arb_scenario()) {
            let pipelined = run(&s, CommitMode::PipelinedQuorum);
            let serial = run(&s, CommitMode::Serial);

            // The settled pre-crash prefix is fully deterministic: both
            // modes must assign the identical positions to the identical
            // records.
            prop_assert_eq!(&pipelined[..s.records], &serial[..s.records]);

            // Across the whole run (retry timing makes post-crash routing,
            // and hence positions, timing-dependent) the *acked record
            // sets* must agree: same records acked, none lost, none
            // doubled.
            let bodies = |acks: &[(LId, String)]| -> Vec<String> {
                let mut b: Vec<String> = acks.iter().map(|(_, body)| body.clone()).collect();
                b.sort();
                b
            };
            prop_assert_eq!(bodies(&pipelined), bodies(&serial));
        }
    }
}

/// Read-path equivalence: the scatter-gather `read_many` and the batched,
/// cache-enabled `read_rule` return exactly what the per-record serial
/// path (caches off, one RPC per position) returns — across maintainer
/// counts, replication factors, and a crashed primary served by backup
/// fallback.
mod read_path_equivalence {
    use std::time::{Duration, Instant};

    use chariots_flstore::{AppendPayload, FLStore, FLStoreClient};
    use chariots_types::{
        Condition, DatacenterId, Entry, FLStoreConfig, LId, ReadRule, Tag, TagSet, TagValue,
        ValuePredicate,
    };
    use proptest::prelude::*;

    const TAG: &str = "k";

    /// Positions per striping round (`batch_size`).
    const ROUND: usize = 4;

    #[derive(Debug, Clone)]
    struct Scenario {
        maintainers: usize,
        replication: usize,
        records: usize,
        crash_primary: bool,
        seed: u64,
    }

    fn arb_scenario() -> impl Strategy<Value = Scenario> {
        (
            1usize..=3,
            1usize..=2,
            1usize..=2,
            any::<bool>(),
            any::<u64>(),
        )
            .prop_map(|(maintainers, replication, rounds, crash, seed)| Scenario {
                maintainers,
                replication,
                // Crashing only makes sense with a backup to fall back to.
                crash_primary: crash && replication > 1,
                // Whole striping rounds on every maintainer, so the
                // round-robin appends leave no sub-round gaps and the HL
                // can cover everything appended.
                records: maintainers * ROUND * rounds,
                seed,
            })
    }

    fn launch(s: &Scenario) -> FLStore {
        let cfg = FLStoreConfig::new()
            .maintainers(s.maintainers)
            .batch_size(ROUND as u64)
            .indexers(1)
            .replication(s.replication)
            .gossip_interval(Duration::from_millis(1))
            .heartbeat_interval(Duration::from_millis(2))
            .suspicion_timeout(Duration::from_millis(40));
        FLStore::launch(DatacenterId(0), cfg).expect("launch")
    }

    /// A client with both read caches disabled: the serial reference.
    fn serial_client(store: &FLStore) -> FLStoreClient {
        store
            .client()
            .with_hl_cache_ttl(Duration::ZERO)
            .with_entry_cache_capacity(0)
    }

    /// Reads every position one RPC at a time, panicking only on real
    /// gaps; returns entries once all are readable, `None` if any position
    /// is still transiently unreadable.
    fn try_serial_read_all(client: &mut FLStoreClient, records: usize) -> Option<Vec<Entry>> {
        let mut out = Vec::with_capacity(records);
        for l in 0..records as u64 {
            out.push(client.read_with_hl(LId(l), true).ok()?);
        }
        Some(out)
    }

    proptest! {
        // Each case launches a full deployment; keep the case count modest.
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn batched_reads_match_the_serial_path(s in arb_scenario()) {
            let store = launch(&s);
            let mut writer = store.client();
            for i in 0..s.records {
                let mut tags = TagSet::new();
                tags.push(Tag::with_value(TAG, (i % 3).to_string().as_str()));
                writer
                    .append(tags, format!("r{i}"))
                    .expect("append");
            }
            // Wait for everything to be readable.
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                if writer.head_of_log().expect("hl") >= LId(s.records as u64) {
                    break;
                }
                prop_assert!(Instant::now() < deadline, "HL never covered the appends");
                std::thread::sleep(Duration::from_millis(2));
            }

            // Postings reach the indexer asynchronously from the HL: wait
            // until the index covers every record before comparing
            // rule-based reads against the model (the indexer nodes are
            // not part of any replica group, so the crash below cannot
            // un-warm them).
            let mut reference = serial_client(&store);
            let all_tagged = ReadRule::where_(Condition::HasTag(TAG.into()));
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                if reference.read_rule(&all_tagged).expect("warm index").len() == s.records {
                    break;
                }
                prop_assert!(Instant::now() < deadline, "indexer never caught up");
                std::thread::sleep(Duration::from_millis(2));
            }

            if s.crash_primary {
                // Crash one group's primary AFTER the appends are acked:
                // reads must ride the backup fallback (and, once the
                // monitor promotes, the new primary).
                let group = s.seed as usize % s.maintainers;
                store.maintainers()[group].crash();
            }

            // Serial reference: per-record RPCs, no caches. A just-crashed
            // primary's backup may briefly lag on gossip, so poll until
            // the reference itself sees everything.
            let deadline = Instant::now() + Duration::from_secs(10);
            let expected = loop {
                if let Some(entries) = try_serial_read_all(&mut reference, s.records) {
                    break entries;
                }
                prop_assert!(Instant::now() < deadline, "serial reference never settled");
                std::thread::sleep(Duration::from_millis(2));
            };

            // A query mix: every position, plus seed-driven duplicates and
            // out-of-order picks.
            let mut lids: Vec<LId> = (0..s.records as u64).map(LId).collect();
            let mut state = s.seed | 1;
            for _ in 0..s.records / 2 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                lids.push(LId(state % s.records as u64));
            }

            // Batched path, caches at their deployment defaults — run
            // twice so the second pass is served from the entry cache.
            let mut batched = store.client();
            for pass in 0..2 {
                let got = batched.read_many(&lids);
                prop_assert_eq!(got.len(), lids.len());
                for (lid, result) in lids.iter().zip(got) {
                    let entry = result.expect("position below HL must read");
                    prop_assert_eq!(&entry, &expected[lid.0 as usize], "pass {}", pass);
                }
            }

            // Rule equivalence: batched+cached read_rule vs the model
            // (the rule applied to the full serial log). Two evaluations
            // each, exercising HL-cache hits on the second.
            let rules = [
                ReadRule::where_(Condition::TagValue(
                    TAG.into(),
                    ValuePredicate::Eq(TagValue::Str("1".into())),
                ))
                .most_recent(2),
                ReadRule::where_(Condition::HasTag(TAG.into()))
                    .and(Condition::LIdBelow(LId(s.records as u64 / 2)))
                    .oldest(3),
                // Exact-LId path, with an extra non-LId condition that is
                // filtered after the batch read.
                ReadRule::where_(Condition::LIdEq(LId(0)))
                    .and(Condition::HasTag(TAG.into())),
                ReadRule::where_(Condition::TagValue(
                    TAG.into(),
                    ValuePredicate::Ge(TagValue::Str("1".into())),
                ))
                .and(Condition::FromHost(DatacenterId(0)))
                .most_recent(4),
            ];
            for rule in &rules {
                let model = rule.apply(expected.iter());
                for pass in 0..2 {
                    let got = batched.read_rule(rule).expect("read_rule");
                    prop_assert_eq!(&got, &model, "rule {:?} pass {}", rule, pass);
                }
                // The serial-path client must agree too (same code, caches
                // and batching ablated).
                let serial_got = reference.read_rule(rule).expect("serial read_rule");
                prop_assert_eq!(&serial_got, &model, "serial rule {:?}", rule);
            }
            store.shutdown();
        }
    }
}
