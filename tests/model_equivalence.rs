//! Model-based testing: the distributed pipeline (§6.2) against the
//! paper's abstract solution (§6.1).
//!
//! The paper's claim: "the distributed implementation … will result in a
//! behavior identical to the abstract solution with a higher performance."
//! These tests drive both with the same workloads and check that the
//! distributed outcome satisfies exactly the abstract specification:
//! identical record sets everywhere, per-host total order, and causal
//! dependencies satisfied at every position.

mod common;

use std::time::Duration;

use chariots::prelude::*;
use common::{assert_log_invariants, assert_same_record_sets, dump_log, launch};

/// A deterministic pseudo-random workload: per step, one datacenter
/// appends. Returns the number of appends per datacenter.
fn run_workload(cluster: &ChariotsCluster, n: usize, steps: usize, seed: u64) -> Vec<u64> {
    let mut clients: Vec<ChariotsClient> = (0..n)
        .map(|i| cluster.client(DatacenterId(i as u16)))
        .collect();
    let mut counts = vec![0u64; n];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for step in 0..steps {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let dc = (state % n as u64) as usize;
        clients[dc]
            .append(TagSet::new(), format!("s{step}"))
            .expect("append");
        counts[dc] += 1;
    }
    counts
}

#[test]
fn distributed_matches_abstract_spec_two_dcs() {
    let n = 2;
    let cluster = launch(n, 2);
    let counts = run_workload(&cluster, n, 40, 7);
    let total: u64 = counts.iter().sum();
    assert!(cluster.wait_for_replication(total, Duration::from_secs(20)));
    let logs: Vec<Vec<Entry>> = (0..n)
        .map(|i| dump_log(&cluster, DatacenterId(i as u16)))
        .collect();
    for log in &logs {
        assert_eq!(log.len() as u64, total);
        assert_log_invariants(log, n);
    }
    assert_same_record_sets(&logs);
    cluster.shutdown();
}

#[test]
fn distributed_matches_abstract_spec_three_dcs() {
    let n = 3;
    let cluster = launch(n, 3);
    let counts = run_workload(&cluster, n, 45, 13);
    let total: u64 = counts.iter().sum();
    assert!(cluster.wait_for_replication(total, Duration::from_secs(20)));
    let logs: Vec<Vec<Entry>> = (0..n)
        .map(|i| dump_log(&cluster, DatacenterId(i as u16)))
        .collect();
    for log in &logs {
        assert_log_invariants(log, n);
    }
    assert_same_record_sets(&logs);
    cluster.shutdown();
}

#[test]
fn abstract_model_accepts_the_distributed_outcome() {
    // Replay the distributed system's per-DC local sequences into the
    // abstract cluster; after settle, both must contain the same records —
    // i.e. the distributed outcome is reachable by the abstract model.
    let n = 2;
    let cluster = launch(n, 2);
    let counts = run_workload(&cluster, n, 30, 99);
    let total: u64 = counts.iter().sum();
    assert!(cluster.wait_for_replication(total, Duration::from_secs(20)));
    let logs: Vec<Vec<Entry>> = (0..n)
        .map(|i| dump_log(&cluster, DatacenterId(i as u16)))
        .collect();

    let mut abstract_cluster = AbstractCluster::new(n);
    for dc in 0..n {
        let dcid = DatacenterId(dc as u16);
        // Local records of this DC, in TOId order.
        let mut local: Vec<&Entry> = logs[dc]
            .iter()
            .filter(|e| e.record.host() == dcid)
            .collect();
        local.sort_by_key(|e| e.record.toid());
        for e in local {
            abstract_cluster
                .dc_mut(dcid)
                .append(e.record.tags.clone(), e.record.body.clone());
        }
    }
    abstract_cluster.settle();
    for dc in 0..n {
        let dcid = DatacenterId(dc as u16);
        let mut abstract_ids: Vec<RecordId> = abstract_cluster
            .dc(dcid)
            .log()
            .iter()
            .map(|e| e.id())
            .collect();
        abstract_ids.sort();
        let mut distributed_ids: Vec<RecordId> = logs[dc].iter().map(|e| e.id()).collect();
        distributed_ids.sort();
        assert_eq!(abstract_ids, distributed_ids);
    }
    cluster.shutdown();
}

use chariots_types::RecordId;

#[test]
fn cross_dc_causal_chain_is_ordered_at_every_replica() {
    // A chain of length 6 hopping between datacenters: each append is made
    // by a client that read the previous link, so the chain is totally
    // causally ordered and must appear in chain order in every log.
    let n = 3;
    let cluster = launch(n, 2);
    let mut expected_order = Vec::new();
    for i in 0..6u64 {
        let dc = DatacenterId((i % n as u64) as u16);
        let mut client = cluster.client(dc);
        if i > 0 {
            // Read every record so far (establishing the dependency).
            assert!(
                cluster.wait_for_replication(i, Duration::from_secs(20)),
                "link {i} never replicated"
            );
            for l in 0..i {
                client.read(LId(l)).expect("chain prefix readable");
            }
        }
        let (toid, _lid) = client
            .append(TagSet::new(), format!("link{i}"))
            .expect("append link");
        expected_order.push((dc, toid));
    }
    assert!(cluster.wait_for_replication(6, Duration::from_secs(20)));
    for dc in 0..n {
        let log = dump_log(&cluster, DatacenterId(dc as u16));
        let got: Vec<(DatacenterId, TOId)> = log
            .iter()
            .map(|e| (e.record.host(), e.record.toid()))
            .collect();
        assert_eq!(got, expected_order, "chain order broken at DC {dc}");
        assert_log_invariants(&log, n);
    }
    cluster.shutdown();
}
