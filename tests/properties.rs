//! Property-based tests: randomized multi-datacenter workloads must always
//! satisfy the log invariants, and randomized fault patterns must never
//! break convergence.
//!
//! Each proptest case launches a real (fast-timing) deployment, so the
//! case counts are kept small; the workload space is still explored across
//! runs via proptest's RNG.

mod common;

use std::time::Duration;

use chariots::prelude::*;
use common::{assert_log_invariants, assert_same_record_sets, dump_log, launch};
use proptest::prelude::*;

/// One step of a randomized workload.
#[derive(Debug, Clone)]
enum Step {
    /// Append a record at this datacenter.
    Append(u16),
    /// Read the head of the log at this datacenter (pulls the reader's
    /// causal context forward, entangling later appends).
    ReadHead(u16),
}

fn arb_step(n: u16) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..n).prop_map(Step::Append),
        1 => (0..n).prop_map(Step::ReadHead),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 20,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_workloads_preserve_log_invariants(
        steps in proptest::collection::vec(arb_step(2), 5..30),
    ) {
        let n = 2usize;
        let cluster = launch(n, 1);
        let mut clients: Vec<ChariotsClient> =
            (0..n).map(|i| cluster.client(DatacenterId(i as u16))).collect();
        let mut appended = 0u64;
        for step in &steps {
            match step {
                Step::Append(dc) => {
                    clients[*dc as usize]
                        .append(TagSet::new(), format!("r{appended}"))
                        .expect("append");
                    appended += 1;
                }
                Step::ReadHead(dc) => {
                    let client = &mut clients[*dc as usize];
                    if let Ok(hl) = client.head_of_log() {
                        if hl > LId::ZERO {
                            let _ = client.read(LId(hl.0 - 1));
                        }
                    }
                }
            }
        }
        prop_assert!(
            cluster.wait_for_replication(appended, Duration::from_secs(30)),
            "replication of {} records never converged", appended
        );
        let logs: Vec<Vec<Entry>> = (0..n)
            .map(|i| dump_log(&cluster, DatacenterId(i as u16)))
            .collect();
        for log in &logs {
            prop_assert_eq!(log.len() as u64, appended);
            assert_log_invariants(log, n);
        }
        assert_same_record_sets(&logs);
        cluster.shutdown();
    }

    #[test]
    fn random_fault_patterns_still_converge(
        appends_a in 1u64..10,
        appends_b in 1u64..10,
        drop_prob in 0.0f64..0.4,
        dup_prob in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let wan = LinkConfig::with_latency(Duration::from_millis(1))
            .jitter(Duration::from_millis(2))
            .drop_prob(drop_prob)
            .duplicate_prob(dup_prob)
            .seed(seed);
        let cluster = ChariotsCluster::launch(
            common::fast_cfg(2),
            StageStations::default(),
            wan,
        ).expect("launch");
        let mut a = cluster.client(DatacenterId(0));
        let mut b = cluster.client(DatacenterId(1));
        for i in 0..appends_a {
            a.append(TagSet::new(), format!("a{i}")).expect("append at A");
        }
        for i in 0..appends_b {
            b.append(TagSet::new(), format!("b{i}")).expect("append at B");
        }
        let total = appends_a + appends_b;
        prop_assert!(
            cluster.wait_for_replication(total, Duration::from_secs(30)),
            "never converged under drop={drop_prob:.2} dup={dup_prob:.2}"
        );
        let logs = vec![
            dump_log(&cluster, DatacenterId(0)),
            dump_log(&cluster, DatacenterId(1)),
        ];
        for log in &logs {
            prop_assert_eq!(log.len() as u64, total, "wrong record count");
            assert_log_invariants(log, 2);
        }
        assert_same_record_sets(&logs);
        cluster.shutdown();
    }
}
