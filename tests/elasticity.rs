//! Live elasticity (§6.3) under load: adding batchers, queues, filters,
//! and log maintainers to a running deployment without disrupting clients.

mod common;

use std::time::{Duration, Instant};

use chariots::prelude::*;
use common::{assert_log_invariants, dump_log, fast_cfg};

fn launch_single_dc() -> ChariotsCluster {
    ChariotsCluster::launch(fast_cfg(1), StageStations::default(), LinkConfig::default()).unwrap()
}

/// Appends `n` records, asserting each round trip succeeds.
fn append_n(client: &mut chariots::core::ChariotsClient, n: u64, label: &str) {
    for i in 0..n {
        client
            .append(TagSet::new(), format!("{label}{i}"))
            .unwrap_or_else(|e| panic!("append {label}{i} failed: {e}"));
    }
}

fn wait_hl(cluster: &ChariotsCluster, at_least: u64) {
    assert!(
        cluster.wait_for_replication(at_least, Duration::from_secs(20)),
        "HL never reached {at_least}"
    );
}

#[test]
fn add_queue_mid_stream_preserves_the_log() {
    let mut cluster = launch_single_dc();
    let mut client = cluster.client(DatacenterId(0));
    append_n(&mut client, 20, "pre");
    let idx = cluster.dc_mut(DatacenterId(0)).add_queue();
    assert_eq!(idx, 1);
    append_n(&mut client, 20, "post");
    wait_hl(&cluster, 40);
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len(), 40);
    assert_log_invariants(&log, 1);
    // Both queues participated (the second assigned at least something —
    // the token visits it every cycle).
    cluster.shutdown();
}

#[test]
fn add_filter_mid_stream_preserves_the_log() {
    let mut cluster = launch_single_dc();
    let mut client = cluster.client(DatacenterId(0));
    append_n(&mut client, 15, "pre");
    let idx = cluster.dc_mut(DatacenterId(0)).add_filter(10);
    assert_eq!(idx, 1);
    append_n(&mut client, 30, "post");
    wait_hl(&cluster, 45);
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len(), 45);
    assert_log_invariants(&log, 1);
    cluster.shutdown();
}

#[test]
fn add_filter_reroutes_external_records_across_the_boundary() {
    // Two datacenters; DC 1 grows a filter while DC 0 streams records at
    // it. Exactly-once and total order must hold across the reassignment
    // boundary.
    let mut cluster = ChariotsCluster::launch(
        fast_cfg(2),
        StageStations::default(),
        LinkConfig::with_latency(Duration::from_millis(1)).jitter(Duration::from_millis(2)),
    )
    .unwrap();
    let mut a = cluster.client(DatacenterId(0));
    append_n(&mut a, 10, "early");
    assert!(cluster.wait_for_replication(10, Duration::from_secs(20)));
    // Grow DC 1's filter fleet with a small margin so the boundary lands
    // inside the upcoming stream.
    cluster.dc_mut(DatacenterId(1)).add_filter(15);
    append_n(&mut a, 40, "late");
    assert!(cluster.wait_for_replication(50, Duration::from_secs(20)));
    let log = dump_log(&cluster, DatacenterId(1));
    assert_eq!(log.len(), 50, "every record exactly once");
    assert_log_invariants(&log, 2);
    cluster.shutdown();
}

#[test]
fn grow_everything_under_continuous_load() {
    // The paper's elasticity story end-to-end: while a client streams
    // appends, add a batcher, a queue, a filter, and a log maintainer.
    let mut cluster = launch_single_dc();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let streamer = {
        let mut client = cluster.client(DatacenterId(0));
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sent = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                client
                    .append(TagSet::new(), format!("s{sent}"))
                    .expect("append during growth");
                sent += 1;
                std::thread::sleep(Duration::from_micros(300));
            }
            sent
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let dc = cluster.dc_mut(DatacenterId(0));
    dc.add_batcher();
    std::thread::sleep(Duration::from_millis(50));
    dc.add_queue();
    std::thread::sleep(Duration::from_millis(50));
    dc.add_filter(1000);
    std::thread::sleep(Duration::from_millis(50));
    // FLStore maintainer expansion needs a boundary beyond the current
    // frontier.
    let hl = {
        let mut c = cluster.dc(DatacenterId(0)).flstore().client();
        c.head_of_log().unwrap()
    };
    cluster
        .dc_mut(DatacenterId(0))
        .flstore_add_maintainer(LId(hl.0 + 2_000))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Release);
    let sent = streamer.join().unwrap();
    assert!(sent > 100, "streamer stalled: only {sent} appends");
    // Everything the client appended must become readable, in order.
    wait_hl(&cluster, sent);
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len() as u64, sent);
    assert_log_invariants(&log, 1);
    cluster.shutdown();
}

#[test]
fn added_queue_keeps_token_ring_alive_after_bursts() {
    let mut cluster = launch_single_dc();
    let mut client = cluster.client(DatacenterId(0));
    cluster.dc_mut(DatacenterId(0)).add_queue();
    cluster.dc_mut(DatacenterId(0)).add_queue();
    // Three queues; burst, go idle, burst again — the ring must survive
    // idleness.
    append_n(&mut client, 20, "b1");
    std::thread::sleep(Duration::from_millis(100));
    append_n(&mut client, 20, "b2");
    wait_hl(&cluster, 40);
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len(), 40);
    assert_log_invariants(&log, 1);
    cluster.shutdown();
}

#[test]
fn retire_batcher_under_load_keeps_every_record() {
    let mut cluster = launch_single_dc();
    let mut client = cluster.client(DatacenterId(0));
    cluster.dc_mut(DatacenterId(0)).add_batcher();
    append_n(&mut client, 25, "pre");
    // Drain-and-retire one batcher while the client keeps its handle.
    cluster.dc_mut(DatacenterId(0)).retire_batcher().unwrap();
    assert_eq!(cluster.dc(DatacenterId(0)).batcher_count(), 1);
    append_n(&mut client, 25, "post");
    wait_hl(&cluster, 50);
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len(), 50, "nothing lost or duplicated across retire");
    assert_log_invariants(&log, 1);
    cluster.shutdown();
}

#[test]
fn retire_queue_preserves_the_token_ring() {
    let mut cluster = launch_single_dc();
    let mut client = cluster.client(DatacenterId(0));
    cluster.dc_mut(DatacenterId(0)).add_queue();
    cluster.dc_mut(DatacenterId(0)).add_queue();
    append_n(&mut client, 20, "pre");
    // Shrink 3 → 2 → 1; the ring must stay whole each time (the token
    // keeps circulating through the survivors).
    cluster
        .dc_mut(DatacenterId(0))
        .retire_queue(Duration::from_secs(10))
        .unwrap();
    append_n(&mut client, 20, "mid");
    cluster
        .dc_mut(DatacenterId(0))
        .retire_queue(Duration::from_secs(10))
        .unwrap();
    assert_eq!(cluster.dc(DatacenterId(0)).queue_count(), 1);
    // Burst, go idle, burst again — a broken ring would stall here.
    append_n(&mut client, 10, "b1");
    std::thread::sleep(Duration::from_millis(100));
    append_n(&mut client, 10, "b2");
    wait_hl(&cluster, 60);
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len(), 60);
    assert_log_invariants(&log, 1);
    cluster.shutdown();
}

#[test]
fn retiring_the_last_machine_of_a_stage_is_refused() {
    let mut cluster = launch_single_dc();
    let dc = cluster.dc_mut(DatacenterId(0));
    assert!(dc.retire_batcher().is_err(), "last batcher must survive");
    assert!(
        dc.retire_queue(Duration::from_secs(1)).is_err(),
        "last queue must survive"
    );
    // The refusals left the pipeline fully functional.
    let mut client = cluster.client(DatacenterId(0));
    append_n(&mut client, 10, "after");
    wait_hl(&cluster, 10);
    cluster.shutdown();
}

#[test]
fn autoscaler_launch_and_stop_hand_the_cluster_back_intact() {
    // Lifecycle only: no load, so a default-policy autoscaler must not
    // act; the cluster comes back usable and the timeline non-empty.
    let cluster = launch_single_dc();
    let mut client = cluster.client(DatacenterId(0));
    append_n(&mut client, 10, "pre");
    let mut cfg = AutoscaleConfig {
        interval: Duration::from_millis(20),
        ..AutoscaleConfig::default()
    };
    cfg.collector.interval = Duration::from_millis(10);
    let handle = Autoscaler::launch(cluster, cfg);
    append_n(&mut client, 10, "during");
    std::thread::sleep(Duration::from_millis(150));
    let outcome = handle.stop();
    assert!(outcome.summary.evals > 0, "control loop never evaluated");
    assert!(
        outcome.summary.actions.is_empty(),
        "quiet cluster must not be reconfigured: {:?}",
        outcome.summary.actions
    );
    assert!(!outcome.timeline.ticks.is_empty());
    let cluster = outcome.cluster;
    append_n(&mut client, 10, "post");
    wait_hl(&cluster, 30);
    let log = dump_log(&cluster, DatacenterId(0));
    assert_eq!(log.len(), 30);
    assert_log_invariants(&log, 1);
    cluster.shutdown();
}

#[test]
fn hl_remains_safe_during_maintainer_growth() {
    // Reads below the HL must never fail across a maintainer expansion.
    let mut cluster = launch_single_dc();
    let mut client = cluster.client(DatacenterId(0));
    append_n(&mut client, 30, "pre");
    wait_hl(&cluster, 30);
    cluster
        .dc_mut(DatacenterId(0))
        .flstore_add_maintainer(LId(1_000))
        .unwrap();
    // Probe reads below the HL repeatedly while appending more.
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut i = 0u64;
    while Instant::now() < deadline {
        client.append(TagSet::new(), format!("g{i}")).unwrap();
        i += 1;
        let hl = client.head_of_log().unwrap();
        if hl > LId::ZERO {
            let probe = LId(hl.0 - 1);
            client
                .read(probe)
                .unwrap_or_else(|e| panic!("read below HL failed at {probe}: {e}"));
        }
    }
    cluster.shutdown();
}
