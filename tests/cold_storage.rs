//! Cold-storage archiving (§6.1): the hot log reclaims its prefix while an
//! archive keeps the full history readable — the substrate for auditing
//! and time travel.

mod common;

use std::time::{Duration, Instant};

use chariots::flstore::{ArchiveReader, ArchiveWriter};
use chariots::prelude::*;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chariots-cold-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn archive_then_gc_keeps_history_readable() {
    let store = FLStore::launch(
        DatacenterId(0),
        FLStoreConfig::new()
            .maintainers(2)
            .batch_size(4)
            .gossip_interval(Duration::from_millis(1)),
    )
    .unwrap();
    let mut client = store.client();
    // 24 appends = 12 per maintainer = whole rounds, so the HL can cover
    // everything (a partial round leaves its tail as a gap).
    for i in 0..24 {
        client
            .append(
                TagSet::new().with(Tag::with_value("seq", i as i64)),
                format!("record-{i}"),
            )
            .unwrap();
    }
    // Wait for the head to cover everything.
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.head_of_log().unwrap() < LId(24) {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }

    // Archive + GC the first 12 positions.
    let path = temp_path("tiered.arc");
    let mut writer = ArchiveWriter::open(&path).unwrap();
    store.archive_and_gc(LId(12), &mut writer).unwrap();
    assert_eq!(writer.archived_below(), LId(12));

    // Hot reads below the bound fail as collected…
    std::thread::sleep(Duration::from_millis(30));
    assert!(matches!(
        client.read(LId(0)),
        Err(ChariotsError::GarbageCollected(_))
    ));
    // …hot reads above still work…
    assert!(client.read(LId(12)).is_ok());
    // …and the archive serves the cold prefix, bodies intact.
    let reader = ArchiveReader::open(&path).unwrap();
    assert_eq!(reader.len(), 12);
    for lid in 0..12u64 {
        let entry = reader.read(LId(lid)).unwrap();
        assert_eq!(entry.lid, LId(lid));
    }
    // The full history = archive prefix + hot suffix, in order.
    let mut full: Vec<LId> = reader.iter().map(|e| e.lid).collect();
    for lid in 12..24u64 {
        full.push(client.read(LId(lid)).unwrap().lid);
    }
    assert_eq!(full, (0..24).map(LId).collect::<Vec<_>>());

    store.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn incremental_archiving_moves_the_boundary() {
    let store = FLStore::launch(
        DatacenterId(0),
        FLStoreConfig::new()
            .maintainers(2)
            .batch_size(4)
            .gossip_interval(Duration::from_millis(1)),
    )
    .unwrap();
    let mut client = store.client();
    let path = temp_path("incremental.arc");
    let mut writer = ArchiveWriter::open(&path).unwrap();

    for round in 0..3u64 {
        for i in 0..8 {
            client
                .append(TagSet::new(), format!("r{round}-{i}"))
                .unwrap();
        }
        let target = LId((round + 1) * 8);
        let deadline = Instant::now() + Duration::from_secs(5);
        while client.head_of_log().unwrap() < target {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        store.archive_and_gc(target, &mut writer).unwrap();
        assert_eq!(writer.archived_below(), target);
    }
    let reader = ArchiveReader::open(&path).unwrap();
    assert_eq!(reader.len(), 24, "three rounds archived without overlap");
    store.shutdown();
    let _ = std::fs::remove_file(&path);
}
