//! Chaos test for maintainer replica groups: with replication factor 2,
//! crashing a primary mid-workload must not stall the shared log — the
//! failure detector suspects it, the monitor promotes the caught-up
//! backup, clients ride out the window on retries, and the restarted
//! replica is repaired back to the group's frontier.

use std::time::{Duration, Instant};

use chariots::prelude::*;
use chariots_flstore::replica_key;

#[test]
fn primary_crash_mid_workload_fails_over_without_stalling() {
    let cfg = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(4)
        .gossip_interval(Duration::from_millis(1))
        .replication(2)
        .heartbeat_interval(Duration::from_millis(2))
        .suspicion_timeout(Duration::from_millis(40));
    let store = FLStore::launch(DatacenterId(0), cfg).unwrap();
    let mut client = store.client();

    // Steady pre-crash workload, spread round-robin over both groups.
    for i in 0..12 {
        client.append(TagSet::new(), format!("pre{i}")).unwrap();
    }

    let group = store.maintainers()[0].clone();
    let old_primary = group.state().primary_index();
    let old_generation = group.generation();
    let pre_crash_frontier = group.stats().unwrap().frontier;
    let pre_crash_hl = client.head_of_log().unwrap();
    group.crash();

    // Appends keep completing through the crash window: attempts that land
    // on the dead primary retry with backoff until the promotion re-routes
    // them. The paced loop comfortably outlasts the suspicion timeout, so
    // plenty of appends land *after* failover too — every one must
    // succeed, no crash-window errors surface to the client.
    for i in 0..300 {
        client.append(TagSet::new(), format!("during{i}")).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    // The failover is observable: the monitor bumped the counter, the
    // group's primary seat moved, and the generation fences the old one.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let failovers = store
            .metrics()
            .counters
            .get("dc0.flstore.failover.count")
            .copied()
            .unwrap_or(0);
        if failovers >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "failover never counted");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_ne!(group.state().primary_index(), old_primary);
    assert!(group.generation() > old_generation);
    let detector = store.failure_detector().expect("replication enables it");
    assert!(
        detector.is_suspected(&replica_key(group.id, old_primary)),
        "crashed primary should be suspected"
    );

    // The crashed group's slice of the log kept filling: the promoted
    // backup accepted appends past the dead primary's frontier, and the
    // head of the log moved beyond its pre-crash value instead of
    // stalling there. Every position below the final HL reads back.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut hl = pre_crash_hl;
    while Instant::now() < deadline
        && (hl <= pre_crash_hl || group.stats().unwrap().frontier <= pre_crash_frontier)
    {
        hl = client.head_of_log().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(hl > pre_crash_hl, "head of log stalled at {hl}");
    assert!(
        group.stats().unwrap().frontier > pre_crash_frontier,
        "crashed group's range stopped filling"
    );
    for l in 0..hl.0 {
        assert!(client.read(LId(l)).is_ok(), "gap below HL at {l}");
    }

    // Restart the deposed primary: anti-entropy repair must catch it up to
    // the group's frontier (it missed the whole crash-window suffix).
    let frontier = group.stats().unwrap().frontier;
    group.replicas()[old_primary].recover();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let caught_up = group.replicas()[old_primary]
            .stats()
            .map(|s| s.frontier >= frontier)
            .unwrap_or(false);
        if caught_up {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "restarted replica never caught up to {frontier}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // And the group still serves appends after all that.
    client.append(TagSet::new(), "post").unwrap();
    store.shutdown();
}
