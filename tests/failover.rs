//! Chaos tests for maintainer replica groups: with replication factor 2,
//! crashing a primary mid-workload must not stall the shared log — the
//! failure detector suspects it, the monitor promotes the caught-up
//! backup, clients ride out the window on retries, and the restarted
//! replica is repaired back to the group's frontier. And under pipelined
//! quorum commit, an append acked at f+1 durable copies must survive the
//! primary crashing before its *own* WAL fsync ever returned.

use std::sync::Arc;
use std::time::{Duration, Instant};

use chariots::prelude::*;
use chariots_flstore::epoch::EpochJournal;
use chariots_flstore::maintainer::{AppendPayload, MaintainerCore};
use chariots_flstore::node::{spawn_replica, BatchPolicy, Fabric};
use chariots_flstore::range::RangeMap;
use chariots_flstore::replica_key;
use chariots_flstore::replication::{run_failover, GroupState, ReplicaCtx, ReplicaGroupHandle};
use chariots_simnet::{
    Counter, EventJournal, FailureDetector, ServiceStation, Shutdown, StationConfig,
};
use chariots_types::{CommitMode, MaintainerId};

#[test]
fn primary_crash_mid_workload_fails_over_without_stalling() {
    let cfg = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(4)
        .gossip_interval(Duration::from_millis(1))
        .replication(2)
        .heartbeat_interval(Duration::from_millis(2))
        .suspicion_timeout(Duration::from_millis(40));
    let store = FLStore::launch(DatacenterId(0), cfg).unwrap();
    let mut client = store.client();

    // Steady pre-crash workload, spread round-robin over both groups.
    for i in 0..12 {
        client.append(TagSet::new(), format!("pre{i}")).unwrap();
    }

    let group = store.maintainers()[0].clone();
    let old_primary = group.state().primary_index();
    let old_generation = group.generation();
    let pre_crash_frontier = group.stats().unwrap().frontier;
    let pre_crash_hl = client.head_of_log().unwrap();
    group.crash();

    // Appends keep completing through the crash window: attempts that land
    // on the dead primary retry with backoff until the promotion re-routes
    // them. The paced loop comfortably outlasts the suspicion timeout, so
    // plenty of appends land *after* failover too — every one must
    // succeed, no crash-window errors surface to the client.
    for i in 0..300 {
        client.append(TagSet::new(), format!("during{i}")).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    // The failover is observable: the monitor bumped the counter, the
    // group's primary seat moved, and the generation fences the old one.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let failovers = store
            .metrics()
            .counters
            .get("dc0.flstore.failover.count")
            .copied()
            .unwrap_or(0);
        if failovers >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "failover never counted");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_ne!(group.state().primary_index(), old_primary);
    assert!(group.generation() > old_generation);
    let detector = store.failure_detector().expect("replication enables it");
    assert!(
        detector.is_suspected(&replica_key(group.id, old_primary)),
        "crashed primary should be suspected"
    );

    // The crashed group's slice of the log kept filling: the promoted
    // backup accepted appends past the dead primary's frontier, and the
    // head of the log moved beyond its pre-crash value instead of
    // stalling there. Every position below the final HL reads back.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut hl = pre_crash_hl;
    while Instant::now() < deadline
        && (hl <= pre_crash_hl || group.stats().unwrap().frontier <= pre_crash_frontier)
    {
        hl = client.head_of_log().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(hl > pre_crash_hl, "head of log stalled at {hl}");
    assert!(
        group.stats().unwrap().frontier > pre_crash_frontier,
        "crashed group's range stopped filling"
    );
    for l in 0..hl.0 {
        assert!(client.read(LId(l)).is_ok(), "gap below HL at {l}");
    }

    // Restart the deposed primary: anti-entropy repair must catch it up to
    // the group's frontier (it missed the whole crash-window suffix).
    let frontier = group.stats().unwrap().frontier;
    group.replicas()[old_primary].recover();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let caught_up = group.replicas()[old_primary]
            .stats()
            .map(|s| s.frontier >= frontier)
            .unwrap_or(false);
        if caught_up {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "restarted replica never caught up to {frontier}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // And the group still serves appends after all that.
    client.append(TagSet::new(), "post").unwrap();
    store.shutdown();
}

/// The pipelined quorum commit's central durability promise, under the
/// nastiest crash window it admits: an rf=3 group whose primary pays an
/// artificially slow WAL fsync acks appends at f+1 = 2 durable copies (the
/// two fast backups) while the primary's own fsync is still in flight —
/// then the primary crashes before that fsync ever returns. Every acked
/// LId must be served by the promoted backup, and post-failover appends
/// must not reuse any acked position.
#[test]
fn acked_append_survives_primary_crash_before_its_own_fsync() {
    let sync_delay = Duration::from_millis(500);
    let journal = EpochJournal::new(RangeMap::new(1, 64));
    let fabric = Fabric::new();
    let shutdown = Shutdown::new();
    let detector = FailureDetector::new(Duration::from_millis(40));
    let state = Arc::new(GroupState::new(MaintainerId(0)));
    let appended = Counter::new();
    let mut raw = Vec::new();
    let mut threads = Vec::new();
    for r in 0..3 {
        let mut core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone());
        if r == 0 {
            // Only the primary's durability point is slowed: the overlap
            // window between "backups durable" and "primary durable" is
            // stretched wide enough to crash inside deterministically.
            core = core.with_sync_delay(sync_delay);
        }
        detector.register(replica_key(MaintainerId(0), r));
        let station = Arc::new(ServiceStation::new(
            format!("m0-r{r}"),
            StationConfig::uncapped(),
        ));
        let ctx = ReplicaCtx {
            group: Arc::clone(&state),
            index: r,
            detector: Some(detector.clone()),
            heartbeat_interval: Duration::from_millis(2),
            commit_mode: CommitMode::PipelinedQuorum,
        };
        let (h, t) = spawn_replica(
            core,
            station,
            fabric.clone(),
            Duration::from_millis(1),
            shutdown.clone(),
            ctx,
            appended.clone(),
            BatchPolicy::default(),
        );
        raw.push(h);
        threads.push(t);
    }
    state.set_replicas(raw.clone());
    let group = ReplicaGroupHandle::new(MaintainerId(0), Arc::clone(&state), appended);
    fabric.set_peers(vec![group.clone()]);

    // The append acks at quorum — both backups durable — while the
    // primary is still asleep inside its own fsync.
    let payload = AppendPayload::new(TagSet::new(), bytes::Bytes::from_static(b"pipelined"));
    let t0 = Instant::now();
    let ids = group.append(vec![payload]).unwrap();
    let ack_latency = t0.elapsed();
    assert!(
        ack_latency < Duration::from_millis(400),
        "ack took {ack_latency:?}: it waited out the primary's {sync_delay:?} fsync \
         instead of committing at quorum"
    );
    let acked: Vec<LId> = ids.iter().map(|&(_, lid)| lid).collect();
    // Both backups already hold every acked position durably.
    for backup in &raw[1..] {
        for lid in &acked {
            assert_eq!(backup.read(*lid, false).unwrap().lid, *lid);
        }
    }

    // Crash the primary NOW — its own fsync (and the WAL durability of the
    // acked records on seat 0) never completes.
    raw[0].crash();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !detector.is_suspected(&replica_key(MaintainerId(0), 0)) {
        assert!(Instant::now() < deadline, "crashed primary never suspected");
        std::thread::sleep(Duration::from_millis(2));
    }
    let failovers = Counter::new();
    let events = EventJournal::default();
    assert_eq!(
        run_failover(&[group.clone()], &detector, &failovers, &events),
        1
    );
    let new_primary = state.primary_index();
    assert_ne!(new_primary, 0, "crashed seat must not be promoted");

    // The durability promise: the promoted backup serves every acked LId.
    let promoted = state.replica(new_primary).unwrap();
    for lid in &acked {
        let entry = promoted.read(*lid, false).unwrap();
        assert_eq!(entry.lid, *lid);
        assert_eq!(&entry.record.body[..], b"pipelined");
    }

    // And the group keeps assigning *past* the acked suffix — no LId is
    // ever reused for a different record.
    let payload = AppendPayload::new(TagSet::new(), bytes::Bytes::from_static(b"after"));
    let post = group.append(vec![payload]).unwrap();
    let max_acked = acked.iter().copied().max().unwrap();
    assert!(
        post[0].1 > max_acked,
        "post-failover append reused or preceded an acked position"
    );

    shutdown.signal();
    for t in threads {
        t.join().unwrap();
    }
}
