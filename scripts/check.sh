#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> batching smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/batching-metrics.json batching

echo "==> commitpath smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/commitpath-metrics.json commitpath

echo "==> readpath smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/readpath-metrics.json readpath

echo "==> recovery smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/recovery-metrics.json recovery

echo "==> geo smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/geo-metrics.json geo

echo "==> obs smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/obs-metrics.json \
  --timeline-out target/bench-artifacts/obs-timeline.json \
  --trace-out target/bench-artifacts/obs-trace.json obs

echo "==> elasticity smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/elasticity-metrics.json \
  --timeline-out target/bench-artifacts/elasticity-timeline.json elasticity

echo "==> wire smoke gate"
cargo run --release -p chariots-bench --bin harness -- \
  --smoke --metrics-out target/bench-artifacts/wire-metrics.json wire

echo "All checks passed."
