//! Thread-hosted servers wrapping the synchronous cores: each simulated
//! machine (maintainer or indexer) is one worker thread fed by a channel,
//! paced by its [`ServiceStation`].
//!
//! The maintainer node is a **group-commit batch engine** (§5.2's "batches
//! of records" made real): after the first blocking `recv`, the loop
//! opportunistically drains further queued `Append`/`Store` requests into
//! one batch bounded by [`BatchPolicy`], then pays one station admission,
//! one generation capture, one application pass, one WAL flush+fsync
//! (under the configured [`WalSyncPolicy`](chariots_types::WalSyncPolicy)),
//! and one replication push per live backup — the pushed entries are a
//! shared `Arc<[Entry]>`, never deep-cloned per backup — before fanning
//! replies out to every waiter.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chariots_simnet::{
    spawn_wire_listener, Counter, EventJournal, EventKind, Gauge, Histogram, MetricsRegistry,
    Notify, ReplyTo, ServiceStation, Shutdown, StageTracer, TcpSender, TransportMetrics,
};
use chariots_types::{
    ChariotsError, CommitMode, Entry, Generation, LId, Limit, MaintainerId, Result, TOId, TagValue,
    TraceId, ValuePredicate, Wire, WireReader,
};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;

use crate::indexer::{indexer_for, IndexerCore};
use crate::maintainer::{AppendPayload, MaintainerCore, MaintainerStats};
use crate::range::RangeMap;
use crate::replication::commit::{
    quorum_required, CommitOutcomeCtx, CommitWaiter, MAX_PENDING_COMMITS,
};
use crate::replication::{GroupState, ReplicaCtx, ReplicaGroupHandle};

/// Reply slot for append requests: the assigned `(TOId, LId)` pairs. A
/// [`ReplyTo`] rather than a raw channel sender so the slot survives a TCP
/// hop — serialized, it becomes a dial-back token the serving node answers
/// across the wire.
pub type AppendReplySender = ReplyTo<Result<Vec<(TOId, LId)>>>;

/// Bounds on how many queued requests the node loop coalesces into one
/// group-commit batch (config knobs `max_batch_records` /
/// `max_batch_bytes`). A records bound of 1 disables coalescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum records (payloads + pre-routed entries) per batch.
    pub max_records: usize,
    /// Maximum summed record-body bytes per batch.
    pub max_bytes: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_records: 512,
            max_bytes: 1 << 20,
        }
    }
}

/// Requests served by a maintainer node.
pub enum MaintainerRequest {
    /// Post-assigned append of a batch of payloads. `reply` is `None` for
    /// open-loop load generation (fire-and-forget).
    Append {
        /// Payloads to append.
        payloads: Vec<AppendPayload>,
        /// Where to send the assigned ids, if anyone is waiting.
        reply: Option<AppendReplySender>,
    },
    /// Explicit-order append: the assigned position must exceed `min`.
    AppendMinBound {
        /// Payload to append.
        payload: AppendPayload,
        /// Minimum-bound position.
        min: LId,
        /// Immediate assignment, or `None` if parked.
        reply: ReplyTo<Result<Option<(TOId, LId)>>>,
    },
    /// Store entries whose positions were pre-routed by the Chariots
    /// queues.
    Store {
        /// Entries to persist.
        entries: Vec<Entry>,
    },
    /// Primary→backup replication of already-assigned entries (also used
    /// by anti-entropy repair). Unlike `Store`, duplicates are overwritten
    /// rather than rejected, and no tag postings or counters fire — the
    /// acting primary already accounted for the records.
    Replicate {
        /// Entries to persist on this replica. Shared: the primary sends
        /// every backup the same allocation instead of a deep copy each.
        entries: Arc<[Entry]>,
        /// The sender's view of the group generation (fencing).
        generation: Generation,
        /// Replies with this replica's frontier after applying. `None` for
        /// pipelined sends, which report through the commit tracker
        /// instead.
        reply: Option<Sender<Result<LId>>>,
        /// Pipelined-commit sequence number to ack durability against
        /// (`None` for synchronous anti-entropy/serial replication).
        seq: Option<u64>,
    },
    /// Read one position.
    Read {
        /// Position to read.
        lid: LId,
        /// Whether to refuse positions at/above the Head of the Log.
        enforce_hl: bool,
        /// Reply channel.
        reply: ReplyTo<Result<Entry>>,
    },
    /// Read several positions in one round trip (scatter-gather read
    /// path). Each position is gated exactly like a single `Read`; the
    /// reply carries one result per requested position, in request order.
    ReadBatch {
        /// Positions to read.
        lids: Vec<LId>,
        /// Whether to refuse positions at/above the Head of the Log.
        enforce_hl: bool,
        /// Reply channel (one result per position, in order).
        reply: ReplyTo<Vec<Result<Entry>>>,
    },
    /// Scan owned entries with `lid ≥ from` (sender/reader bulk path).
    Scan {
        /// Scan start.
        from: LId,
        /// Maximum entries returned.
        max: usize,
        /// Reply channel.
        reply: ReplyTo<Vec<Entry>>,
    },
    /// Ask for this maintainer's view of the Head of the Log.
    HeadOfLog {
        /// Reply channel.
        reply: ReplyTo<LId>,
    },
    /// Incorporate a peer's gossiped frontier.
    GossipIn {
        /// Gossiping maintainer.
        from: MaintainerId,
        /// Its advertised frontier.
        frontier: LId,
    },
    /// Apply a future reassignment (§6.3).
    AnnounceEpoch {
        /// First position governed by the new map.
        start: LId,
        /// The new striping.
        map: RangeMap,
    },
    /// Garbage-collect owned positions below `before`.
    Gc {
        /// Exclusive GC bound.
        before: LId,
    },
    /// Fetch live counters.
    Stats {
        /// Reply channel.
        reply: Sender<MaintainerStats>,
    },
}

/// The request variants a client may route over TCP: the append/read/scan
/// family. `Replicate`, gossip, epoch, GC, and stats traffic is the
/// simulation harness talking to the machine and stays on the in-process
/// channel — those variants encode as an invalid tag, so a decoder drops
/// them instead of ever reconstructing one from the network.
impl Wire for MaintainerRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MaintainerRequest::Append { payloads, reply } => {
                buf.push(0);
                payloads.encode(buf);
                reply.encode(buf);
            }
            MaintainerRequest::AppendMinBound {
                payload,
                min,
                reply,
            } => {
                buf.push(1);
                payload.encode(buf);
                min.encode(buf);
                reply.encode(buf);
            }
            MaintainerRequest::Store { entries } => {
                buf.push(2);
                entries.encode(buf);
            }
            MaintainerRequest::Read {
                lid,
                enforce_hl,
                reply,
            } => {
                buf.push(3);
                lid.encode(buf);
                enforce_hl.encode(buf);
                reply.encode(buf);
            }
            MaintainerRequest::ReadBatch {
                lids,
                enforce_hl,
                reply,
            } => {
                buf.push(4);
                lids.encode(buf);
                enforce_hl.encode(buf);
                reply.encode(buf);
            }
            MaintainerRequest::Scan { from, max, reply } => {
                buf.push(5);
                from.encode(buf);
                max.encode(buf);
                reply.encode(buf);
            }
            MaintainerRequest::HeadOfLog { reply } => {
                buf.push(6);
                reply.encode(buf);
            }
            MaintainerRequest::Replicate { .. }
            | MaintainerRequest::GossipIn { .. }
            | MaintainerRequest::AnnounceEpoch { .. }
            | MaintainerRequest::Gc { .. }
            | MaintainerRequest::Stats { .. } => buf.push(u8::MAX),
        }
    }

    fn decode(r: &mut WireReader) -> Option<Self> {
        match r.u8()? {
            0 => Some(MaintainerRequest::Append {
                payloads: Vec::<AppendPayload>::decode(r)?,
                reply: Option::<AppendReplySender>::decode(r)?,
            }),
            1 => Some(MaintainerRequest::AppendMinBound {
                payload: AppendPayload::decode(r)?,
                min: LId::decode(r)?,
                reply: ReplyTo::<Result<Option<(TOId, LId)>>>::decode(r)?,
            }),
            2 => Some(MaintainerRequest::Store {
                entries: Vec::<Entry>::decode(r)?,
            }),
            3 => Some(MaintainerRequest::Read {
                lid: LId::decode(r)?,
                enforce_hl: bool::decode(r)?,
                reply: ReplyTo::<Result<Entry>>::decode(r)?,
            }),
            4 => Some(MaintainerRequest::ReadBatch {
                lids: Vec::<LId>::decode(r)?,
                enforce_hl: bool::decode(r)?,
                reply: ReplyTo::<Vec<Result<Entry>>>::decode(r)?,
            }),
            5 => Some(MaintainerRequest::Scan {
                from: LId::decode(r)?,
                max: usize::decode(r)?,
                reply: ReplyTo::<Vec<Entry>>::decode(r)?,
            }),
            6 => Some(MaintainerRequest::HeadOfLog {
                reply: ReplyTo::<LId>::decode(r)?,
            }),
            _ => None,
        }
    }
}

/// Client-side handle to a maintainer node. Cheap to clone.
#[derive(Clone)]
pub struct MaintainerHandle {
    /// The maintainer's id.
    pub id: MaintainerId,
    tx: Sender<MaintainerRequest>,
    station: Arc<ServiceStation>,
    appended: Counter,
    /// Replication RPCs received by this node (one per `replicate` call,
    /// however many entries it carries) — observable proof that a drained
    /// batch costs each backup a single push.
    replicate_rpcs: Counter,
    /// When set, the client-facing RPCs (append/read/scan family) travel
    /// over this TCP connection instead of the in-process channel.
    wire: Option<Arc<TcpSender>>,
}

impl MaintainerHandle {
    /// Routes a client-facing request: over TCP when this handle was
    /// wrapped by [`via_tcp`](Self::via_tcp), the in-process channel
    /// otherwise. Wire failures surface as the transient
    /// [`ChariotsError::Transport`], so retry-driven clients ride them out.
    fn dispatch(&self, req: MaintainerRequest) -> Result<()> {
        match &self.wire {
            Some(wire) => wire.send(&req),
            None => self.tx.send(req).map_err(|_| ChariotsError::ShutDown),
        }
    }

    /// Wraps this handle so its client-facing RPCs (append/read/scan
    /// family) travel over a real loopback TCP socket: a listener thread
    /// feeds the node's queue and the returned handle carries a
    /// reconnecting [`TcpSender`]. Replication, gossip, epoch, GC, stats,
    /// and crash/recover stay on the local channel — they are the harness
    /// modelling the machine, not client traffic. Station accounting stays
    /// on the sending side (the shared [`ServiceStation`]), so a request
    /// is never counted twice.
    pub fn via_tcp(
        &self,
        name: &str,
        shutdown: Shutdown,
        metrics: TransportMetrics,
    ) -> std::io::Result<MaintainerHandle> {
        let tx = self.tx.clone();
        let addr = spawn_wire_listener(
            name,
            shutdown,
            metrics.clone(),
            move |req: MaintainerRequest| {
                let _ = tx.send(req);
            },
        )?;
        let mut wired = self.clone();
        wired.wire = Some(Arc::new(TcpSender::new(addr, metrics)));
        Ok(wired)
    }

    /// Fire-and-forget append (open-loop load generation).
    pub fn append_async(&self, payloads: Vec<AppendPayload>) -> bool {
        self.station.note_arrival(payloads.len() as u64);
        self.dispatch(MaintainerRequest::Append {
            payloads,
            reply: None,
        })
        .is_ok()
    }

    /// Append and wait for the assigned `(TOId, LId)` pairs.
    ///
    /// The reply arrives only after the whole group-commit batch this
    /// request rode in has **committed**: applied locally, WAL-synced under
    /// the configured policy, and acked by every live backup. The node may
    /// coalesce this request with other queued `Append`/`Store` requests up
    /// to the [`BatchPolicy`] bounds, which amortizes the fsync and the
    /// replication round trip without changing the serial semantics — each
    /// request still succeeds or fails on its own application outcome.
    pub fn append(&self, payloads: Vec<AppendPayload>) -> Result<Vec<(TOId, LId)>> {
        self.station.note_arrival(payloads.len() as u64);
        let (reply, rx) = bounded(1);
        self.dispatch(MaintainerRequest::Append {
            payloads,
            reply: Some(ReplyTo::local(reply)),
        })?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)?
    }

    /// Explicit-order append with a minimum bound.
    pub fn append_min_bound(
        &self,
        payload: AppendPayload,
        min: LId,
    ) -> Result<Option<(TOId, LId)>> {
        self.station.note_arrival(1);
        let (reply, rx) = bounded(1);
        self.dispatch(MaintainerRequest::AppendMinBound {
            payload,
            min,
            reply: ReplyTo::local(reply),
        })?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)?
    }

    /// Store pre-routed entries (Chariots queues stage).
    pub fn store(&self, entries: Vec<Entry>) -> bool {
        self.station.note_arrival(entries.len() as u64);
        self.dispatch(MaintainerRequest::Store { entries }).is_ok()
    }

    /// Replicates already-assigned entries onto this replica, stamped with
    /// the sender's group generation. Returns the replica's frontier after
    /// applying; a stale generation is fenced. The entries are shared — a
    /// primary fanning one batch out to several backups clones the `Arc`,
    /// not the payloads.
    pub fn replicate(&self, entries: Arc<[Entry]>, generation: Generation) -> Result<LId> {
        self.station.note_arrival(entries.len() as u64);
        self.replicate_rpcs.add(1);
        let (reply, rx) = bounded(1);
        self.tx
            .send(MaintainerRequest::Replicate {
                entries,
                generation,
                reply: Some(reply),
                seq: None,
            })
            .map_err(|_| ChariotsError::ShutDown)?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)?
    }

    /// Non-blocking replication push for the pipelined commit path: the
    /// backup fsyncs the entries and reports durability for batch `seq`
    /// through the group's commit tracker instead of a reply channel.
    /// Returns `false` if the backup's channel is gone (counts as an
    /// immediate failure for the quorum).
    pub fn replicate_async(&self, entries: Arc<[Entry]>, generation: Generation, seq: u64) -> bool {
        self.station.note_arrival(entries.len() as u64);
        self.replicate_rpcs.add(1);
        self.tx
            .send(MaintainerRequest::Replicate {
                entries,
                generation,
                reply: None,
                seq: Some(seq),
            })
            .is_ok()
    }

    /// Read one position.
    pub fn read(&self, lid: LId, enforce_hl: bool) -> Result<Entry> {
        let (reply, rx) = bounded(1);
        self.dispatch(MaintainerRequest::Read {
            lid,
            enforce_hl,
            reply: ReplyTo::local(reply),
        })?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)?
    }

    /// Read several positions in one round trip. Returns one result per
    /// requested position, in request order; the outer `Result` only fails
    /// when the node is gone.
    pub fn read_batch(&self, lids: Vec<LId>, enforce_hl: bool) -> Result<Vec<Result<Entry>>> {
        let (reply, rx) = bounded(1);
        self.dispatch(MaintainerRequest::ReadBatch {
            lids,
            enforce_hl,
            reply: ReplyTo::local(reply),
        })?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)
    }

    /// Scan owned entries with `lid ≥ from`.
    pub fn scan(&self, from: LId, max: usize) -> Result<Vec<Entry>> {
        let (reply, rx) = bounded(1);
        self.dispatch(MaintainerRequest::Scan {
            from,
            max,
            reply: ReplyTo::local(reply),
        })?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)
    }

    /// This maintainer's view of the Head of the Log.
    pub fn head_of_log(&self) -> Result<LId> {
        let (reply, rx) = bounded(1);
        self.dispatch(MaintainerRequest::HeadOfLog {
            reply: ReplyTo::local(reply),
        })?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)
    }

    /// Live counters.
    pub fn stats(&self) -> Result<MaintainerStats> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(MaintainerRequest::Stats { reply })
            .map_err(|_| ChariotsError::ShutDown)?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)
    }

    /// Injects gossip (used by peers and tests).
    pub fn gossip_in(&self, from: MaintainerId, frontier: LId) {
        let _ = self.tx.send(MaintainerRequest::GossipIn { from, frontier });
    }

    /// Announces a future reassignment to this maintainer.
    pub fn announce_epoch(&self, start: LId, map: RangeMap) {
        let _ = self
            .tx
            .send(MaintainerRequest::AnnounceEpoch { start, map });
    }

    /// Requests garbage collection below `before`.
    pub fn gc(&self, before: LId) {
        let _ = self.tx.send(MaintainerRequest::Gc { before });
    }

    /// Crashes the simulated machine (requests fail until recovery).
    pub fn crash(&self) {
        self.station.crash();
    }

    /// Recovers the simulated machine.
    pub fn recover(&self) {
        self.station.recover();
    }

    /// Total records appended+stored through this node (shared counter).
    pub fn appended_counter(&self) -> Counter {
        self.appended.clone()
    }

    /// Replication RPCs received by this node (shared counter; one per
    /// `replicate` call regardless of batch size).
    pub fn replicate_rpc_counter(&self) -> Counter {
        self.replicate_rpcs.clone()
    }

    /// The station modelling this machine's capacity.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }
}

/// Shared observability instruments for one FLStore deployment. All
/// fields are cheap shared handles; a default-constructed instance works
/// standalone, while [`FabricObs::registered`] ties the instruments into a
/// [`MetricsRegistry`] so they show up in snapshots.
#[derive(Clone, Default, Debug)]
pub struct FabricObs {
    /// Service time of standalone `append_batch` calls.
    pub append_latency: Histogram,
    /// Service time of pre-routed `store_entries` calls.
    pub store_latency: Histogram,
    /// Gossip rounds initiated across all maintainers.
    pub gossip_rounds: Counter,
    /// Highest Head of the Log any maintainer has computed.
    pub hl: Gauge,
    /// Records per committed group-commit batch.
    pub batch_size: Histogram,
    /// Summed record-body bytes per committed group-commit batch.
    pub batch_bytes: Histogram,
    /// WAL flush+fsync operations across all maintainer cores.
    pub wal_syncs: Counter,
    /// WAL frames appended but not yet fsynced, as of the most recent
    /// durability point any core paid (crash-durability debt; stays
    /// nonzero under `WalSyncPolicy::Never`).
    pub wal_backlog: Gauge,
    /// Drained min-bound entries whose replication push was abandoned to
    /// anti-entropy repair (deposed mid-drain, or a live backup refused).
    pub replication_dropped: Counter,
    /// The primary's own WAL fsync leg of each commit, in µs.
    pub commit_fsync: Histogram,
    /// Commit time spent waiting on backup acks *after* the primary's own
    /// durability point (the exposed, un-overlapped replication wait).
    pub commit_repl_wait: Histogram,
    /// Register-to-quorum latency of each acked batch, in µs.
    pub commit_quorum_latency: Histogram,
    /// Cumulative µs of fsync/replication overlap the pipelined commit hid
    /// versus a serial chain paying the two legs back to back.
    pub commit_overlap_saved: Counter,
    /// Live WAL segment files across all maintainer cores.
    pub storage_segments: Gauge,
    /// Total WAL bytes on disk across all maintainer cores.
    pub storage_disk_bytes: Gauge,
    /// Live payload bytes resident in memory across all maintainer cores.
    pub storage_live_bytes: Gauge,
    /// Compaction sweeps that reclaimed anything.
    pub storage_compactions: Counter,
    /// Disk bytes freed by compaction and checkpoint truncation.
    pub storage_reclaimed: Counter,
    /// Event journal for WAL sync-stall events (the registry's journal
    /// when registered; a detached ring otherwise).
    journal: EventJournal,
    /// Journal source label (`{prefix}.wal`).
    source: String,
}

/// A batch fsync slower than this is journalled as a
/// [`WalSyncStall`](EventKind::WalSyncStall): at the paper's target rates a
/// multi-millisecond durability point stalls the whole maintainer loop.
const WAL_STALL_THRESHOLD: Duration = Duration::from_millis(5);

impl FabricObs {
    /// Instruments registered in `registry` as `{prefix}.append.latency_us`,
    /// `{prefix}.store.latency_us`, `{prefix}.gossip.rounds`, `{prefix}.hl`,
    /// `{prefix}.batch.size`, `{prefix}.batch.bytes`,
    /// `{prefix}.wal.sync.count`, `{prefix}.wal.backlog`,
    /// `{prefix}.replication.dropped`, `{prefix}.commit.fsync_us`,
    /// `{prefix}.commit.repl_wait_us`, `{prefix}.commit.quorum.latency_us`,
    /// and `{prefix}.commit.overlap_saved_us`. The registry's event journal
    /// also receives WAL sync-stall/failure events.
    pub fn registered(registry: &MetricsRegistry, prefix: &str) -> Self {
        FabricObs {
            append_latency: registry.histogram(&format!("{prefix}.append.latency_us")),
            store_latency: registry.histogram(&format!("{prefix}.store.latency_us")),
            gossip_rounds: registry.counter(&format!("{prefix}.gossip.rounds")),
            hl: registry.gauge(&format!("{prefix}.hl")),
            batch_size: registry.histogram(&format!("{prefix}.batch.size")),
            batch_bytes: registry.histogram(&format!("{prefix}.batch.bytes")),
            wal_syncs: registry.counter(&format!("{prefix}.wal.sync.count")),
            wal_backlog: registry.gauge(&format!("{prefix}.wal.backlog")),
            replication_dropped: registry.counter(&format!("{prefix}.replication.dropped")),
            commit_fsync: registry.histogram(&format!("{prefix}.commit.fsync_us")),
            commit_repl_wait: registry.histogram(&format!("{prefix}.commit.repl_wait_us")),
            commit_quorum_latency: registry
                .histogram(&format!("{prefix}.commit.quorum.latency_us")),
            commit_overlap_saved: registry.counter(&format!("{prefix}.commit.overlap_saved_us")),
            storage_segments: registry.gauge(&format!("{prefix}.storage.segments")),
            storage_disk_bytes: registry.gauge(&format!("{prefix}.storage.disk_bytes")),
            storage_live_bytes: registry.gauge(&format!("{prefix}.storage.live_bytes")),
            storage_compactions: registry.counter(&format!("{prefix}.storage.compactions")),
            storage_reclaimed: registry.counter(&format!("{prefix}.storage.reclaimed_bytes")),
            journal: registry.journal().clone(),
            source: format!("{prefix}.wal"),
        }
    }

    fn note_gossip(&self, hl: LId) {
        self.gossip_rounds.add(1);
        self.hl.raise_to(hl.0 as i64);
    }

    /// Records one durability point: refreshes the backlog gauge and
    /// journals a [`WalSyncStall`](EventKind::WalSyncStall) when the sync
    /// blew past [`WAL_STALL_THRESHOLD`].
    fn note_wal_sync(&self, elapsed: Duration, backlog: usize) {
        self.wal_backlog.set(backlog as i64);
        if elapsed >= WAL_STALL_THRESHOLD {
            self.journal.publish(
                &self.source,
                None,
                EventKind::WalSyncStall {
                    stall_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                },
            );
        }
    }

    /// Journals a batch sync failing outright: the `records` it covered
    /// were never made durable and must not be replicated or acked.
    pub(crate) fn note_wal_sync_failed(&self, records: u64) {
        self.journal
            .publish(&self.source, None, EventKind::WalSyncFailed { records });
    }

    /// Refreshes the storage gauges from one core's point-in-time
    /// footprint. Gauges are deployment-wide maxima per refresh cycle in a
    /// multi-core fabric; the single-core deployments the benches run make
    /// them exact.
    pub(crate) fn note_storage(&self, stats: crate::maintainer::StorageStats) {
        self.storage_segments.set(stats.segments as i64);
        self.storage_disk_bytes.set(stats.disk_bytes as i64);
        self.storage_live_bytes.set(stats.live_bytes as i64);
    }

    /// Journals a storage sweep that reclaimed WAL disk and bumps the
    /// reclaim counters.
    pub(crate) fn note_compaction(&self, stats: crate::wal::CompactionStats) {
        self.storage_compactions.add(1);
        self.storage_reclaimed.add(stats.reclaimed_bytes);
        self.journal.publish(
            &self.source,
            None,
            EventKind::CompactionSweep {
                segments_deleted: stats.segments_deleted,
                segments_rewritten: stats.segments_rewritten,
                reclaimed_bytes: stats.reclaimed_bytes,
            },
        );
    }

    /// Journals a checkpoint write and counts the WAL disk its truncation
    /// gave back. (GC-driven checkpoints are folded into their sweep's
    /// `CompactionStats` instead, so no byte is counted twice.)
    pub(crate) fn note_checkpoint(&self, info: crate::maintainer::CheckpointInfo) {
        self.storage_reclaimed.add(info.reclaimed_bytes);
        self.journal.publish(
            &self.source,
            None,
            EventKind::CheckpointWritten {
                upto: info.upto.0,
                entries: info.entries,
                bytes: info.bytes,
            },
        );
    }
}

/// Pays one [`MaintainerCore::sync_batch`] durability point under the
/// clock, reporting its duration and the core's remaining WAL backlog to
/// the fabric's instruments. Returns the sync's wall-clock duration; a
/// failed sync is additionally journalled as a
/// [`WalSyncFailed`](EventKind::WalSyncFailed) covering the core's backlog.
fn timed_sync_batch(core: &mut MaintainerCore, fabric: &Fabric) -> Result<Duration> {
    let t0 = std::time::Instant::now();
    let result = core.sync_batch();
    let elapsed = t0.elapsed();
    fabric.obs().note_wal_sync(elapsed, core.wal_backlog());
    if result.is_err() {
        fabric.obs().note_wal_sync_failed(core.wal_backlog() as u64);
    }
    result.map(|()| elapsed)
}

/// Wiring shared by all maintainers of one deployment: peer handles for
/// gossip, indexer handles for tag postings, and observability instruments.
/// Registered after spawn (the topology is cyclic).
#[derive(Clone, Default)]
pub struct Fabric {
    peers: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
    indexers: Arc<RwLock<Vec<IndexerHandle>>>,
    obs: FabricObs,
    /// The Chariots "store" stage tracer: exit stamps for traced records
    /// once a maintainer persists them. Swappable because the owning
    /// datacenter wires it after FLStore launches.
    store_tracer: Arc<RwLock<StageTracer>>,
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Fabric::default()
    }

    /// A fabric reporting into `obs`.
    pub fn with_obs(obs: FabricObs) -> Self {
        Fabric {
            obs,
            ..Fabric::default()
        }
    }

    /// The deployment's observability instruments.
    pub fn obs(&self) -> &FabricObs {
        &self.obs
    }

    /// Registers the full set of replica-group handles (gossip peers).
    /// Gossip fans out group-wide so backups track the Head of the Log.
    pub fn set_peers(&self, peers: Vec<ReplicaGroupHandle>) {
        *self.peers.write() = peers;
    }

    /// Registers the indexer handles.
    pub fn set_indexers(&self, indexers: Vec<IndexerHandle>) {
        *self.indexers.write() = indexers;
    }

    /// Wires the Chariots store-stage tracer (disabled by default).
    pub fn set_store_tracer(&self, tracer: StageTracer) {
        *self.store_tracer.write() = tracer;
    }

    pub(crate) fn stamp_store_exits(&self, traced: &[TraceId]) {
        if traced.is_empty() {
            return;
        }
        let tracer = self.store_tracer.read();
        for t in traced {
            tracer.exit(Some(*t));
        }
    }

    fn gossip(&self, from: MaintainerId, frontier: LId) {
        for peer in self.peers.read().iter() {
            if peer.id != from {
                peer.gossip_in(from, frontier);
            }
        }
    }

    pub(crate) fn post_tags(&self, entries_tags: Vec<(String, Option<TagValue>, LId)>) {
        let indexers = self.indexers.read();
        if indexers.is_empty() {
            return;
        }
        for (key, value, lid) in entries_tags {
            let ix = indexer_for(&key, indexers.len());
            indexers[ix].post(key, value, lid);
        }
    }
}

/// Spawns a standalone (unreplicated) maintainer node thread: a
/// single-replica group under the default [`BatchPolicy`]. Kept as the
/// simple entry point for tests and benches; deployments spawn full groups
/// via [`spawn_replica`].
pub fn spawn_maintainer(
    core: MaintainerCore,
    station: Arc<ServiceStation>,
    fabric: Fabric,
    gossip_interval: Duration,
    shutdown: Shutdown,
) -> (MaintainerHandle, JoinHandle<MaintainerCore>) {
    let state = Arc::new(GroupState::new(core.id()));
    let (handle, thread) = spawn_replica(
        core,
        station,
        fabric,
        gossip_interval,
        shutdown,
        ReplicaCtx::solo(Arc::clone(&state)),
        Counter::new(),
        BatchPolicy::default(),
    );
    state.set_replicas(vec![handle.clone()]);
    (handle, thread)
}

/// Spawns one replica of a maintainer group.
///
/// The node loop group-commits: after each blocking `recv` it drains
/// further queued `Append`/`Store` requests into one batch (bounded by
/// `batch`), pays a single station admission, generation capture, WAL
/// flush+fsync, and replication push per live backup for the whole batch,
/// then fans replies out. It also heartbeats the failure detector, gossips
/// the group frontier every `gossip_interval` while acting primary, and
/// posts tag information to the fabric's indexers. `appended` is the
/// group-level record counter, bumped only by the acting primary.
#[allow(clippy::too_many_arguments)]
pub fn spawn_replica(
    mut core: MaintainerCore,
    station: Arc<ServiceStation>,
    fabric: Fabric,
    gossip_interval: Duration,
    shutdown: Shutdown,
    ctx: ReplicaCtx,
    appended: Counter,
    batch: BatchPolicy,
) -> (MaintainerHandle, JoinHandle<MaintainerCore>) {
    let (tx, rx) = unbounded::<MaintainerRequest>();
    let handle = MaintainerHandle {
        id: core.id(),
        tx,
        station: Arc::clone(&station),
        appended: appended.clone(),
        replicate_rpcs: Counter::new(),
        wire: None,
    };
    let thread = std::thread::Builder::new()
        .name(format!("maintainer-{}-r{}", core.id(), ctx.index))
        .spawn(move || {
            maintainer_loop(
                &mut core,
                &rx,
                &station,
                &fabric,
                gossip_interval,
                &shutdown,
                &appended,
                &ctx,
                batch,
            );
            // Nobody is left to ack this replica's in-flight pipelined
            // batches: fail their waiters instead of letting them hang.
            ctx.group.abort_pending(ChariotsError::ShutDown);
            core
        })
        .expect("spawn maintainer");
    (handle, thread)
}

pub(crate) fn collect_tag_postings(entries: &[Entry]) -> Vec<(String, Option<TagValue>, LId)> {
    let mut out = Vec::new();
    for e in entries {
        for tag in e.record.tags.iter() {
            out.push((tag.key.clone(), tag.value.clone(), e.lid));
        }
    }
    out
}

/// Pushes `entries` to every live backup of the group, stamped with the
/// generation captured when the batch was admitted. Called by the acting
/// primary after it applies records locally; `Ok` means every live backup
/// acked (synchronous replication — the client's ack happens after this).
/// One RPC per backup per batch: each backup receives a clone of the same
/// `Arc<[Entry]>`, so the entry payloads are never copied per backup.
/// Backups whose machines are crashed are skipped (anti-entropy catches
/// them up later); any other failure — fencing after a mid-flight
/// deposition, overload — is propagated so the caller does NOT ack.
fn replicate_to_backups(
    ctx: &ReplicaCtx,
    entries: &Arc<[Entry]>,
    generation: Generation,
) -> Result<()> {
    if entries.is_empty() {
        return Ok(());
    }
    let replicas = ctx.group.replicas();
    if replicas.len() < 2 {
        return Ok(());
    }
    for (i, replica) in replicas.iter().enumerate() {
        if i == ctx.index || replica.station().is_crashed() {
            continue;
        }
        if let Err(e) = replica.replicate(Arc::clone(entries), generation) {
            // A backup that crashed in the window after the liveness check
            // is treated like one that was already down; every other error
            // means a live backup does not hold the records.
            if replica.station().is_crashed() {
                continue;
            }
            return Err(e);
        }
    }
    Ok(())
}

/// The group's live backups from this replica's point of view:
/// `(seat index, handle)` for every other replica whose machine is up.
/// Crashed backups are excluded from the commit's participant set exactly
/// as the serial path skips them (anti-entropy catches them up later).
fn live_backups(ctx: &ReplicaCtx) -> Vec<(usize, MaintainerHandle)> {
    ctx.group
        .replicas()
        .into_iter()
        .enumerate()
        .filter(|(i, r)| *i != ctx.index && !r.station().is_crashed())
        .collect()
}

/// The pipelined commit: ship the batch's shared `Arc<[Entry]>` to every
/// live backup *first* (non-blocking), pay the primary's own WAL fsync
/// while those RPCs are in flight, and let the group's
/// [`CommitTracker`](crate::replication::commit::CommitTracker) resolve
/// the batch — fanning replies out — the moment f+1 seats report
/// it durable. Whichever seat's ack completes the quorum runs the
/// completion, so the ack can land before the primary's fsync returns.
///
/// `pay_fsync` is `false` for drained-waiter flushes, whose durability
/// point was already paid before registration (the primary then enrolls
/// as already-durable).
#[allow(clippy::too_many_arguments)]
fn pipelined_commit(
    core: &mut MaintainerCore,
    ctx: &ReplicaCtx,
    fabric: &Fabric,
    generation: Generation,
    share: Arc<[Entry]>,
    waiters: Vec<CommitWaiter>,
    drained_records: u64,
    outcome_ctx: CommitOutcomeCtx,
    backups: &[(usize, MaintainerHandle)],
    quorum_wait: &mut Notify,
    pay_fsync: bool,
) {
    let tracker = ctx.group.commit();
    // Backpressure: bound the batches in flight awaiting quorum so a slow
    // backup cannot let the tracker grow without bound.
    while tracker.pending() >= MAX_PENDING_COMMITS {
        quorum_wait.wait_timeout(Duration::from_millis(1));
    }
    let mut participants = 1u64 << ctx.index;
    for (i, _) in backups {
        participants |= 1u64 << *i;
    }
    let required = quorum_required(
        ctx.group.replica_count(),
        participants.count_ones() as usize,
    );
    let seq = tracker.register(
        generation,
        ctx.index,
        participants,
        required,
        Arc::clone(&share),
        waiters,
        drained_records,
        outcome_ctx,
    );
    // Backups first — their fsyncs overlap the primary's below.
    for (i, backup) in backups {
        if !backup.replicate_async(Arc::clone(&share), generation, seq) {
            ctx.group.report_commit_failure(*i, seq);
        }
    }
    if pay_fsync {
        match timed_sync_batch(core, fabric) {
            Ok(elapsed) => {
                let fsync_us = elapsed.as_micros() as u64;
                fabric.obs().commit_fsync.record(fsync_us);
                ctx.group
                    .report_primary_durable(ctx.index, seq, fsync_us, core.durable_frontier());
            }
            Err(_) => ctx.group.report_commit_failure(ctx.index, seq),
        }
    } else {
        ctx.group
            .report_primary_durable(ctx.index, seq, 0, core.durable_frontier());
    }
}

/// The error a deposed (or never-primary) replica answers assignment
/// requests with: the client should refresh and re-route.
fn fenced(group: MaintainerId, ctx: &ReplicaCtx) -> ChariotsError {
    let current = ctx.group.generation();
    ChariotsError::Fenced {
        group,
        // The best stale stamp this replica can name is the generation
        // preceding the current one (it has not acted under `current`).
        sent: Generation(current.as_u64().saturating_sub(1)),
        current,
    }
}

/// Replicates any min-bound waiters drained outside a group-commit batch
/// (gossip ticks and min-bound serves; batch serves fold drained entries
/// into the batch's own push). The drained entries come straight from the
/// core — no store re-reads — and ride one shared-`Arc` push per backup.
/// Best-effort: the waiters were acked as *parked*, not as committed, so a
/// shortfall here — including a failed local durability point, after which
/// the entries must not be pushed at all — is left to anti-entropy repair
/// rather than failing the current request, but every abandoned entry is
/// counted on `flstore.replication.dropped` so the shortfall is visible.
fn replicate_drained(
    core: &mut MaintainerCore,
    ctx: &ReplicaCtx,
    fabric: &Fabric,
    appended: &Counter,
    quorum_wait: &mut Notify,
) {
    let drained = core.take_drained();
    if drained.is_empty() {
        return;
    }
    let n = drained.len() as u64;
    // Drained entries were applied (and WAL-appended) after the last batch
    // commit point; give them their own durability point before pushing. A
    // failed sync means they are NOT durable locally — abandon the push to
    // anti-entropy rather than replicate records a restart would lose.
    if timed_sync_batch(core, fabric).is_err() {
        fabric.obs().replication_dropped.add(n);
        return;
    }
    let entries: Arc<[Entry]> = drained.into();
    let Some(generation) = ctx.group.primary_generation(ctx.index) else {
        fabric.obs().replication_dropped.add(n);
        return;
    };
    ctx.group.note_durable(ctx.index, core.durable_frontier());
    let backups = live_backups(ctx);
    if ctx.commit_mode == CommitMode::PipelinedQuorum && !backups.is_empty() {
        // Background flush: ride the pipelined path (the fsync above
        // already made the primary durable), but keep it out of the
        // ack-path commit metrics.
        let outcome_ctx = CommitOutcomeCtx {
            fabric: fabric.clone(),
            appended: appended.clone(),
            total_records: 0,
            total_bytes: 0,
            had_appends: false,
            had_stores: false,
            post_share_tags: false,
            measured: false,
            started: std::time::Instant::now(),
        };
        pipelined_commit(
            core,
            ctx,
            fabric,
            generation,
            entries,
            Vec::new(),
            n,
            outcome_ctx,
            &backups,
            quorum_wait,
            false,
        );
        return;
    }
    if replicate_to_backups(ctx, &entries, generation).is_err() {
        fabric.obs().replication_dropped.add(n);
    }
}

/// One request's worth of coalescable work inside a group-commit batch,
/// kept in arrival order so a batched serve is indistinguishable from
/// serving the requests one at a time.
enum BatchItem {
    /// A post-assignment append and (if closed-loop) its waiter.
    Append {
        /// Payloads to append.
        payloads: Vec<AppendPayload>,
        /// Where to send the assigned ids, if anyone is waiting.
        reply: Option<AppendReplySender>,
    },
    /// Pre-routed entries from the Chariots queues stage.
    Store {
        /// Entries to persist.
        entries: Vec<Entry>,
    },
}

impl BatchItem {
    /// Records this item adds to the batch.
    fn records(&self) -> usize {
        match self {
            BatchItem::Append { payloads, .. } => payloads.len(),
            BatchItem::Store { entries } => entries.len(),
        }
    }

    /// Record-body bytes this item adds to the batch.
    fn bytes(&self) -> usize {
        match self {
            BatchItem::Append { payloads, .. } => payloads.iter().map(|p| p.body.len()).sum(),
            BatchItem::Store { entries } => entries.iter().map(|e| e.record.body.len()).sum(),
        }
    }
}

/// Splits a request into a coalescable batch item, or hands it back when it
/// must be served on its own (reads, gossip, control traffic, and the
/// order-sensitive min-bound/replicate paths).
fn coalesce(req: MaintainerRequest) -> std::result::Result<BatchItem, MaintainerRequest> {
    match req {
        MaintainerRequest::Append { payloads, reply } => Ok(BatchItem::Append { payloads, reply }),
        MaintainerRequest::Store { entries } => Ok(BatchItem::Store { entries }),
        other => Err(other),
    }
}

/// The outcome of applying one batch item, held until the batch commits so
/// replies can be fanned out afterwards.
enum AppliedItem {
    /// Append applied; `assigned` are the built entries awaiting commit.
    Append {
        assigned: Vec<Entry>,
        reply: Option<AppendReplySender>,
    },
    /// Append failed on its own (e.g. no assignable positions); the error
    /// is delivered regardless of how the rest of the batch fares.
    AppendFailed {
        err: ChariotsError,
        reply: Option<AppendReplySender>,
    },
    /// Store applied; the entries await commit (they have no reply channel,
    /// but a failed commit queues them for re-replication).
    Store { entries: Vec<Entry> },
    /// Store failed on its own (bad routing); nothing to commit or reply.
    StoreFailed,
}

/// Serves one coalesced batch end to end: one station admission, one
/// generation capture, one application pass in arrival order, one WAL
/// sync ([`MaintainerCore::sync_batch`]), one shared-`Arc` replication push
/// per live backup, then reply fan-out. Min-bound waiters drained by the
/// batch's appends commit (and replicate) with the batch.
///
/// Per-item application failures only fail that item; admission, fencing,
/// durability, and replication failures fail the **whole batch** — no
/// partial acks under a deposed generation.
#[allow(clippy::too_many_arguments)]
fn serve_batch(
    core: &mut MaintainerCore,
    batch: Vec<BatchItem>,
    station: &ServiceStation,
    fabric: &Fabric,
    appended: &Counter,
    crash_buffer: &mut Vec<Entry>,
    pending_replication: &mut Vec<Entry>,
    ctx: &ReplicaCtx,
    quorum_wait: &mut Notify,
) {
    let total_records: usize = batch.iter().map(BatchItem::records).sum();
    let total_bytes: usize = batch.iter().map(BatchItem::bytes).sum();

    // Admission: one station pass for the whole batch.
    if let Err(e) = station.serve(total_records as u64) {
        for item in batch {
            match item {
                // Crashed: the appends are lost, as they would be on a
                // machine that died with them in its socket buffer.
                BatchItem::Append { reply, .. } => {
                    if let Some(reply) = reply {
                        let _ = reply.send(Err(e.clone()));
                    }
                }
                // Stores are already committed upstream by the queues'
                // token — park them for recovery instead of losing them.
                BatchItem::Store { entries } => crash_buffer.extend(entries),
            }
        }
        return;
    }

    // One generation capture *after* station pacing (a primary deposed
    // while stalled in serve must not assign). Everything below is stamped
    // with it, so a deposition mid-flight is fenced by the backups instead
    // of silently acked.
    let Some(generation) = ctx.group.primary_generation(ctx.index) else {
        for item in batch {
            match item {
                // Only the primary assigns positions; fence appends so the
                // client refreshes its routing toward the new primary.
                BatchItem::Append { reply, .. } => {
                    if let Some(reply) = reply {
                        let _ = reply.send(Err(fenced(core.id(), ctx)));
                    }
                }
                // Routed here because the primary's machine is down (or a
                // stale route). Relay to a live primary when there is one;
                // otherwise persist locally so the positions survive until
                // this replica (or a repaired peer) is promoted.
                BatchItem::Store { entries } => match ctx.group.primary_handle() {
                    Some(primary) if !primary.station().is_crashed() => {
                        primary.store(entries);
                    }
                    _ => {
                        let _ = core.replicate_entries(&entries);
                    }
                },
            }
        }
        return;
    };

    let t0 = std::time::Instant::now();
    let mut had_appends = false;
    let mut had_stores = false;

    // Application pass, in arrival order. Each item succeeds or fails on
    // its own (serial equivalence); failures drop out of the commit set.
    let mut applied = Vec::with_capacity(batch.len());
    let mut committed: Vec<Entry> = Vec::with_capacity(total_records);
    for item in batch {
        match item {
            BatchItem::Append { payloads, reply } => {
                had_appends = true;
                match core.append_batch(payloads) {
                    Ok(assigned) => {
                        committed.extend_from_slice(&assigned);
                        applied.push(AppliedItem::Append { assigned, reply });
                    }
                    Err(err) => applied.push(AppliedItem::AppendFailed { err, reply }),
                }
            }
            BatchItem::Store { entries } => {
                had_stores = true;
                match core.store_entries(entries.clone()) {
                    Ok(()) => {
                        committed.extend_from_slice(&entries);
                        applied.push(AppliedItem::Store { entries });
                    }
                    Err(_) => applied.push(AppliedItem::StoreFailed),
                }
            }
        }
    }
    // Min-bound waiters drained by this batch's appends commit with it:
    // same WAL sync, same replication push.
    let drained = core.take_drained();
    let drained_count = drained.len();
    committed.extend(drained);

    // Commit. Pipelined (the default with live backups): register the
    // batch with the group's commit tracker, ship the shared `Arc` to the
    // backups first, pay the primary's fsync while those RPCs are in
    // flight, and let the tracker ack at f+1 durable copies — replies fan
    // out from whichever seat completes the quorum, so this function
    // returns before the batch is acked.
    let share: Arc<[Entry]> = committed.into();
    let backups = live_backups(ctx);
    if !share.is_empty() && ctx.commit_mode == CommitMode::PipelinedQuorum && !backups.is_empty() {
        let waiters = applied
            .into_iter()
            .filter_map(|item| match item {
                AppliedItem::Append { assigned, reply } => Some(CommitWaiter::Append {
                    ids: assigned.iter().map(|e| (e.record.toid(), e.lid)).collect(),
                    count: assigned.len() as u64,
                    reply,
                }),
                AppliedItem::AppendFailed { err, reply } => {
                    Some(CommitWaiter::FailedAppend { err, reply })
                }
                AppliedItem::Store { entries } => Some(CommitWaiter::Store { entries }),
                AppliedItem::StoreFailed => None,
            })
            .collect();
        let outcome_ctx = CommitOutcomeCtx {
            fabric: fabric.clone(),
            appended: appended.clone(),
            total_records: total_records as u64,
            total_bytes: total_bytes as u64,
            had_appends,
            had_stores,
            post_share_tags: true,
            measured: true,
            started: t0,
        };
        pipelined_commit(
            core,
            ctx,
            fabric,
            generation,
            share,
            waiters,
            drained_count as u64,
            outcome_ctx,
            &backups,
            quorum_wait,
            true,
        );
        return;
    }

    // Serial commit (oracle mode, solo groups, or no live backup): the
    // batch's single durability point, then one shared-`Arc` push per live
    // backup, then the post-replication primacy re-check — a deposition
    // anywhere in the window fails the whole batch (the promoted backup
    // may resume assignment at these very positions, so acking any of it
    // would admit duplicate LIds).
    let commit = if share.is_empty() {
        // Nothing committed (every item failed on its own): no durability
        // point or replication push to pay for.
        Ok(())
    } else {
        let obs = fabric.obs().clone();
        let group_id = core.id();
        (|| {
            let fsync = timed_sync_batch(core, fabric)?;
            let fsync_us = fsync.as_micros() as u64;
            obs.commit_fsync.record(fsync_us);
            ctx.group.note_durable(ctx.index, core.durable_frontier());
            let repl0 = std::time::Instant::now();
            replicate_to_backups(ctx, &share, generation)?;
            if ctx.group.primary_generation(ctx.index) != Some(generation) {
                return Err(ChariotsError::Fenced {
                    group: group_id,
                    sent: generation,
                    current: ctx.group.generation(),
                });
            }
            // The two legs ran back to back: the replication wait is fully
            // exposed, and nothing was saved by overlap.
            let repl_us = repl0.elapsed().as_micros() as u64;
            obs.commit_repl_wait.record(repl_us);
            obs.commit_quorum_latency.record(fsync_us + repl_us);
            Ok(())
        })()
    };

    match commit {
        Ok(()) => {
            let elapsed = t0.elapsed();
            let obs = fabric.obs();
            obs.batch_size.record(total_records as u64);
            obs.batch_bytes.record(total_bytes as u64);
            if had_appends {
                obs.append_latency.record_duration(elapsed);
            }
            if had_stores {
                obs.store_latency.record_duration(elapsed);
            }
            // Tag postings and trace stamps once per batch, for everything
            // that committed (drained waiters included).
            let traced: Vec<TraceId> = share.iter().filter_map(|e| e.record.trace).collect();
            fabric.stamp_store_exits(&traced);
            fabric.post_tags(collect_tag_postings(&share));
            for item in applied {
                match item {
                    AppliedItem::Append { assigned, reply } => {
                        appended.add(assigned.len() as u64);
                        if let Some(reply) = reply {
                            let ids = assigned
                                .iter()
                                .map(|e| (e.record.toid(), e.lid))
                                .collect::<Vec<_>>();
                            let _ = reply.send(Ok(ids));
                        }
                    }
                    AppliedItem::AppendFailed { err, reply } => {
                        if let Some(reply) = reply {
                            let _ = reply.send(Err(err));
                        }
                    }
                    AppliedItem::Store { entries } => {
                        appended.add(entries.len() as u64);
                    }
                    AppliedItem::StoreFailed => {}
                }
            }
        }
        Err(commit_err) => {
            for item in applied {
                match item {
                    // No partial acks: every append waiter in the batch
                    // sees the commit failure, whatever its own item did.
                    AppliedItem::Append { reply, .. } => {
                        if let Some(reply) = reply {
                            let _ = reply.send(Err(commit_err.clone()));
                        }
                    }
                    AppliedItem::AppendFailed { err, reply } => {
                        if let Some(reply) = reply {
                            let _ = reply.send(Err(err));
                        }
                    }
                    // Store positions are committed upstream: queue them
                    // for re-replication / handover instead of dropping.
                    AppliedItem::Store { entries } => pending_replication.extend(entries),
                    AppliedItem::StoreFailed => {}
                }
            }
            // Drained waiters were acked as *parked*; their shortfall is
            // left to anti-entropy, but counted.
            fabric.obs().replication_dropped.add(drained_count as u64);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn maintainer_loop(
    core: &mut MaintainerCore,
    rx: &Receiver<MaintainerRequest>,
    station: &ServiceStation,
    fabric: &Fabric,
    gossip_interval: Duration,
    shutdown: &Shutdown,
    appended: &Counter,
    ctx: &ReplicaCtx,
    batch: BatchPolicy,
) {
    let mut last_gossip = std::time::Instant::now();
    let mut last_heartbeat = std::time::Instant::now();
    let heartbeat_key = ctx.key();
    let mut was_primary = ctx.group.is_primary(ctx.index);
    // Wakeup for pipelined-commit backpressure: signalled whenever a batch
    // leaves the group's commit tracker.
    let mut quorum_wait = ctx.group.commit().subscribe();
    // Seed this seat's durable watermark: whatever the core holds now
    // (fresh, or replayed from its WAL) is durable.
    ctx.group.note_durable(ctx.index, core.durable_frontier());
    // Pre-routed entries that arrived while the machine was crashed: their
    // positions are already committed by the queues' token, so they must
    // not be lost — a real deployment recovers them from the WAL or a
    // re-send; we hold them until recovery.
    let mut crash_buffer: Vec<Entry> = Vec::new();
    // Entries this node applied and counted but failed to push to a live
    // backup (or was deposed before it could): re-replicated — or handed to
    // the current primary — each loop turn until the group holds them.
    let mut pending_replication: Vec<Entry> = Vec::new();
    loop {
        if shutdown.is_signaled() {
            return;
        }
        let req = match rx.recv_timeout(gossip_interval) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => return,
        };

        // Liveness: report to the failure detector while the machine is
        // up. A crashed station stops beating, so silence accumulates and
        // the detector suspects this replica after the suspicion timeout.
        if let Some(detector) = &ctx.detector {
            if !station.is_crashed() && last_heartbeat.elapsed() >= ctx.heartbeat_interval {
                detector.heartbeat(&heartbeat_key);
                last_heartbeat = std::time::Instant::now();
            }
        }

        // Role change: a backup promoted to primary resumes self-assignment
        // after the suffix it already replicated, instead of re-assigning
        // positions the old primary handed out.
        let is_primary = ctx.group.is_primary(ctx.index);
        if is_primary && !was_primary {
            core.resume_assignment();
        }
        was_primary = is_primary;

        // Recovery: apply everything buffered during the outage first. The
        // buffered positions are already committed by the queues' token, so
        // every failure path puts them back for the next loop turn instead
        // of dropping them.
        if !crash_buffer.is_empty() && !station.is_crashed() {
            let entries = std::mem::take(&mut crash_buffer);
            let n = entries.len() as u64;
            match ctx.group.primary_generation(ctx.index) {
                Some(generation) => {
                    // Re-applying is idempotent (`replicate_entries`
                    // overwrites), so a retry after a partial failure
                    // cannot be rejected as a duplicate.
                    if station.serve(n).is_ok()
                        && core.replicate_entries(&entries).is_ok()
                        && core.sync_batch().is_ok()
                    {
                        let traced: Vec<TraceId> =
                            entries.iter().filter_map(|e| e.record.trace).collect();
                        appended.add(n);
                        fabric.stamp_store_exits(&traced);
                        fabric.post_tags(collect_tag_postings(&entries));
                        let share: Arc<[Entry]> = entries.into();
                        if replicate_to_backups(ctx, &share, generation).is_err() {
                            pending_replication.extend(share.iter().cloned());
                        }
                    } else {
                        crash_buffer = entries;
                    }
                }
                // Deposed while down: the buffered positions belong to the
                // current primary now — hand them over (it skips whatever
                // it already holds).
                None => match ctx.group.primary_handle() {
                    Some(primary) if primary.store(entries.clone()) => {}
                    _ => crash_buffer = entries,
                },
            }
        }

        // Store entries orphaned by failed pipelined batches (their
        // completion may run on a backup's thread, which cannot reach this
        // queue directly) join the re-replication queue here.
        pending_replication.extend(ctx.group.commit().take_orphans());

        // Re-replication of applied-but-unreplicated positions: keep
        // pushing until every live backup holds them, or hand them to the
        // new primary if this replica was deposed mid-flight.
        if !pending_replication.is_empty() && !station.is_crashed() {
            let entries = std::mem::take(&mut pending_replication);
            match ctx.group.primary_generation(ctx.index) {
                Some(generation) => {
                    let share: Arc<[Entry]> = entries.into();
                    if replicate_to_backups(ctx, &share, generation).is_err() {
                        pending_replication.extend(share.iter().cloned());
                    }
                }
                None => match ctx.group.primary_handle() {
                    Some(primary) if primary.store(entries.clone()) => {}
                    _ => pending_replication = entries,
                },
            }
        }

        if let Some(req) = req {
            match coalesce(req) {
                // Group commit: the first coalescable request opens a
                // batch; keep draining the channel until a bound is hit, it
                // runs dry, or a non-coalescable request shows up (which is
                // then served right after the batch, preserving arrival
                // order).
                Ok(first) => {
                    let mut followup = None;
                    let mut records = first.records();
                    let mut bytes = first.bytes();
                    let mut items = vec![first];
                    while records < batch.max_records && bytes < batch.max_bytes {
                        match rx.try_recv() {
                            Ok(next) => match coalesce(next) {
                                Ok(item) => {
                                    records += item.records();
                                    bytes += item.bytes();
                                    items.push(item);
                                }
                                Err(other) => {
                                    followup = Some(other);
                                    break;
                                }
                            },
                            Err(_) => break,
                        }
                    }
                    serve_batch(
                        core,
                        items,
                        station,
                        fabric,
                        appended,
                        &mut crash_buffer,
                        &mut pending_replication,
                        ctx,
                        &mut quorum_wait,
                    );
                    if let Some(req) = followup {
                        serve_request(
                            core,
                            req,
                            station,
                            fabric,
                            appended,
                            &mut crash_buffer,
                            &mut pending_replication,
                            ctx,
                            &mut quorum_wait,
                        );
                    }
                }
                Err(other) => serve_request(
                    core,
                    other,
                    station,
                    fabric,
                    appended,
                    &mut crash_buffer,
                    &mut pending_replication,
                    ctx,
                    &mut quorum_wait,
                ),
            }
        }

        // Periodic drain of parked min-bound records, plus gossip: only
        // the acting primary speaks for the group; backups still refresh
        // their own frontier so a promotion starts from an honest view.
        if last_gossip.elapsed() >= gossip_interval {
            last_gossip = std::time::Instant::now();
            let _ = core.drain_deferred();
            replicate_drained(core, ctx, fabric, appended, &mut quorum_wait);
            ctx.group.note_durable(ctx.index, core.durable_frontier());
            let (from, frontier) = core.gossip_out();
            if is_primary {
                fabric.gossip(from, frontier);
                fabric.obs().note_gossip(core.head_of_log());
            }
            // Storage maintenance rides the same tick: an interval-gated
            // checkpoint (O(delta) restarts) and fresh footprint gauges.
            // A failed snapshot costs restart time, not correctness — the
            // WAL still holds everything — so errors are not fatal here.
            if let Ok(Some(info)) = core.maybe_checkpoint() {
                fabric.obs().note_checkpoint(info);
            }
            fabric.obs().note_storage(core.storage_stats());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_request(
    core: &mut MaintainerCore,
    req: MaintainerRequest,
    station: &ServiceStation,
    fabric: &Fabric,
    appended: &Counter,
    crash_buffer: &mut Vec<Entry>,
    pending_replication: &mut Vec<Entry>,
    ctx: &ReplicaCtx,
    quorum_wait: &mut Notify,
) {
    match req {
        // Append/Store normally enter through the loop's batch drain; a
        // straggler routed here is just a batch of one.
        MaintainerRequest::Append { payloads, reply } => serve_batch(
            core,
            vec![BatchItem::Append { payloads, reply }],
            station,
            fabric,
            appended,
            crash_buffer,
            pending_replication,
            ctx,
            quorum_wait,
        ),
        MaintainerRequest::Store { entries } => serve_batch(
            core,
            vec![BatchItem::Store { entries }],
            station,
            fabric,
            appended,
            crash_buffer,
            pending_replication,
            ctx,
            quorum_wait,
        ),
        MaintainerRequest::AppendMinBound {
            payload,
            min,
            reply,
        } => {
            if let Err(e) = station.serve(1) {
                let _ = reply.send(Err(e));
                return;
            }
            let Some(generation) = ctx.group.primary_generation(ctx.index) else {
                let _ = reply.send(Err(fenced(core.id(), ctx)));
                return;
            };
            match core.append_min_bound(payload, min) {
                Ok(Some(entry)) => {
                    let backups = live_backups(ctx);
                    if ctx.commit_mode == CommitMode::PipelinedQuorum && !backups.is_empty() {
                        // A one-entry pipelined batch: the MinBound waiter
                        // replies and counts at quorum.
                        let share: Arc<[Entry]> = vec![entry.clone()].into();
                        let waiter = CommitWaiter::MinBound {
                            id: Some((entry.record.toid(), entry.lid)),
                            reply,
                        };
                        let outcome_ctx = CommitOutcomeCtx {
                            fabric: fabric.clone(),
                            appended: appended.clone(),
                            total_records: 0,
                            total_bytes: 0,
                            had_appends: false,
                            had_stores: false,
                            post_share_tags: true,
                            measured: true,
                            started: std::time::Instant::now(),
                        };
                        pipelined_commit(
                            core,
                            ctx,
                            fabric,
                            generation,
                            share,
                            vec![waiter],
                            0,
                            outcome_ctx,
                            &backups,
                            quorum_wait,
                            true,
                        );
                    } else {
                        let group_id = core.id();
                        let result = (|| {
                            timed_sync_batch(core, fabric)?;
                            ctx.group.note_durable(ctx.index, core.durable_frontier());
                            let share: Arc<[Entry]> = vec![entry.clone()].into();
                            replicate_to_backups(ctx, &share, generation)?;
                            if ctx.group.primary_generation(ctx.index) != Some(generation) {
                                return Err(ChariotsError::Fenced {
                                    group: group_id,
                                    sent: generation,
                                    current: ctx.group.generation(),
                                });
                            }
                            appended.add(1);
                            fabric.post_tags(collect_tag_postings(std::slice::from_ref(&entry)));
                            Ok(Some((entry.record.toid(), entry.lid)))
                        })();
                        let _ = reply.send(result);
                    }
                }
                Ok(None) => {
                    let _ = reply.send(Ok(None));
                }
                Err(e) => {
                    let _ = reply.send(Err(e));
                }
            }
            replicate_drained(core, ctx, fabric, appended, quorum_wait);
        }
        MaintainerRequest::Replicate {
            entries,
            generation,
            reply,
            seq,
        } => {
            let n = entries.len() as u64;
            let group_id = core.id();
            // No counters, postings, or trace stamps here: the acting
            // primary already accounted for these records. Backups group-
            // commit too — one WAL sync per replicated batch, so a durable
            // ack means the records survive this replica's crash.
            let outcome = station
                .serve(n)
                .and_then(|()| {
                    let current = ctx.group.generation();
                    if generation < current {
                        return Err(ChariotsError::Fenced {
                            group: group_id,
                            sent: generation,
                            current,
                        });
                    }
                    Ok(())
                })
                .and_then(|()| core.replicate_entries(&entries))
                .and_then(|frontier| timed_sync_batch(core, fabric).map(|_| frontier));
            if outcome.is_ok() {
                // Raise this seat's durable watermark in both commit modes:
                // failover promotes by it.
                ctx.group.note_durable(ctx.index, core.durable_frontier());
            }
            match (reply, seq) {
                // Synchronous caller (serial replication, anti-entropy).
                (Some(reply), _) => {
                    let _ = reply.send(outcome);
                }
                // Pipelined push: report durability to the commit tracker;
                // whoever completes the quorum fans the batch's acks out.
                (None, Some(seq)) => match outcome {
                    Ok(_) => ctx
                        .group
                        .report_commit_ack(ctx.index, seq, core.durable_frontier()),
                    Err(_) => ctx.group.report_commit_failure(ctx.index, seq),
                },
                (None, None) => {}
            }
        }
        MaintainerRequest::Read {
            lid,
            enforce_hl,
            reply,
        } => {
            let result = if station.is_crashed() {
                Err(ChariotsError::Unavailable(format!(
                    "maintainer {}",
                    core.id()
                )))
            } else {
                core.read(lid, enforce_hl)
            };
            let _ = reply.send(result);
        }
        MaintainerRequest::ReadBatch {
            lids,
            enforce_hl,
            reply,
        } => {
            // Mirrors the single-read arm: a crashed machine refuses every
            // position in the batch, not just some.
            let result = if station.is_crashed() {
                lids.iter()
                    .map(|_| {
                        Err(ChariotsError::Unavailable(format!(
                            "maintainer {}",
                            core.id()
                        )))
                    })
                    .collect()
            } else {
                core.read_many(&lids, enforce_hl)
            };
            let _ = reply.send(result);
        }
        MaintainerRequest::Scan { from, max, reply } => {
            let _ = reply.send(core.scan_from(from, max));
        }
        MaintainerRequest::HeadOfLog { reply } => {
            let _ = reply.send(core.head_of_log());
        }
        MaintainerRequest::GossipIn { from, frontier } => {
            core.gossip_in(from, frontier);
            let _ = core.drain_deferred();
            replicate_drained(core, ctx, fabric, appended, quorum_wait);
        }
        MaintainerRequest::AnnounceEpoch { start, map } => {
            core.announce_epoch(start, map);
        }
        MaintainerRequest::Gc { before } => {
            if let Some(stats) = core.gc_before(before) {
                fabric.obs().note_compaction(stats);
            }
            fabric.obs().note_storage(core.storage_stats());
        }
        MaintainerRequest::Stats { reply } => {
            let _ = reply.send(core.stats());
        }
    }
}

/// Requests served by an indexer node.
pub enum IndexerRequest {
    /// Ingest postings.
    Post {
        /// `(key, value, lid)` triples.
        postings: Vec<(String, Option<TagValue>, LId)>,
    },
    /// Look up positions by tag.
    Lookup {
        /// Tag key.
        key: String,
        /// Optional value predicate.
        predicate: Option<ValuePredicate>,
        /// Optional exclusive position bound, applied before the limit
        /// (clients push their Head-of-Log view and `LIdBelow` conditions
        /// down here).
        below: Option<LId>,
        /// Result bound.
        limit: Limit,
        /// Reply channel.
        reply: Sender<Vec<LId>>,
    },
    /// Drop postings below the bound.
    Gc {
        /// Exclusive GC bound.
        before: LId,
    },
}

/// Client-side handle to an indexer node.
#[derive(Clone)]
pub struct IndexerHandle {
    tx: Sender<IndexerRequest>,
    posted: Counter,
}

impl IndexerHandle {
    /// Posts one tag occurrence.
    pub fn post(&self, key: String, value: Option<TagValue>, lid: LId) {
        self.posted.add(1);
        let _ = self.tx.send(IndexerRequest::Post {
            postings: vec![(key, value, lid)],
        });
    }

    /// Posts a batch of tag occurrences.
    pub fn post_batch(&self, postings: Vec<(String, Option<TagValue>, LId)>) {
        self.posted.add(postings.len() as u64);
        let _ = self.tx.send(IndexerRequest::Post { postings });
    }

    /// Total tag postings sent through this handle (shared counter).
    pub fn posted_counter(&self) -> Counter {
        self.posted.clone()
    }

    /// Looks up positions carrying a tag, optionally below an exclusive
    /// position bound (applied before `limit`).
    pub fn lookup(
        &self,
        key: String,
        predicate: Option<ValuePredicate>,
        below: Option<LId>,
        limit: Limit,
    ) -> Result<Vec<LId>> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(IndexerRequest::Lookup {
                key,
                predicate,
                below,
                limit,
                reply,
            })
            .map_err(|_| ChariotsError::ShutDown)?;
        rx.recv().map_err(|_| ChariotsError::ShutDown)
    }

    /// Requests index GC below the bound.
    pub fn gc(&self, before: LId) {
        let _ = self.tx.send(IndexerRequest::Gc { before });
    }
}

/// Spawns an indexer node thread.
pub fn spawn_indexer(
    mut core: IndexerCore,
    shutdown: Shutdown,
) -> (IndexerHandle, JoinHandle<IndexerCore>) {
    let (tx, rx) = unbounded::<IndexerRequest>();
    let handle = IndexerHandle {
        tx,
        posted: Counter::new(),
    };
    let thread = std::thread::Builder::new()
        .name("indexer".into())
        .spawn(move || loop {
            if shutdown.is_signaled() {
                return core;
            }
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(IndexerRequest::Post { postings }) => {
                    for (key, value, lid) in postings {
                        core.post(&key, value, lid);
                    }
                }
                Ok(IndexerRequest::Lookup {
                    key,
                    predicate,
                    below,
                    limit,
                    reply,
                }) => {
                    let _ = reply.send(core.lookup(&key, predicate.as_ref(), below, limit));
                }
                Ok(IndexerRequest::Gc { before }) => core.gc_before(before),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return core,
            }
        })
        .expect("spawn indexer");
    (handle, thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochJournal;
    use bytes::Bytes;
    use chariots_simnet::StationConfig;
    use chariots_types::{DatacenterId, Tag, TagSet};

    fn launch_one(
        maintainers: usize,
        batch: u64,
    ) -> (
        Vec<MaintainerHandle>,
        Fabric,
        Shutdown,
        Vec<JoinHandle<MaintainerCore>>,
    ) {
        let journal = EpochJournal::new(RangeMap::new(maintainers, batch));
        let fabric = Fabric::new();
        let shutdown = Shutdown::new();
        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for i in 0..maintainers {
            let core =
                MaintainerCore::new(MaintainerId(i as u16), DatacenterId(0), journal.clone());
            let station = Arc::new(ServiceStation::new(
                format!("m{i}"),
                StationConfig::uncapped(),
            ));
            let (h, t) = spawn_maintainer(
                core,
                station,
                fabric.clone(),
                Duration::from_millis(2),
                shutdown.clone(),
            );
            handles.push(h);
            threads.push(t);
        }
        let groups = handles
            .iter()
            .cloned()
            .map(ReplicaGroupHandle::solo)
            .collect();
        fabric.set_peers(groups);
        (handles, fabric, shutdown, threads)
    }

    fn payload(s: &str) -> AppendPayload {
        AppendPayload::new(TagSet::new(), Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn append_read_roundtrip_through_node() {
        let (handles, _fabric, shutdown, threads) = launch_one(1, 10);
        let ids = handles[0].append(vec![payload("hi")]).unwrap();
        assert_eq!(ids, vec![(TOId(1), LId(0))]);
        let e = handles[0].read(LId(0), false).unwrap();
        assert_eq!(&e.record.body[..], b"hi");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn gossip_raises_head_of_log_across_nodes() {
        let (handles, _fabric, shutdown, threads) = launch_one(2, 5);
        handles[0].append(vec![payload("a")]).unwrap();
        handles[1].append(vec![payload("b")]).unwrap();
        // Give gossip a few intervals to propagate.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let hl = handles[0].head_of_log().unwrap();
            if hl >= LId(1) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "HL never advanced");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Position 0 is now safely readable with HL enforcement.
        assert!(handles[0].read(LId(0), true).is_ok());
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn crash_fails_requests_until_recovery() {
        let (handles, _fabric, shutdown, threads) = launch_one(1, 10);
        handles[0].append(vec![payload("a")]).unwrap();
        handles[0].crash();
        assert!(matches!(
            handles[0].read(LId(0), false),
            Err(ChariotsError::Unavailable(_))
        ));
        assert!(matches!(
            handles[0].append(vec![payload("b")]),
            Err(ChariotsError::Unavailable(_))
        ));
        handles[0].recover();
        assert!(handles[0].read(LId(0), false).is_ok());
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn tags_flow_to_indexer() {
        let (handles, fabric, shutdown, threads) = launch_one(1, 10);
        let (ix, ix_thread) = spawn_indexer(IndexerCore::new(), shutdown.clone());
        fabric.set_indexers(vec![ix.clone()]);
        let p = AppendPayload::new(
            TagSet::new().with(Tag::with_value("key", "x")),
            Bytes::from_static(b"v"),
        );
        let ids = handles[0].append(vec![p]).unwrap();
        // Indexer ingestion is async; poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let hits = ix.lookup("key".into(), None, Limit::All).unwrap();
            if hits == vec![ids[0].1] {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "posting never arrived"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
        ix_thread.join().unwrap();
    }

    /// Spawns `n` replica node threads of group M0 and returns the pieces a
    /// test needs to drive a batch against the group directly.
    fn launch_backups(
        n: usize,
    ) -> (
        Arc<GroupState>,
        Vec<MaintainerHandle>,
        Fabric,
        Shutdown,
        Vec<JoinHandle<MaintainerCore>>,
        EpochJournal,
    ) {
        let journal = EpochJournal::new(RangeMap::new(1, 10));
        let fabric = Fabric::new();
        let shutdown = Shutdown::new();
        let state = Arc::new(GroupState::new(MaintainerId(0)));
        let appended = Counter::new();
        let mut raw = Vec::new();
        let mut threads = Vec::new();
        for r in 0..n {
            let core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone());
            let station = Arc::new(ServiceStation::new(
                format!("m0-r{r}"),
                StationConfig::uncapped(),
            ));
            let ctx = ReplicaCtx {
                group: Arc::clone(&state),
                index: r,
                detector: None,
                heartbeat_interval: Duration::from_millis(5),
                commit_mode: CommitMode::PipelinedQuorum,
            };
            let (h, t) = spawn_replica(
                core,
                station,
                fabric.clone(),
                Duration::from_millis(50),
                shutdown.clone(),
                ctx,
                appended.clone(),
                BatchPolicy::default(),
            );
            raw.push(h);
            threads.push(t);
        }
        state.set_replicas(raw.clone());
        (state, raw, fabric, shutdown, threads, journal)
    }

    fn stored_entry(lid: u64, body: &str) -> Entry {
        use chariots_types::{Record, RecordId, VersionVector};
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(0), TOId(lid + 1)),
                VersionVector::new(1),
                TagSet::new(),
                Bytes::copy_from_slice(body.as_bytes()),
            ),
        )
    }

    /// A drained batch costs each live backup exactly ONE replication RPC,
    /// however many appends and stores it coalesced — and the seat-0 node
    /// (whose place the driven core takes) receives none.
    #[test]
    fn coalesced_batch_sends_one_rpc_per_backup() {
        let (state, raw, fabric, shutdown, threads, journal) = launch_backups(3);
        // Drive a fresh seat-0 core through serve_batch directly so the
        // batch composition is exact (the spawned seat-0 node idles).
        let mut core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone());
        let station = ServiceStation::new("driver", StationConfig::uncapped());
        let appended = Counter::new();
        let mut crash_buffer = Vec::new();
        let mut pending_replication = Vec::new();
        let ctx = ReplicaCtx {
            group: Arc::clone(&state),
            index: 0,
            detector: None,
            heartbeat_interval: Duration::from_millis(5),
            commit_mode: CommitMode::PipelinedQuorum,
        };
        let (tx1, rx1) = bounded(1);
        let (tx2, rx2) = bounded(1);
        serve_batch(
            &mut core,
            vec![
                BatchItem::Append {
                    payloads: vec![payload("a")],
                    reply: Some(ReplyTo::local(tx1)),
                },
                BatchItem::Append {
                    payloads: vec![payload("b")],
                    reply: Some(ReplyTo::local(tx2)),
                },
                BatchItem::Store {
                    entries: vec![stored_entry(5, "s")],
                },
            ],
            &station,
            &fabric,
            &appended,
            &mut crash_buffer,
            &mut pending_replication,
            &ctx,
            &mut Notify::new(),
        );
        assert_eq!(rx1.recv().unwrap().unwrap(), vec![(TOId(1), LId(0))]);
        assert_eq!(rx2.recv().unwrap().unwrap(), vec![(TOId(2), LId(1))]);
        assert_eq!(appended.get(), 3);
        // One push per backup for the whole 3-record batch; the acting
        // primary's own seat gets nothing.
        assert_eq!(raw[0].replicate_rpc_counter().get(), 0);
        assert_eq!(raw[1].replicate_rpc_counter().get(), 1);
        assert_eq!(raw[2].replicate_rpc_counter().get(), 1);
        // And the push carried every record of the batch.
        for backup in &raw[1..] {
            for lid in [0, 1, 5] {
                assert_eq!(backup.read(LId(lid), false).unwrap().lid, LId(lid));
            }
        }
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    /// A fencing event while a batch is in service fails the WHOLE batch:
    /// every append waiter gets the fencing error and nothing is acked —
    /// no partial acks under a deposed generation.
    #[test]
    fn fencing_mid_batch_fails_every_item() {
        let (state, raw, fabric, shutdown, threads, journal) = launch_backups(2);
        let mut core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone());
        // Rate-capped station: serving the 2-record batch blocks the driver
        // for ~200ms, a deterministic window to depose it in.
        let station = ServiceStation::new("driver", StationConfig::with_rate(10.0));
        let appended = Counter::new();
        let ctx = ReplicaCtx {
            group: Arc::clone(&state),
            index: 0,
            detector: None,
            heartbeat_interval: Duration::from_millis(5),
            commit_mode: CommitMode::PipelinedQuorum,
        };
        let (tx1, rx1) = bounded(1);
        let (tx2, rx2) = bounded(1);
        let driver = {
            let fabric = fabric.clone();
            let appended = appended.clone();
            std::thread::spawn(move || {
                let mut crash_buffer = Vec::new();
                let mut pending_replication = Vec::new();
                serve_batch(
                    &mut core,
                    vec![
                        BatchItem::Append {
                            payloads: vec![payload("a")],
                            reply: Some(ReplyTo::local(tx1)),
                        },
                        BatchItem::Append {
                            payloads: vec![payload("b")],
                            reply: Some(ReplyTo::local(tx2)),
                        },
                    ],
                    &station,
                    &fabric,
                    &appended,
                    &mut crash_buffer,
                    &mut pending_replication,
                    &ctx,
                    &mut Notify::new(),
                );
            })
        };
        // Depose seat 0 while the batch is still being served.
        std::thread::sleep(Duration::from_millis(50));
        state.promote(1);
        driver.join().unwrap();
        // Both waiters see the fencing failure; neither append was acked.
        assert!(matches!(
            rx1.recv().unwrap(),
            Err(ChariotsError::Fenced { .. })
        ));
        assert!(matches!(
            rx2.recv().unwrap(),
            Err(ChariotsError::Fenced { .. })
        ));
        assert_eq!(appended.get(), 0, "no partial acks");
        assert_eq!(raw[1].replicate_rpc_counter().get(), 0);
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn async_appends_are_counted() {
        let (handles, _fabric, shutdown, threads) = launch_one(1, 100);
        let counter = handles[0].appended_counter();
        for _ in 0..10 {
            assert!(handles[0].append_async(vec![payload("x"); 10]));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while counter.get() < 100 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counter.get(), 100);
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }
}
