//! Deployment wiring: launch a full FLStore instance inside one simulated
//! datacenter — maintainer replica groups, indexer nodes, the controller,
//! the failure monitor, and the gossip fabric (Fig. 3's architecture).

use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use chariots_simnet::{
    Counter, FailureDetector, FailureMonitor, MetricsRegistry, MetricsSnapshot, ServiceStation,
    Shutdown, StageTracer, StationConfig, TransportMetrics,
};
use chariots_types::{DatacenterId, FLStoreConfig, LId, MaintainerId, Result, TransportMode};

use crate::client::{FLStoreClient, ReadObs};
use crate::controller::Controller;
use crate::indexer::IndexerCore;
use crate::maintainer::MaintainerCore;
use crate::node::{spawn_indexer, spawn_replica, BatchPolicy, Fabric, FabricObs, IndexerHandle};
use crate::range::RangeMap;
use crate::replication::{
    replica_key, run_failover, run_repair, GroupState, ReplicaCtx, ReplicaGroupHandle,
};

/// A running FLStore deployment: the §5 architecture inside one datacenter.
///
/// With `replication_factor > 1` every maintainer id is served by a replica
/// group: one primary plus backups, heartbeating into a shared
/// [`FailureDetector`]. A background [`FailureMonitor`] promotes a
/// caught-up backup when a primary goes silent (`{prefix}.failover.count`)
/// and runs anti-entropy repair so lagging replicas converge
/// (`{prefix}.replica.lag`).
pub struct FLStore {
    cfg: FLStoreConfig,
    dc: DatacenterId,
    controller: Controller,
    fabric: Fabric,
    maintainers: Vec<ReplicaGroupHandle>,
    indexers: Vec<IndexerHandle>,
    station_cfg: StationConfig,
    persist_dir: Option<PathBuf>,
    registry: MetricsRegistry,
    detector: Option<FailureDetector>,
    monitor: Option<FailureMonitor>,
    shutdown: Shutdown,
    threads: Vec<JoinHandle<()>>,
}

impl FLStore {
    /// Launches a deployment with uncapped machines (correctness testing).
    pub fn launch(dc: DatacenterId, cfg: FLStoreConfig) -> Result<Self> {
        Self::launch_with(dc, cfg, StationConfig::uncapped(), None)
    }

    /// Launches a deployment whose machines are paced by `station_cfg`,
    /// optionally persisting each maintainer replica's log under
    /// `persist_dir`.
    pub fn launch_with(
        dc: DatacenterId,
        cfg: FLStoreConfig,
        station_cfg: StationConfig,
        persist_dir: Option<PathBuf>,
    ) -> Result<Self> {
        cfg.validate()
            .map_err(chariots_types::ChariotsError::InvalidConfig)?;
        let initial = RangeMap::new(cfg.num_maintainers, cfg.batch_size);
        let controller = Controller::new(dc, initial);
        let prefix = format!("dc{}.flstore", dc.0);
        let registry = MetricsRegistry::new(prefix.clone());
        controller.configure_reads(
            cfg.hl_cache_ttl,
            cfg.read_cache_entries,
            ReadObs::registered(&registry, &prefix),
        );
        let fabric = Fabric::with_obs(FabricObs::registered(&registry, &prefix));
        let shutdown = Shutdown::new();
        let detector = if cfg.replication_factor > 1 {
            Some(FailureDetector::new(cfg.suspicion_timeout))
        } else {
            None
        };
        let mut deployment = FLStore {
            cfg,
            dc,
            controller,
            fabric,
            maintainers: Vec::new(),
            indexers: Vec::new(),
            station_cfg,
            persist_dir,
            registry,
            detector,
            monitor: None,
            shutdown,
            threads: Vec::new(),
        };

        for i in 0..deployment.cfg.num_maintainers {
            deployment.spawn_maintainer_group(MaintainerId(i as u16))?;
        }
        for i in 0..deployment.cfg.num_indexers {
            let (handle, thread) = spawn_indexer(IndexerCore::new(), deployment.shutdown.clone());
            deployment.registry.register_counter(
                format!("{}.indexer{i}.posted", deployment.registry.name()),
                handle.posted_counter(),
            );
            deployment.indexers.push(handle);
            deployment.threads.push(forget_result(thread));
        }
        deployment.rewire();
        deployment.start_failure_monitor();
        Ok(deployment)
    }

    /// Spawns the `replication_factor` replicas of group `id` and registers
    /// the group. Replica 0 starts as primary and keeps the legacy
    /// single-node WAL filename, so an unreplicated deployment's on-disk
    /// layout is unchanged and pre-replication logs replay into seat 0.
    fn spawn_maintainer_group(&mut self, id: MaintainerId) -> Result<()> {
        let replicas = self.cfg.replication_factor.max(1);
        let state = Arc::new(GroupState::new(id));
        let appended = Counter::new();
        let mut raw = Vec::new();
        let batch = BatchPolicy {
            max_records: self.cfg.max_batch_records,
            max_bytes: self.cfg.max_batch_bytes,
        };
        for r in 0..replicas {
            let mut core = MaintainerCore::new(id, self.dc, self.controller.journal())
                .with_max_deferred(self.cfg.max_deferred_appends)
                .with_sync_policy(self.cfg.wal_sync_policy)
                .with_wal_sync_counter(self.fabric.obs().wal_syncs.clone())
                .with_wal_segment_bytes(self.cfg.wal_segment_bytes)
                .with_compact_live_frac_milli(self.cfg.compact_live_frac_milli)
                .with_checkpoint_interval(self.cfg.checkpoint_interval);
            if let Some(dir) = &self.persist_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| chariots_types::ChariotsError::Storage(e.to_string()))?;
                let file = if r == 0 {
                    format!("maintainer-{}.wal", id.0)
                } else {
                    format!("maintainer-{}-r{r}.wal", id.0)
                };
                core = core.with_wal(dir.join(file))?;
            }
            let name = if r == 0 {
                format!("maintainer-{}", id.0)
            } else {
                format!("maintainer-{}.r{r}", id.0)
            };
            let station = Arc::new(ServiceStation::new(name, self.station_cfg.clone()));
            if let Some(detector) = &self.detector {
                detector.register(&replica_key(id, r));
            }
            let ctx = ReplicaCtx {
                group: Arc::clone(&state),
                index: r,
                detector: self.detector.clone(),
                heartbeat_interval: self.cfg.heartbeat_interval,
                commit_mode: self.cfg.commit_mode,
            };
            let (handle, thread) = spawn_replica(
                core,
                station,
                self.fabric.clone(),
                self.cfg.gossip_interval,
                self.shutdown.clone(),
                ctx,
                appended.clone(),
                batch,
            );
            // Under the TCP transport, client-facing RPCs routed through
            // the registered handles cross a real loopback socket;
            // replication/gossip stay on the in-process channel (the
            // wrapped handle routes them locally).
            let handle = if self.cfg.transport == TransportMode::Tcp {
                let endpoint = if r == 0 {
                    format!("maintainer{}", id.0)
                } else {
                    format!("maintainer{}.r{r}", id.0)
                };
                let metrics = TransportMetrics::registered(&self.registry, &endpoint);
                handle
                    .via_tcp(&endpoint, self.shutdown.clone(), metrics)
                    .map_err(|e| chariots_types::ChariotsError::Transport(e.to_string()))?
            } else {
                handle
            };
            raw.push(handle);
            self.threads.push(forget_result(thread));
        }
        state.set_replicas(raw);
        self.registry.register_counter(
            format!("{}.maintainer{}.appended", self.registry.name(), id.0),
            appended.clone(),
        );
        self.maintainers
            .push(ReplicaGroupHandle::new(id, state, appended));
        Ok(())
    }

    /// Starts the failover/repair loop when replication is on. The monitor
    /// period trades detection latency for overhead: it must tick at least
    /// a few times per suspicion window to promote promptly.
    fn start_failure_monitor(&mut self) {
        let Some(detector) = self.detector.clone() else {
            return;
        };
        let prefix = self.registry.name().to_string();
        let failovers = self.registry.counter(&format!("{prefix}.failover.count"));
        let lag = self.registry.gauge(&format!("{prefix}.replica.lag"));
        let controller = self.controller.clone();
        let period = self
            .cfg
            .heartbeat_interval
            .max(self.cfg.suspicion_timeout / 4);
        let tick_detector = detector.clone();
        let journal = self.registry.journal().clone();
        self.monitor = Some(FailureMonitor::spawn(detector, period, move |_suspects| {
            let groups = controller.groups();
            run_failover(&groups, &tick_detector, &failovers, &journal);
            run_repair(&groups, 256, &lag);
        }));
    }

    fn rewire(&self) {
        self.fabric.set_peers(self.maintainers.clone());
        self.fabric.set_indexers(self.indexers.clone());
        self.controller
            .register_maintainers(self.maintainers.clone());
        self.controller.register_indexers(self.indexers.clone());
    }

    /// The deployment's controller (session bootstrap).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Opens an application-client session.
    pub fn client(&self) -> FLStoreClient {
        FLStoreClient::connect(&self.controller)
    }

    /// Handles to the maintainer replica groups (bench harness
    /// instrumentation and fault injection).
    pub fn maintainers(&self) -> &[ReplicaGroupHandle] {
        &self.maintainers
    }

    /// Handles to the indexer nodes.
    pub fn indexers(&self) -> &[IndexerHandle] {
        &self.indexers
    }

    /// The shared failure detector, when replication is enabled.
    pub fn failure_detector(&self) -> Option<&FailureDetector> {
        self.detector.as_ref()
    }

    /// The datacenter this deployment serves.
    pub fn datacenter(&self) -> DatacenterId {
        self.dc
    }

    /// The deployment's metrics registry (`dc{N}.flstore.*` names).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A point-in-time snapshot of the deployment's metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Wires the Chariots store-stage tracer into the maintainer fabric so
    /// persisted records close their store span (disabled by default).
    pub fn set_store_tracer(&self, tracer: StageTracer) {
        self.fabric.set_store_tracer(tracer);
    }

    /// Live elasticity (§6.3): adds a maintainer via *future reassignment*.
    ///
    /// The new striping (one more maintainer, same batch size) takes effect
    /// at `boundary`, which the caller picks comfortably beyond the current
    /// append frontier so the announcement reaches every stage first.
    pub fn add_maintainer(&mut self, boundary: LId) -> Result<MaintainerId> {
        let new_id = MaintainerId(self.maintainers.len() as u16);
        let new_map = RangeMap::new(self.maintainers.len() + 1, self.cfg.batch_size);
        // Spawn the group first so it exists when the epoch activates. Its
        // journal snapshot (taken in spawn) predates the announcement; the
        // broadcast below reaches it through the registered handle.
        self.spawn_maintainer_group(new_id)?;
        self.rewire();
        self.controller.announce_epoch(boundary, new_map)?;
        self.registry.journal().publish(
            &format!("{}.controller", self.registry.name()),
            None,
            chariots_simnet::EventKind::EpochChange {
                boundary: boundary.0,
            },
        );
        Ok(new_id)
    }

    /// Archives every readable position below `bound` into `archive`
    /// (cold storage, §6.1), then garbage-collects the prefix. The archive
    /// must already cover everything previously collected.
    pub fn archive_and_gc(
        &self,
        bound: LId,
        archive: &mut crate::archive::ArchiveWriter,
    ) -> Result<()> {
        let mut client = self.client();
        let mut batch = Vec::new();
        let mut lid = archive.archived_below();
        // Batched sweep: chunks of positions through the scatter-gather
        // read path instead of one RPC per position.
        const CHUNK: usize = 256;
        'sweep: while lid < bound {
            let mut lids = Vec::with_capacity(CHUNK);
            while lid < bound && lids.len() < CHUNK {
                lids.push(lid);
                lid = lid.next();
            }
            for result in client.read_many(&lids) {
                match result {
                    Ok(entry) => batch.push(entry),
                    Err(chariots_types::ChariotsError::GarbageCollected(_)) => {}
                    Err(_) => break 'sweep, // not yet readable: archive up to here only
                }
            }
        }
        let archived_to = batch.last().map(|e| e.lid.next());
        archive.archive(&batch)?;
        if let Some(upto) = archived_to {
            self.gc_before(upto);
        }
        Ok(())
    }

    /// Requests garbage collection of all positions below `bound`.
    pub fn gc_before(&self, bound: LId) {
        for m in &self.maintainers {
            m.gc(bound);
        }
        for ix in &self.indexers {
            ix.gc(bound);
        }
    }

    /// Stops every node and waits for the threads.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        if let Some(monitor) = self.monitor.take() {
            monitor.stop();
        }
        self.shutdown.signal();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for FLStore {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// Erases a typed join handle into `JoinHandle<()>` by wrapping.
fn forget_result<T: Send + 'static>(handle: JoinHandle<T>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("join-wrapper".into())
        .spawn(move || {
            let _ = handle.join();
        })
        .expect("spawn join wrapper")
}
