//! Write-ahead persistence for log maintainers: a segmented, compactable
//! storage engine.
//!
//! Maintainers "are responsible for persisting the log's records" (§5.2).
//! Each maintainer owns one WAL, stored as a sequence of numbered *segment
//! files* (`<base>.000000`, `<base>.000001`, …). The active segment is
//! append-only; once it reaches `segment_bytes` it is *sealed* (its header
//! is stamped with the first/last LId, frame count, and a header CRC) and a
//! new segment starts. Sealed segments are immutable except for two
//! whole-file operations:
//!
//! - **Compaction** ([`Wal::compact`]): a sealed segment whose estimated
//!   live ratio fell below the configured threshold is rewritten without
//!   its dead (garbage-collected / archived) frames and atomically swapped
//!   in; a fully dead segment is deleted outright.
//! - **Truncation** ([`Wal::truncate_below`]): segments wholly covered by a
//!   durable checkpoint are deleted.
//!
//! Frames are length-prefixed and CRC-32 protected; recovery streams
//! frames segment by segment. A torn or corrupt frame ends replay of the
//! *final* segment (a crash mid-write); in an earlier segment it skips to
//! the next segment, because a later segment can only exist if the WAL was
//! reopened after that tear — everything past it was never acked.
//!
//! The codec is hand-rolled: the format is tiny, stable, and has no reason
//! to pull a serialization framework into the storage path.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use chariots_types::{
    ChariotsError, DatacenterId, Entry, LId, Record, RecordId, Result, TOId, Tag, TagSet, TagValue,
    VersionVector,
};

/// Default rotation threshold for one segment file.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

// The CRC-32 implementation moved to `chariots_types::wire` so WAL frames
// and transport frames share one checksum; re-exported to keep `wal::crc32`
// callers working.
pub use chariots_types::crc32;

fn io_err(e: std::io::Error) -> ChariotsError {
    ChariotsError::Storage(e.to_string())
}

/// Serializes one entry into the WAL payload format.
pub(crate) fn encode_entry(entry: &Entry, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&entry.lid.0.to_le_bytes());
    buf.extend_from_slice(&entry.record.host().0.to_le_bytes());
    buf.extend_from_slice(&entry.record.toid().0.to_le_bytes());

    let deps: Vec<u64> = entry.record.deps.iter().map(|(_, t)| t.0).collect();
    buf.extend_from_slice(&(deps.len() as u16).to_le_bytes());
    for d in deps {
        buf.extend_from_slice(&d.to_le_bytes());
    }

    buf.extend_from_slice(&(entry.record.tags.len() as u16).to_le_bytes());
    for tag in entry.record.tags.iter() {
        buf.extend_from_slice(&(tag.key.len() as u16).to_le_bytes());
        buf.extend_from_slice(tag.key.as_bytes());
        match &tag.value {
            None => buf.push(0),
            Some(TagValue::Int(i)) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Some(TagValue::Str(s)) => {
                buf.push(2);
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
        }
    }

    buf.extend_from_slice(&(entry.record.body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&entry.record.body);
}

/// Cursor-based reader over a decoded payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }
}

/// Deserializes one entry from a WAL payload. Returns `None` on any
/// malformation (the caller treats it as a torn tail).
pub(crate) fn decode_entry(payload: &[u8]) -> Option<Entry> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let lid = LId(c.u64()?);
    let host = DatacenterId(c.u16()?);
    let toid = TOId(c.u64()?);

    let deps_len = c.u16()? as usize;
    let mut deps = Vec::with_capacity(deps_len);
    for _ in 0..deps_len {
        deps.push(TOId(c.u64()?));
    }

    let tag_count = c.u16()? as usize;
    let mut tags = TagSet::new();
    for _ in 0..tag_count {
        let key_len = c.u16()? as usize;
        let key = std::str::from_utf8(c.take(key_len)?).ok()?.to_owned();
        let value = match *c.take(1)?.first()? {
            0 => None,
            1 => Some(TagValue::Int(c.i64()?)),
            2 => {
                let len = c.u32()? as usize;
                Some(TagValue::Str(
                    std::str::from_utf8(c.take(len)?).ok()?.to_owned(),
                ))
            }
            _ => return None,
        };
        tags.push(Tag { key, value });
    }

    let body_len = c.u32()? as usize;
    let body = Bytes::copy_from_slice(c.take(body_len)?);
    if c.pos != payload.len() {
        return None; // trailing garbage
    }
    Some(Entry::new(
        lid,
        Record::new(
            RecordId::new(host, toid),
            VersionVector::from_entries(deps),
            tags,
            body,
        ),
    ))
}

/// Frame length cap against absurd lengths from a corrupt header.
const MAX_FRAME_LEN: usize = 1 << 30;

/// Writes one `[len][crc][payload]` frame; returns the bytes written.
pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<u64> {
    let crc = crc32(payload);
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|_| w.write_all(&crc.to_le_bytes()))
        .and_then(|_| w.write_all(payload))
        .map_err(io_err)?;
    Ok(8 + payload.len() as u64)
}

/// Outcome of attempting to read one frame.
pub(crate) enum FrameStep {
    /// An intact frame: the decoded entry and its on-disk size in bytes.
    Entry(Box<Entry>, u64),
    /// Clean end of file.
    Eof,
    /// A torn, corrupt, or undecodable frame: replay must not proceed
    /// past this point within the current file.
    Invalid,
}

/// Reads one frame from `r`, validating length, CRC, and decodability.
pub(crate) fn read_frame(r: &mut impl Read) -> Result<FrameStep> {
    let mut header = [0u8; 8];
    match read_exact_or_eof(r, &mut header) {
        Ok(true) => {}
        Ok(false) => return Ok(FrameStep::Eof),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Ok(FrameStep::Invalid);
    }
    let mut payload = vec![0u8; len];
    match r.read_exact(&mut payload) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Ok(FrameStep::Invalid); // torn tail
        }
        Err(e) => return Err(io_err(e)),
    }
    if crc32(&payload) != crc {
        return Ok(FrameStep::Invalid);
    }
    match decode_entry(&payload) {
        Some(entry) => Ok(FrameStep::Entry(Box::new(entry), 8 + len as u64)),
        None => Ok(FrameStep::Invalid),
    }
}

/// Reads exactly `buf.len()` bytes, returning `Ok(false)` on a clean EOF at
/// offset zero of the read.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool> {
    match r.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(io_err(e)),
    }
}

// ---------------------------------------------------------------------------
// Segment headers
// ---------------------------------------------------------------------------

const SEG_MAGIC: [u8; 4] = *b"CSEG";
const SEG_VERSION: u16 = 1;
const SEG_FLAG_SEALED: u16 = 1;
/// Fixed on-disk size of a segment header.
pub const SEG_HEADER_LEN: u64 = 48;

/// Decoded per-segment header: identity plus seal-time metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegHeader {
    sealed: bool,
    seq: u64,
    /// `u64::MAX` when the segment holds no frames.
    first_lid: u64,
    last_lid: u64,
    frames: u64,
}

impl SegHeader {
    fn encode(&self) -> [u8; SEG_HEADER_LEN as usize] {
        let mut out = [0u8; SEG_HEADER_LEN as usize];
        out[0..4].copy_from_slice(&SEG_MAGIC);
        out[4..6].copy_from_slice(&SEG_VERSION.to_le_bytes());
        let flags: u16 = if self.sealed { SEG_FLAG_SEALED } else { 0 };
        out[6..8].copy_from_slice(&flags.to_le_bytes());
        out[8..16].copy_from_slice(&self.seq.to_le_bytes());
        out[16..24].copy_from_slice(&self.first_lid.to_le_bytes());
        out[24..32].copy_from_slice(&self.last_lid.to_le_bytes());
        out[32..40].copy_from_slice(&self.frames.to_le_bytes());
        let crc = crc32(&out[0..40]);
        out[40..44].copy_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Option<SegHeader> {
        if buf.len() < SEG_HEADER_LEN as usize || buf[0..4] != SEG_MAGIC {
            return None;
        }
        let crc = u32::from_le_bytes([buf[40], buf[41], buf[42], buf[43]]);
        if crc32(&buf[0..40]) != crc {
            return None;
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != SEG_VERSION {
            return None;
        }
        let flags = u16::from_le_bytes([buf[6], buf[7]]);
        let u64_at = |o: usize| {
            u64::from_le_bytes([
                buf[o],
                buf[o + 1],
                buf[o + 2],
                buf[o + 3],
                buf[o + 4],
                buf[o + 5],
                buf[o + 6],
                buf[o + 7],
            ])
        };
        Some(SegHeader {
            sealed: flags & SEG_FLAG_SEALED != 0,
            seq: u64_at(8),
            first_lid: u64_at(16),
            last_lid: u64_at(24),
            frames: u64_at(32),
        })
    }
}

/// Metadata of one on-disk segment, as known to the writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment sequence number; `None` for a legacy (pre-segmentation)
    /// flat WAL file, which sorts before every numbered segment.
    pub seq: Option<u64>,
    /// The backing file.
    pub path: PathBuf,
    /// Total file size in bytes (header included, if any).
    pub bytes: u64,
    /// Smallest LId of any intact frame; `None` when empty.
    pub first_lid: Option<LId>,
    /// Largest LId of any intact frame.
    pub last_lid: Option<LId>,
    /// Intact frames in the segment.
    pub frames: u64,
}

/// A durable position in the WAL: `offset` bytes of frame data into
/// segment `seq` (excluding the segment header). Recovery from a
/// checkpoint resumes replay here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalPosition {
    /// Segment sequence number.
    pub seq: u64,
    /// Frame-data byte offset within the segment (header excluded).
    pub offset: u64,
}

/// Result of one [`Wal::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Sealed segments rewritten in place without their dead frames.
    pub segments_rewritten: u64,
    /// Sealed segments deleted outright (fully dead or empty).
    pub segments_deleted: u64,
    /// Disk bytes reclaimed by this pass.
    pub reclaimed_bytes: u64,
}

impl CompactionStats {
    /// Whether the pass changed anything on disk.
    pub fn is_empty(&self) -> bool {
        self.segments_rewritten == 0 && self.segments_deleted == 0
    }
}

/// Lists the segment files of the WAL at `base`, legacy flat file first,
/// then numbered segments in ascending order. Missing directory ⇒ empty.
fn discover_segments(base: &Path) -> Result<Vec<(Option<u64>, PathBuf)>> {
    let mut out = Vec::new();
    if base.is_file() {
        out.push((None, base.to_path_buf()));
    }
    let Some(parent) = base.parent() else {
        return Ok(out);
    };
    let Some(stem) = base.file_name().and_then(|n| n.to_str()) else {
        return Ok(out);
    };
    let entries = match std::fs::read_dir(parent) {
        Ok(it) => it,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err(e)),
    };
    let mut numbered = Vec::new();
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(suffix) = name.strip_prefix(stem).and_then(|s| s.strip_prefix('.')) else {
            continue;
        };
        if suffix.len() == 6 && suffix.bytes().all(|b| b.is_ascii_digit()) {
            let seq: u64 = suffix.parse().expect("six digits");
            numbered.push((Some(seq), entry.path()));
        }
    }
    numbered.sort_by_key(|(seq, _)| *seq);
    out.extend(numbered);
    Ok(out)
}

/// Scans one segment file: returns its metadata (valid-prefix frames only)
/// and whether it starts with an intact segment header.
fn scan_segment(seq: Option<u64>, path: &Path) -> Result<(SegmentInfo, bool)> {
    let file = File::open(path).map_err(io_err)?;
    let bytes = file.metadata().map_err(io_err)?.len();
    let mut reader = BufReader::new(file);
    let headered = skip_header(&mut reader)?.is_some();
    let mut info = SegmentInfo {
        seq,
        path: path.to_path_buf(),
        bytes,
        first_lid: None,
        last_lid: None,
        frames: 0,
    };
    loop {
        match read_frame(&mut reader)? {
            FrameStep::Entry(entry, _) => {
                info.first_lid = Some(info.first_lid.map_or(entry.lid, |f| f.min(entry.lid)));
                info.last_lid = Some(info.last_lid.map_or(entry.lid, |l| l.max(entry.lid)));
                info.frames += 1;
            }
            FrameStep::Eof | FrameStep::Invalid => break,
        }
    }
    Ok((info, headered))
}

/// Consumes the segment header if the file starts with an intact one,
/// returning it; otherwise rewinds to offset 0 (legacy/garbled header:
/// the whole file is frame data).
fn skip_header(reader: &mut BufReader<File>) -> Result<Option<SegHeader>> {
    let mut buf = [0u8; SEG_HEADER_LEN as usize];
    let got = read_exact_or_eof(reader, &mut buf)?;
    if got {
        if let Some(h) = SegHeader::decode(&buf) {
            return Ok(Some(h));
        }
    }
    reader.seek(SeekFrom::Start(0)).map_err(io_err)?;
    Ok(None)
}

/// An append-only, CRC-protected, segmented write-ahead log of entries.
#[derive(Debug)]
pub struct Wal {
    base: PathBuf,
    segment_bytes: u64,
    /// Sealed (immutable) segments, oldest first.
    sealed: Vec<SegmentInfo>,
    writer: BufWriter<File>,
    active_seq: u64,
    /// Frame-data bytes written to the active segment (header excluded).
    active_bytes: u64,
    active_frames: u64,
    active_first: Option<LId>,
    active_last: Option<LId>,
    appended: u64,
    synced: u64,
    /// Segments never compacted: they carry the byte offsets of the two
    /// most recent durable checkpoints.
    protected: Vec<u64>,
}

impl Wal {
    /// Opens (creating if absent) the WAL rooted at `base` with the
    /// default segment size.
    pub fn open(base: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with(base, DEFAULT_SEGMENT_BYTES)
    }

    /// Opens the WAL rooted at `base`, rotating segments at
    /// `segment_bytes`. Existing segments are scanned (sealed headers are
    /// trusted; the rest get a frame scan), the most recent one is sealed
    /// as-is, and appends start in a fresh segment — so a torn tail from a
    /// crash can never be followed by live frames in the same file.
    pub fn open_with(base: impl Into<PathBuf>, segment_bytes: u64) -> Result<Self> {
        let base = base.into();
        let segment_bytes = segment_bytes.max(1);
        let mut sealed = Vec::new();
        let mut next_seq = 0u64;
        for (seq, path) in discover_segments(&base)? {
            let info = match read_sealed_header(&path)? {
                Some(h) if seq == Some(h.seq) => SegmentInfo {
                    seq,
                    bytes: std::fs::metadata(&path).map_err(io_err)?.len(),
                    path,
                    first_lid: (h.first_lid != u64::MAX).then_some(LId(h.first_lid)),
                    last_lid: (h.first_lid != u64::MAX).then_some(LId(h.last_lid)),
                    frames: h.frames,
                },
                _ => scan_segment(seq, &path)?.0,
            };
            if let Some(s) = seq {
                next_seq = next_seq.max(s + 1);
            }
            sealed.push(info);
        }
        // Seal the most recent segment in place (if it carries a header):
        // its metadata is now exact and replay can trust it.
        if let Some(last) = sealed.last() {
            if last.seq.is_some() {
                seal_in_place(last)?;
            }
        }
        let (writer, active_seq) = new_active_segment(&base, next_seq)?;
        Ok(Wal {
            base,
            segment_bytes,
            sealed,
            writer,
            active_seq,
            active_bytes: 0,
            active_frames: 0,
            active_first: None,
            active_last: None,
            appended: 0,
            synced: 0,
            protected: Vec::new(),
        })
    }

    /// The path of numbered segment `seq` of the WAL at `base`.
    pub fn segment_path(base: impl AsRef<Path>, seq: u64) -> PathBuf {
        let base = base.as_ref();
        let mut name = base
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        name.push_str(&format!(".{seq:06}"));
        base.with_file_name(name)
    }

    /// Appends one entry frame, rotating to a new segment once the active
    /// one reaches the configured size.
    pub fn append(&mut self, entry: &Entry) -> Result<()> {
        let mut payload = Vec::with_capacity(64 + entry.record.body.len());
        encode_entry(entry, &mut payload);
        let written = write_frame(&mut self.writer, &payload)?;
        self.active_bytes += written;
        self.active_frames += 1;
        self.active_first = Some(self.active_first.map_or(entry.lid, |f| f.min(entry.lid)));
        self.active_last = Some(self.active_last.map_or(entry.lid, |l| l.max(entry.lid)));
        self.appended += 1;
        if self.active_bytes >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the active segment (flush, fsync, stamp the header) and
    /// starts a new one. Sealing is itself a durability point.
    fn rotate(&mut self) -> Result<()> {
        if self.active_frames == 0 {
            return Ok(());
        }
        self.writer.flush().map_err(io_err)?;
        let header = SegHeader {
            sealed: true,
            seq: self.active_seq,
            first_lid: self.active_first.map_or(u64::MAX, |l| l.0),
            last_lid: self.active_last.map_or(0, |l| l.0),
            frames: self.active_frames,
        };
        let file = self.writer.get_mut();
        file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        file.write_all(&header.encode()).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
        self.sealed.push(SegmentInfo {
            seq: Some(self.active_seq),
            path: Self::segment_path(&self.base, self.active_seq),
            bytes: SEG_HEADER_LEN + self.active_bytes,
            first_lid: self.active_first,
            last_lid: self.active_last,
            frames: self.active_frames,
        });
        let (writer, seq) = new_active_segment(&self.base, self.active_seq + 1)?;
        self.writer = writer;
        self.active_seq = seq;
        self.active_bytes = 0;
        self.active_frames = 0;
        self.active_first = None;
        self.active_last = None;
        self.synced = self.appended;
        Ok(())
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush().map_err(io_err)
    }

    /// Flushes and fsyncs the active segment (durability point). Sealed
    /// segments were fsynced when sealed.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.writer.get_ref().sync_data().map_err(io_err)?;
        self.synced = self.appended;
        Ok(())
    }

    /// Number of frames appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Number of frames covered by the last successful `sync`.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Frames appended but not yet covered by a successful `sync`.
    pub fn unsynced(&self) -> u64 {
        self.appended - self.synced
    }

    /// The base path this WAL's segment files derive from.
    pub fn path(&self) -> &Path {
        &self.base
    }

    /// The current append position (end of the active segment, counting
    /// written-but-possibly-unflushed frames).
    pub fn position(&self) -> WalPosition {
        WalPosition {
            seq: self.active_seq,
            offset: self.active_bytes,
        }
    }

    /// Live segment files (sealed plus the active one).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Total bytes across all live segment files.
    pub fn disk_bytes(&self) -> u64 {
        let sealed: u64 = self.sealed.iter().map(|s| s.bytes).sum();
        sealed + SEG_HEADER_LEN + self.active_bytes
    }

    /// Marks segments that must never be compacted: the ones holding the
    /// byte offsets of still-useful checkpoints.
    pub fn set_protected(&mut self, seqs: impl IntoIterator<Item = u64>) {
        self.protected = seqs.into_iter().collect();
    }

    /// Deletes every sealed segment strictly below numbered segment `seq`
    /// (the legacy flat file always qualifies). Returns the disk bytes
    /// reclaimed. Called after a checkpoint makes the prefix redundant.
    pub fn truncate_below(&mut self, seq: u64) -> Result<u64> {
        let mut reclaimed = 0;
        let mut keep = Vec::with_capacity(self.sealed.len());
        for info in self.sealed.drain(..) {
            let dead = match info.seq {
                None => true,
                Some(s) => s < seq,
            };
            if dead {
                std::fs::remove_file(&info.path).map_err(io_err)?;
                reclaimed += info.bytes;
            } else {
                keep.push(info);
            }
        }
        self.sealed = keep;
        Ok(reclaimed)
    }

    /// Compacts sealed segments: a segment whose frames all carry LIds
    /// below `dead_below` is deleted; one whose *estimated* live ratio
    /// (from its header's LId range) fell below `live_frac_milli`/1000 is
    /// rewritten keeping only frames for which `is_live` holds, then
    /// atomically swapped in. Protected segments (checkpoint anchors) and
    /// the active segment are never touched.
    pub fn compact<F: Fn(LId) -> bool>(
        &mut self,
        dead_below: LId,
        live_frac_milli: u32,
        is_live: F,
    ) -> Result<CompactionStats> {
        let mut stats = CompactionStats::default();
        let mut keep = Vec::with_capacity(self.sealed.len());
        for mut info in self.sealed.drain(..) {
            if info.seq.is_some_and(|s| self.protected.contains(&s)) {
                keep.push(info);
                continue;
            }
            let (first, last) = match (info.first_lid, info.last_lid) {
                (Some(f), Some(l)) => (f, l),
                // No intact frames: pure dead weight.
                _ => {
                    std::fs::remove_file(&info.path).map_err(io_err)?;
                    stats.segments_deleted += 1;
                    stats.reclaimed_bytes += info.bytes;
                    continue;
                }
            };
            if last < dead_below {
                std::fs::remove_file(&info.path).map_err(io_err)?;
                stats.segments_deleted += 1;
                stats.reclaimed_bytes += info.bytes;
                continue;
            }
            if first >= dead_below {
                keep.push(info);
                continue;
            }
            // Straddling segment: estimate the live fraction from the LId
            // range (frames are roughly uniform across the range).
            let span = last.0 - first.0 + 1;
            let live = last.0 - dead_below.0 + 1;
            let live_milli = live.saturating_mul(1000) / span;
            if live_milli >= live_frac_milli as u64 {
                keep.push(info);
                continue;
            }
            let old_bytes = info.bytes;
            match rewrite_segment(&info, &is_live)? {
                Some(new_info) => {
                    stats.segments_rewritten += 1;
                    stats.reclaimed_bytes += old_bytes.saturating_sub(new_info.bytes);
                    info = new_info;
                    keep.push(info);
                }
                None => {
                    // Nothing live survived the exact pass: delete.
                    std::fs::remove_file(&info.path).map_err(io_err)?;
                    stats.segments_deleted += 1;
                    stats.reclaimed_bytes += old_bytes;
                }
            }
        }
        self.sealed = keep;
        Ok(stats)
    }

    /// Replays every intact frame under `base` into memory. Prefer
    /// [`Wal::replay_iter`] on recovery paths — this convenience loads the
    /// whole log and is meant for tests and small archives.
    pub fn replay(base: impl AsRef<Path>) -> Result<Vec<Entry>> {
        Self::replay_iter(base)?.collect()
    }

    /// Streams every intact frame under `base` in write order, stopping
    /// cleanly at a torn or corrupt tail. Missing files replay as empty (a
    /// maintainer that never persisted anything).
    pub fn replay_iter(base: impl AsRef<Path>) -> Result<WalReplay> {
        WalReplay::new(base.as_ref(), None)
    }

    /// Streams intact frames starting at `pos` (exclusive of everything
    /// before it) — the O(delta) suffix replay after loading a checkpoint.
    pub fn replay_from(base: impl AsRef<Path>, pos: WalPosition) -> Result<WalReplay> {
        WalReplay::new(base.as_ref(), Some(pos))
    }
}

/// Reads and validates the header of `path` if it is a sealed segment.
fn read_sealed_header(path: &Path) -> Result<Option<SegHeader>> {
    let file = File::open(path).map_err(io_err)?;
    let mut reader = BufReader::new(file);
    Ok(skip_header(&mut reader)?.filter(|h| h.sealed))
}

/// Rewrites a sealed segment keeping only live frames; returns the new
/// metadata, or `None` if nothing survived (caller deletes the original).
fn rewrite_segment<F: Fn(LId) -> bool>(
    info: &SegmentInfo,
    is_live: &F,
) -> Result<Option<SegmentInfo>> {
    let file = File::open(&info.path).map_err(io_err)?;
    let mut reader = BufReader::new(file);
    skip_header(&mut reader)?;
    let mut kept: Vec<Entry> = Vec::new();
    loop {
        match read_frame(&mut reader)? {
            FrameStep::Entry(entry, _) => {
                if is_live(entry.lid) {
                    kept.push(*entry);
                }
            }
            FrameStep::Eof | FrameStep::Invalid => break,
        }
    }
    if kept.is_empty() {
        return Ok(None);
    }
    let seq = info.seq.unwrap_or(0);
    let tmp = info.path.with_extension("tmp");
    let mut first = u64::MAX;
    let mut last = 0u64;
    let mut bytes = SEG_HEADER_LEN;
    {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(io_err)?;
        let mut w = BufWriter::new(file);
        // Placeholder header; stamped below once the totals are known.
        w.write_all(&[0u8; SEG_HEADER_LEN as usize])
            .map_err(io_err)?;
        let mut payload = Vec::new();
        for entry in &kept {
            payload.clear();
            encode_entry(entry, &mut payload);
            bytes += write_frame(&mut w, &payload)?;
            first = first.min(entry.lid.0);
            last = last.max(entry.lid.0);
        }
        w.flush().map_err(io_err)?;
        let header = SegHeader {
            sealed: true,
            seq,
            first_lid: first,
            last_lid: last,
            frames: kept.len() as u64,
        };
        let file = w.get_mut();
        file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        file.write_all(&header.encode()).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
    }
    std::fs::rename(&tmp, &info.path).map_err(io_err)?;
    Ok(Some(SegmentInfo {
        seq: info.seq,
        path: info.path.clone(),
        bytes,
        first_lid: Some(LId(first)),
        last_lid: Some(LId(last)),
        frames: kept.len() as u64,
    }))
}

/// Seals an existing segment file in place: stamps its header with the
/// scanned valid-prefix metadata. Headerless (legacy) files are left
/// alone — replay scans them directly.
fn seal_in_place(info: &SegmentInfo) -> Result<()> {
    let Some(seq) = info.seq else { return Ok(()) };
    let mut file = match OpenOptions::new().read(true).write(true).open(&info.path) {
        Ok(f) => f,
        Err(e) => return Err(io_err(e)),
    };
    let mut buf = [0u8; SEG_HEADER_LEN as usize];
    {
        let mut r = BufReader::new(&mut file);
        if !read_exact_or_eof(&mut r, &mut buf)? || SegHeader::decode(&buf).is_none() {
            return Ok(()); // legacy or garbled header: leave as-is
        }
    }
    let header = SegHeader {
        sealed: true,
        seq,
        first_lid: info.first_lid.map_or(u64::MAX, |l| l.0),
        last_lid: info.last_lid.map_or(0, |l| l.0),
        frames: info.frames,
    };
    file.seek(SeekFrom::Start(0)).map_err(io_err)?;
    file.write_all(&header.encode()).map_err(io_err)?;
    file.sync_data().map_err(io_err)?;
    Ok(())
}

/// Creates the numbered segment `seq` with an unsealed header.
fn new_active_segment(base: &Path, seq: u64) -> Result<(BufWriter<File>, u64)> {
    let path = Wal::segment_path(base, seq);
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)
        .map_err(io_err)?;
    let mut writer = BufWriter::new(file);
    let header = SegHeader {
        sealed: false,
        seq,
        first_lid: u64::MAX,
        last_lid: 0,
        frames: 0,
    };
    writer.write_all(&header.encode()).map_err(io_err)?;
    writer.flush().map_err(io_err)?;
    Ok((writer, seq))
}

/// Streaming replay over the segments of one WAL, in write order.
///
/// Yields each intact entry exactly once. A torn/corrupt frame in the
/// final segment ends iteration (crash tail); in an earlier segment it
/// skips to the next segment (that tail predates a reopen — nothing past
/// it was ever acked).
pub struct WalReplay {
    /// Remaining segments, next first.
    segments: std::vec::IntoIter<(Option<u64>, PathBuf)>,
    current: Option<BufReader<File>>,
    /// Whether any segment remains after the current one.
    remaining: usize,
    bytes_read: u64,
    frames: u64,
}

impl WalReplay {
    fn new(base: &Path, from: Option<WalPosition>) -> Result<WalReplay> {
        let mut segs = discover_segments(base)?;
        if let Some(pos) = from {
            segs.retain(|(seq, _)| seq.is_some_and(|s| s >= pos.seq));
        }
        let remaining = segs.len();
        let mut replay = WalReplay {
            segments: segs.into_iter(),
            current: None,
            remaining,
            bytes_read: 0,
            frames: 0,
        };
        replay.advance_segment(from)?;
        Ok(replay)
    }

    /// Opens the next segment, seeking past the header (and, for the very
    /// first segment of a positioned replay, past `pos.offset`).
    fn advance_segment(&mut self, from: Option<WalPosition>) -> Result<bool> {
        let Some((seq, path)) = self.segments.next() else {
            self.current = None;
            return Ok(false);
        };
        self.remaining -= 1;
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.current = None;
                return Ok(false);
            }
            Err(e) => return Err(io_err(e)),
        };
        let mut reader = BufReader::new(file);
        skip_header(&mut reader)?;
        if let Some(pos) = from {
            if seq == Some(pos.seq) {
                reader.seek_relative(pos.offset as i64).map_err(io_err)?;
            }
        }
        self.current = Some(reader);
        Ok(true)
    }

    /// Frame-data bytes consumed so far (headers excluded).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Intact frames yielded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }
}

impl Iterator for WalReplay {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Result<Entry>> {
        loop {
            let reader = self.current.as_mut()?;
            match read_frame(reader) {
                Ok(FrameStep::Entry(entry, bytes)) => {
                    self.bytes_read += bytes;
                    self.frames += 1;
                    return Some(Ok(*entry));
                }
                Ok(FrameStep::Eof) => match self.advance_segment(None) {
                    Ok(true) => continue,
                    Ok(false) => return None,
                    Err(e) => return Some(Err(e)),
                },
                Ok(FrameStep::Invalid) => {
                    if self.remaining == 0 {
                        // Torn/corrupt tail of the final segment: replay
                        // ends at the longest valid prefix.
                        self.current = None;
                        return None;
                    }
                    // Mid-log tear predates a reopen; skip to the next
                    // segment, whose frames are strictly newer.
                    match self.advance_segment(None) {
                        Ok(true) => continue,
                        Ok(false) => return None,
                        Err(e) => return Some(Err(e)),
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(lid: u64, toid: u64) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(1), TOId(toid)),
                VersionVector::from_entries(vec![TOId(3), TOId(toid)]),
                TagSet::new()
                    .with(Tag::with_value("key", "x"))
                    .with(Tag::with_value("seq", 9i64))
                    .with(Tag::key("put")),
                Bytes::from(vec![0xAB; 64]),
            ),
        )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let entry = sample_entry(42, 7);
        let mut buf = Vec::new();
        encode_entry(&entry, &mut buf);
        let back = decode_entry(&buf).expect("decodes");
        assert_eq!(back, entry);
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let entry = sample_entry(1, 1);
        let mut buf = Vec::new();
        encode_entry(&entry, &mut buf);
        for cut in 0..buf.len() {
            assert!(
                decode_entry(&buf[..cut]).is_none(),
                "decoded from a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn seg_header_roundtrip_and_corruption() {
        let h = SegHeader {
            sealed: true,
            seq: 7,
            first_lid: 100,
            last_lid: 250,
            frames: 31,
        };
        let buf = h.encode();
        assert_eq!(SegHeader::decode(&buf), Some(h));
        for i in 0..40 {
            let mut bad = buf;
            bad[i] ^= 0xFF;
            assert!(SegHeader::decode(&bad).is_none(), "flip at {i} accepted");
        }
    }

    #[test]
    fn wal_roundtrips_through_file() {
        let dir = chariots_simnet::TestDir::new("chariots-wal");
        let path = dir.path().join("roundtrip.wal");

        let entries: Vec<Entry> = (0..10).map(|i| sample_entry(i, i + 1)).collect();
        {
            let mut wal = Wal::open(&path).unwrap();
            for e in &entries {
                wal.append(e).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.appended(), 10);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, entries);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let replayed = Wal::replay("/nonexistent/chariots.wal").unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_reads_legacy_flat_file() {
        // A pre-segmentation WAL: raw frames at the base path, no header.
        let dir = chariots_simnet::TestDir::new("chariots-wal-legacy");
        let path = dir.path().join("legacy.wal");
        let entries: Vec<Entry> = (0..3).map(|i| sample_entry(i, i + 1)).collect();
        {
            let mut buf = Vec::new();
            let mut file = File::create(&path).unwrap();
            for e in &entries {
                buf.clear();
                encode_entry(e, &mut buf);
                write_frame(&mut file, &buf).unwrap();
            }
        }
        assert_eq!(Wal::replay(&path).unwrap(), entries);
        // Appending through the segmented WAL keeps the legacy prefix.
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(3, 4)).unwrap();
            wal.sync().unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 4);
        assert_eq!(replayed[3].lid, LId(3));
    }

    #[test]
    fn rotation_splits_log_across_segments() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-rotate");
        let path = dir.path().join("rot.wal");
        let entries: Vec<Entry> = (0..50).map(|i| sample_entry(i, i + 1)).collect();
        {
            // ~150 B frames; rotate every 512 B ⇒ many segments.
            let mut wal = Wal::open_with(&path, 512).unwrap();
            for e in &entries {
                wal.append(e).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segment_count() > 5, "got {}", wal.segment_count());
        }
        assert!(Wal::segment_path(&path, 1).exists());
        assert_eq!(Wal::replay(&path).unwrap(), entries);
    }

    #[test]
    fn sealed_segment_headers_carry_lid_range() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-sealhdr");
        let path = dir.path().join("seal.wal");
        let mut wal = Wal::open_with(&path, 512).unwrap();
        for i in 0..50 {
            wal.append(&sample_entry(i, i + 1)).unwrap();
        }
        wal.sync().unwrap();
        let first_sealed = &wal.sealed[0];
        let h = read_sealed_header(&first_sealed.path)
            .unwrap()
            .expect("sealed");
        assert_eq!(h.seq, 0);
        assert_eq!(Some(LId(h.first_lid)), first_sealed.first_lid);
        assert_eq!(Some(LId(h.last_lid)), first_sealed.last_lid);
        assert_eq!(h.frames, first_sealed.frames);
        assert!(h.first_lid < h.last_lid);
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-torn");
        let path = dir.path().join("torn.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(0, 1)).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        // Tear off the last 5 bytes, as a crash mid-write would.
        let seg = Wal::segment_path(&path, 0);
        let data = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &data[..data.len() - 5]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].lid, LId(0));
    }

    #[test]
    fn replay_stops_at_corrupt_frame_but_keeps_prefix() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-corrupt");
        let path = dir.path().join("corrupt.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(0, 1)).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.append(&sample_entry(2, 3)).unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte in the middle of the second frame's payload.
        let seg = Wal::segment_path(&path, 0);
        let mut data = std::fs::read(&seg).unwrap();
        let hdr = SEG_HEADER_LEN as usize;
        let frame_len = {
            let l = u32::from_le_bytes([data[hdr], data[hdr + 1], data[hdr + 2], data[hdr + 3]])
                as usize;
            8 + l
        };
        data[hdr + frame_len + 20] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact prefix survives");
    }

    #[test]
    fn torn_tail_before_reopen_does_not_mask_newer_segments() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-reopen-tear");
        let path = dir.path().join("tear.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(0, 1)).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        // Crash tears the tail of segment 0…
        let seg = Wal::segment_path(&path, 0);
        let data = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &data[..data.len() - 5]).unwrap();
        // …and the reopened WAL appends into a fresh segment.
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        let lids: Vec<LId> = replayed.iter().map(|e| e.lid).collect();
        assert_eq!(
            lids,
            vec![LId(0), LId(1)],
            "newer segment survives the old tear"
        );
    }

    #[test]
    fn append_after_reopen_extends_log() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-reopen");
        let path = dir.path().join("reopen.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(0, 1)).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2);
    }

    #[test]
    fn replay_from_position_skips_prefix() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-from");
        let path = dir.path().join("from.wal");
        let mut wal = Wal::open_with(&path, 512).unwrap();
        for i in 0..20 {
            wal.append(&sample_entry(i, i + 1)).unwrap();
        }
        wal.flush().unwrap();
        let pos = wal.position();
        for i in 20..30 {
            wal.append(&sample_entry(i, i + 1)).unwrap();
        }
        wal.sync().unwrap();
        let mut it = Wal::replay_from(&path, pos).unwrap();
        let mut lids = Vec::new();
        for r in it.by_ref() {
            lids.push(r.unwrap().lid.0);
        }
        assert_eq!(lids, (20..30).collect::<Vec<u64>>());
        let full = Wal::replay_iter(&path).unwrap().count() as u64;
        assert_eq!(full, 30);
        assert!(it.bytes_read() > 0);
    }

    #[test]
    fn truncate_below_removes_old_segments() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-trunc");
        let path = dir.path().join("trunc.wal");
        let mut wal = Wal::open_with(&path, 512).unwrap();
        for i in 0..50 {
            wal.append(&sample_entry(i, i + 1)).unwrap();
        }
        wal.sync().unwrap();
        let segs = wal.segment_count();
        assert!(segs > 3);
        let cut = wal.position().seq;
        let reclaimed = wal.truncate_below(cut).unwrap();
        assert!(reclaimed > 0);
        assert_eq!(wal.segment_count(), 1);
        assert!(!Wal::segment_path(&path, 0).exists());
        // Replay only sees what the active segment holds (nothing sealed).
        assert!(Wal::replay(&path).unwrap().len() < 50);
    }

    #[test]
    fn compaction_deletes_dead_and_rewrites_straddling_segments() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-compact");
        let path = dir.path().join("compact.wal");
        let mut wal = Wal::open_with(&path, 512).unwrap();
        for i in 0..60 {
            wal.append(&sample_entry(i, i + 1)).unwrap();
        }
        wal.sync().unwrap();
        let before = wal.disk_bytes();
        let sealed_before = wal.sealed.len();
        assert!(sealed_before >= 3);
        // Everything below 55 is dead: most segments die outright, the one
        // straddling 55 is rewritten.
        let bound = LId(55);
        let stats = wal.compact(bound, 1000, |lid| lid >= bound).unwrap();
        assert!(stats.segments_deleted > 0, "{stats:?}");
        assert!(stats.reclaimed_bytes > 0);
        assert!(wal.disk_bytes() < before);
        // Replay yields exactly the live suffix, still in order.
        let lids: Vec<u64> = Wal::replay(&path)
            .unwrap()
            .iter()
            .map(|e| e.lid.0)
            .collect();
        assert_eq!(lids, (55..60).collect::<Vec<u64>>());
    }

    #[test]
    fn compaction_skips_protected_segments() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-protect");
        let path = dir.path().join("protect.wal");
        let mut wal = Wal::open_with(&path, 512).unwrap();
        for i in 0..40 {
            wal.append(&sample_entry(i, i + 1)).unwrap();
        }
        wal.sync().unwrap();
        let protected_seq = wal.sealed[0].seq.unwrap();
        wal.set_protected([protected_seq]);
        let stats = wal.compact(LId(1_000), 1000, |_| false).unwrap();
        assert!(stats.segments_deleted > 0);
        assert!(
            Wal::segment_path(&path, protected_seq).exists(),
            "protected segment survived"
        );
    }

    #[test]
    fn compaction_respects_live_fraction_threshold() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-frac");
        let path = dir.path().join("frac.wal");
        let mut wal = Wal::open_with(&path, 4096).unwrap();
        for i in 0..20 {
            wal.append(&sample_entry(i, i + 1)).unwrap();
        }
        wal.sync().unwrap();
        // Force a seal so there is one sealed segment spanning 0..19.
        wal.rotate().unwrap();
        // Bound kills 25% of the range; with a 50% threshold the segment
        // is still live enough to leave alone.
        let stats = wal.compact(LId(5), 500, |lid| lid >= LId(5)).unwrap();
        assert!(stats.is_empty(), "{stats:?}");
        // With a 90% threshold it gets rewritten.
        let stats = wal.compact(LId(5), 900, |lid| lid >= LId(5)).unwrap();
        assert_eq!(stats.segments_rewritten, 1);
        let lids: Vec<u64> = Wal::replay(&path)
            .unwrap()
            .iter()
            .map(|e| e.lid.0)
            .collect();
        assert_eq!(lids, (5..20).collect::<Vec<u64>>());
    }

    mod torn_tail {
        use super::*;
        use proptest::prelude::*;

        /// Byte offset (within the segment's frame data) at which each
        /// frame ends, given the entries written.
        fn frame_ends(entries: &[Entry]) -> Vec<usize> {
            let mut ends = Vec::with_capacity(entries.len());
            let mut pos = 0usize;
            let mut buf = Vec::new();
            for e in entries {
                buf.clear();
                encode_entry(e, &mut buf);
                pos += 8 + buf.len();
                ends.push(pos);
            }
            ends
        }

        proptest! {
            /// Crash-consistency contract (§5.2 durability): whatever a
            /// crash does to the active segment's tail — truncation
            /// mid-frame or a flipped byte — replay returns *exactly* the
            /// longest prefix of intact frames, never a partial or
            /// corrupted record.
            #[test]
            fn replay_yields_longest_valid_prefix(
                n in 1usize..16,
                cut_frac in 0.0f64..1.0,
                flip in proptest::bool::ANY,
            ) {
                let dir = chariots_simnet::TestDir::new("chariots-wal-prop");
                let path = dir.path().join("prop.wal");
                let entries: Vec<Entry> =
                    (0..n as u64).map(|i| sample_entry(i, i + 1)).collect();
                {
                    let mut wal = Wal::open(&path).unwrap();
                    for e in &entries {
                        wal.append(e).unwrap();
                    }
                    wal.sync().unwrap();
                }
                let seg = Wal::segment_path(&path, 0);
                let hdr = SEG_HEADER_LEN as usize;
                let ends = frame_ends(&entries);
                let total = *ends.last().unwrap();
                prop_assert_eq!(
                    std::fs::metadata(&seg).unwrap().len() as usize,
                    hdr + total
                );
                let cut = ((total as f64) * cut_frac) as usize;
                let expected = if flip {
                    // Flip one frame-data byte: the frame containing it
                    // fails its CRC (or decodes as garbage), ending replay
                    // there.
                    let mut data = std::fs::read(&seg).unwrap();
                    let target = cut.min(total - 1);
                    data[hdr + target] ^= 0xFF;
                    std::fs::write(&seg, &data).unwrap();
                    ends.iter().position(|&e| e > target).unwrap()
                } else {
                    // Truncate: only frames wholly below the cut survive.
                    let data = std::fs::read(&seg).unwrap();
                    std::fs::write(&seg, &data[..hdr + cut]).unwrap();
                    ends.iter().take_while(|&&e| e <= cut).count()
                };
                let replayed = Wal::replay(&path).unwrap();
                prop_assert_eq!(&replayed[..], &entries[..expected]);
            }

            /// The same contract across a *segment boundary*: with small
            /// segments, tearing the final segment mid-frame discards
            /// exactly its tail — every earlier segment replays clean.
            #[test]
            fn segment_boundary_tear_discards_only_final_tail(
                n in 8usize..32,
                cut_frac in 0.0f64..1.0,
            ) {
                let dir = chariots_simnet::TestDir::new("chariots-wal-prop-seg");
                let path = dir.path().join("prop-seg.wal");
                let entries: Vec<Entry> =
                    (0..n as u64).map(|i| sample_entry(i, i + 1)).collect();
                let (last_seq, frames_before_last) = {
                    // ~150 B frames; 400 B segments ⇒ several boundaries.
                    let mut wal = Wal::open_with(&path, 400).unwrap();
                    for e in &entries {
                        wal.append(e).unwrap();
                    }
                    wal.sync().unwrap();
                    let before: u64 = wal.sealed.iter().map(|s| s.frames).sum();
                    (wal.position().seq, before as usize)
                };
                prop_assert!(last_seq > 0, "workload must cross a boundary");
                // Tear the *final* segment mid-frame.
                let seg = Wal::segment_path(&path, last_seq);
                let hdr = SEG_HEADER_LEN as usize;
                let tail = &entries[frames_before_last..];
                let ends = frame_ends(tail);
                let total = ends.last().copied().unwrap_or(0);
                let cut = ((total as f64) * cut_frac) as usize;
                let data = std::fs::read(&seg).unwrap();
                std::fs::write(&seg, &data[..hdr + cut]).unwrap();
                let survivors = ends.iter().take_while(|&&e| e <= cut).count();
                let replayed = Wal::replay(&path).unwrap();
                // Segments 0..last replay clean; the final segment keeps
                // exactly its longest valid prefix.
                prop_assert_eq!(
                    &replayed[..],
                    &entries[..frames_before_last + survivors]
                );
            }
        }
    }
}
