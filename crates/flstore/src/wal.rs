//! Write-ahead persistence for log maintainers.
//!
//! Maintainers "are responsible for persisting the log's records" (§5.2).
//! Each maintainer owns one append-only WAL file holding its entries in the
//! order they were stored. Frames are length-prefixed and CRC-32 protected;
//! recovery replays frames until end-of-file or the first torn/corrupt
//! frame, which tolerates a crash mid-write.
//!
//! The codec is hand-rolled: the format is tiny, stable, and has no reason
//! to pull a serialization framework into the storage path.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use chariots_types::{
    ChariotsError, DatacenterId, Entry, LId, Record, RecordId, Result, TOId, Tag, TagSet, TagValue,
    VersionVector,
};

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Computes the CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn io_err(e: std::io::Error) -> ChariotsError {
    ChariotsError::Storage(e.to_string())
}

/// Serializes one entry into the WAL payload format.
fn encode_entry(entry: &Entry, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&entry.lid.0.to_le_bytes());
    buf.extend_from_slice(&entry.record.host().0.to_le_bytes());
    buf.extend_from_slice(&entry.record.toid().0.to_le_bytes());

    let deps: Vec<u64> = entry.record.deps.iter().map(|(_, t)| t.0).collect();
    buf.extend_from_slice(&(deps.len() as u16).to_le_bytes());
    for d in deps {
        buf.extend_from_slice(&d.to_le_bytes());
    }

    buf.extend_from_slice(&(entry.record.tags.len() as u16).to_le_bytes());
    for tag in entry.record.tags.iter() {
        buf.extend_from_slice(&(tag.key.len() as u16).to_le_bytes());
        buf.extend_from_slice(tag.key.as_bytes());
        match &tag.value {
            None => buf.push(0),
            Some(TagValue::Int(i)) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Some(TagValue::Str(s)) => {
                buf.push(2);
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
        }
    }

    buf.extend_from_slice(&(entry.record.body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&entry.record.body);
}

/// Cursor-based reader over a decoded payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }
}

/// Deserializes one entry from a WAL payload. Returns `None` on any
/// malformation (the caller treats it as a torn tail).
fn decode_entry(payload: &[u8]) -> Option<Entry> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let lid = LId(c.u64()?);
    let host = DatacenterId(c.u16()?);
    let toid = TOId(c.u64()?);

    let deps_len = c.u16()? as usize;
    let mut deps = Vec::with_capacity(deps_len);
    for _ in 0..deps_len {
        deps.push(TOId(c.u64()?));
    }

    let tag_count = c.u16()? as usize;
    let mut tags = TagSet::new();
    for _ in 0..tag_count {
        let key_len = c.u16()? as usize;
        let key = std::str::from_utf8(c.take(key_len)?).ok()?.to_owned();
        let value = match *c.take(1)?.first()? {
            0 => None,
            1 => Some(TagValue::Int(c.i64()?)),
            2 => {
                let len = c.u32()? as usize;
                Some(TagValue::Str(
                    std::str::from_utf8(c.take(len)?).ok()?.to_owned(),
                ))
            }
            _ => return None,
        };
        tags.push(Tag { key, value });
    }

    let body_len = c.u32()? as usize;
    let body = Bytes::copy_from_slice(c.take(body_len)?);
    if c.pos != payload.len() {
        return None; // trailing garbage
    }
    Some(Entry::new(
        lid,
        Record::new(
            RecordId::new(host, toid),
            VersionVector::from_entries(deps),
            tags,
            body,
        ),
    ))
}

/// An append-only, CRC-protected write-ahead log of entries.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    appended: u64,
    synced: u64,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            appended: 0,
            synced: 0,
        })
    }

    /// Appends one entry frame.
    pub fn append(&mut self, entry: &Entry) -> Result<()> {
        let mut payload = Vec::with_capacity(64 + entry.record.body.len());
        encode_entry(entry, &mut payload);
        let crc = crc32(&payload);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())
            .and_then(|_| self.writer.write_all(&crc.to_le_bytes()))
            .and_then(|_| self.writer.write_all(&payload))
            .map_err(io_err)?;
        self.appended += 1;
        Ok(())
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush().map_err(io_err)
    }

    /// Flushes and fsyncs (durability point).
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.writer.get_ref().sync_data().map_err(io_err)?;
        self.synced = self.appended;
        Ok(())
    }

    /// Number of frames appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Number of frames covered by the last successful `sync`.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Frames appended but not yet covered by a successful `sync`.
    pub fn unsynced(&self) -> u64 {
        self.appended - self.synced
    }

    /// The file backing this WAL.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replays every intact frame in `path`, stopping cleanly at a torn or
    /// corrupt tail. Missing files replay as empty (a maintainer that never
    /// persisted anything).
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<Entry>> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(e)),
        };
        let mut reader = BufReader::new(file);
        let mut entries = Vec::new();
        loop {
            let mut header = [0u8; 8];
            match reader.read_exact(&mut header) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(io_err(e)),
            }
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            // Cap against absurd lengths from a corrupt header.
            if len > 1 << 30 {
                break;
            }
            let mut payload = vec![0u8; len];
            match reader.read_exact(&mut payload) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break, // torn tail
                Err(e) => return Err(io_err(e)),
            }
            if crc32(&payload) != crc {
                break; // corrupt frame: stop replay here
            }
            match decode_entry(&payload) {
                Some(entry) => entries.push(entry),
                None => break,
            }
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(lid: u64, toid: u64) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(1), TOId(toid)),
                VersionVector::from_entries(vec![TOId(3), TOId(toid)]),
                TagSet::new()
                    .with(Tag::with_value("key", "x"))
                    .with(Tag::with_value("seq", 9i64))
                    .with(Tag::key("put")),
                Bytes::from(vec![0xAB; 64]),
            ),
        )
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let entry = sample_entry(42, 7);
        let mut buf = Vec::new();
        encode_entry(&entry, &mut buf);
        let back = decode_entry(&buf).expect("decodes");
        assert_eq!(back, entry);
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let entry = sample_entry(1, 1);
        let mut buf = Vec::new();
        encode_entry(&entry, &mut buf);
        for cut in 0..buf.len() {
            assert!(
                decode_entry(&buf[..cut]).is_none(),
                "decoded from a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn wal_roundtrips_through_file() {
        let dir = chariots_simnet::TestDir::new("chariots-wal");
        let path = dir.path().join("roundtrip.wal");

        let entries: Vec<Entry> = (0..10).map(|i| sample_entry(i, i + 1)).collect();
        {
            let mut wal = Wal::open(&path).unwrap();
            for e in &entries {
                wal.append(e).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.appended(), 10);
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed, entries);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let replayed = Wal::replay("/nonexistent/chariots.wal").unwrap();
        assert!(replayed.is_empty());
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-torn");
        let path = dir.path().join("torn.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(0, 1)).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        // Tear off the last 5 bytes, as a crash mid-write would.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].lid, LId(0));
    }

    #[test]
    fn replay_stops_at_corrupt_frame_but_keeps_prefix() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-corrupt");
        let path = dir.path().join("corrupt.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(0, 1)).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.append(&sample_entry(2, 3)).unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte in the middle of the second frame's payload.
        let mut data = std::fs::read(&path).unwrap();
        let frame_len = {
            let l = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
            8 + l
        };
        data[frame_len + 20] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact prefix survives");
    }

    #[test]
    fn append_after_reopen_extends_log() {
        let dir = chariots_simnet::TestDir::new("chariots-wal-reopen");
        let path = dir.path().join("reopen.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(0, 1)).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&sample_entry(1, 2)).unwrap();
            wal.sync().unwrap();
        }
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 2);
    }

    mod torn_tail {
        use super::*;
        use proptest::prelude::*;

        /// Byte offset at which each frame ends, given the entries written.
        fn frame_ends(entries: &[Entry]) -> Vec<usize> {
            let mut ends = Vec::with_capacity(entries.len());
            let mut pos = 0usize;
            let mut buf = Vec::new();
            for e in entries {
                buf.clear();
                encode_entry(e, &mut buf);
                pos += 8 + buf.len();
                ends.push(pos);
            }
            ends
        }

        proptest! {
            /// Crash-consistency contract (§5.2 durability): whatever a
            /// crash does to the file's tail — truncation mid-frame or a
            /// flipped byte — replay returns *exactly* the longest prefix
            /// of intact frames, never a partial or corrupted record.
            #[test]
            fn replay_yields_longest_valid_prefix(
                n in 1usize..16,
                cut_frac in 0.0f64..1.0,
                flip in proptest::bool::ANY,
            ) {
                let dir = chariots_simnet::TestDir::new("chariots-wal-prop");
                let path = dir.path().join("prop.wal");
                let entries: Vec<Entry> =
                    (0..n as u64).map(|i| sample_entry(i, i + 1)).collect();
                {
                    let mut wal = Wal::open(&path).unwrap();
                    for e in &entries {
                        wal.append(e).unwrap();
                    }
                    wal.sync().unwrap();
                }
                let ends = frame_ends(&entries);
                let total = *ends.last().unwrap();
                prop_assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, total);
                let cut = ((total as f64) * cut_frac) as usize;
                let expected = if flip {
                    // Flip one byte: the frame containing it fails its CRC
                    // (or decodes as garbage), ending replay there.
                    let mut data = std::fs::read(&path).unwrap();
                    let target = cut.min(total - 1);
                    data[target] ^= 0xFF;
                    std::fs::write(&path, &data).unwrap();
                    ends.iter().position(|&e| e > target).unwrap()
                } else {
                    // Truncate: only frames wholly below the cut survive.
                    let data = std::fs::read(&path).unwrap();
                    std::fs::write(&path, &data[..cut]).unwrap();
                    ends.iter().take_while(|&&e| e <= cut).count()
                };
                let replayed = Wal::replay(&path).unwrap();
                prop_assert_eq!(&replayed[..], &entries[..expected]);
            }
        }
    }
}
