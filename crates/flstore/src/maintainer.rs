//! The log maintainer: post-assignment of log positions (§5.2).
//!
//! "The thesis of a post-assignment approach is to let the application
//! client construct the record and send it to a randomly (or intelligibly)
//! selected Log maintainer. The Log maintainer will assign the record the
//! next available log position from log positions under its control."
//!
//! [`MaintainerCore`] is the synchronous, single-threaded state machine —
//! everything is testable without spawning anything. The thread-hosted
//! server wrapper lives in [`node`](crate::node).

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bytes::Bytes;
use chariots_simnet::Counter;
use chariots_types::{
    ChariotsError, DatacenterId, Entry, LId, MaintainerId, Record, RecordId, Result, TOId, TagSet,
    VersionVector, WalSyncPolicy, Wire, WireReader,
};

use crate::epoch::EpochJournal;
use crate::gossip::HlVector;
use crate::segment::SegmentStore;
use crate::wal::{crc32, decode_entry, encode_entry, CompactionStats, Wal, WalPosition};

/// What an application client sends to append: tags plus the opaque body.
/// The maintainer constructs the full [`Record`] — identity included —
/// because under post-assignment the position (and hence, in standalone
/// FLStore, the total order) is not known until the maintainer picks it.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendPayload {
    /// System-visible tags to index.
    pub tags: TagSet,
    /// Opaque application payload.
    pub body: Bytes,
}

impl AppendPayload {
    /// Creates a payload.
    pub fn new(tags: TagSet, body: impl Into<Bytes>) -> Self {
        AppendPayload {
            tags,
            body: body.into(),
        }
    }
}

impl Wire for AppendPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.tags.encode(buf);
        self.body.encode(buf);
    }

    fn decode(r: &mut WireReader) -> Option<Self> {
        Some(AppendPayload {
            tags: TagSet::decode(r)?,
            body: Bytes::decode(r)?,
        })
    }
}

/// Per-epoch storage and append cursor.
#[derive(Debug)]
struct EpochState {
    store: SegmentStore,
    /// Next local slot this maintainer will self-assign in this epoch.
    next_local: u64,
}

impl EpochState {
    fn new() -> Self {
        EpochState {
            store: SegmentStore::default(),
            next_local: 0,
        }
    }
}

/// A record waiting for its explicit-order minimum bound (§5.4).
#[derive(Debug)]
struct MinBoundWaiter {
    payload: AppendPayload,
    min: LId,
}

/// How the last [`MaintainerCore::with_wal`] recovery went: whether a
/// checkpoint cut the replay short, and how much work the replay was.
/// This is the signal the `recovery` bench measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Whether a valid checkpoint was loaded (current or previous).
    pub used_checkpoint: bool,
    /// Entries restored from the checkpoint snapshot.
    pub checkpoint_entries: u64,
    /// On-disk size of the loaded checkpoint file.
    pub checkpoint_bytes: u64,
    /// WAL frames replayed (the suffix past the checkpoint, or everything).
    pub replayed_frames: u64,
    /// WAL frame bytes read during replay.
    pub replayed_bytes: u64,
}

/// Point-in-time storage footprint of one maintainer, for the
/// `flstore.storage.*` gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// Live WAL segment files (sealed + active).
    pub segments: u64,
    /// Total bytes across the live WAL segment files.
    pub disk_bytes: u64,
    /// Payload bytes of live entries resident in memory.
    pub live_bytes: u64,
}

/// Result of one [`MaintainerCore::checkpoint`]: what was snapshotted and
/// what the accompanying WAL truncation reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// The durable frontier captured by the checkpoint.
    pub upto: LId,
    /// Entries snapshotted.
    pub entries: u64,
    /// On-disk size of the checkpoint file.
    pub bytes: u64,
    /// WAL bytes reclaimed by truncating segments the previous checkpoint
    /// already covers.
    pub reclaimed_bytes: u64,
}

fn io_err(e: std::io::Error) -> ChariotsError {
    ChariotsError::Storage(e.to_string())
}

/// Checkpoint file header: magic, version, reserved, body length, body CRC.
const CKPT_MAGIC: [u8; 4] = *b"CCKP";
const CKPT_VERSION: u16 = 1;
const CKPT_HEADER_LEN: usize = 20;

fn ckpt_path(base: &Path, suffix: &str) -> PathBuf {
    let mut name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(suffix);
    base.with_file_name(name)
}

/// Parsed checkpoint contents.
struct CheckpointData {
    /// Per-epoch GC floors (local-index space), index = epoch.
    gc_floors: Vec<u64>,
    /// The WAL position the snapshot covers: replay resumes here.
    wal_pos: WalPosition,
    /// Snapshotted live entries.
    entries: Vec<Entry>,
    /// On-disk size of the checkpoint file.
    file_bytes: u64,
}

/// Loads and validates the checkpoint at `path`. Any malformation —
/// missing file, bad magic, wrong version, truncation, CRC mismatch,
/// undecodable entry — yields `None`: the caller falls back to the
/// previous checkpoint or a full replay, never to partial state.
fn load_checkpoint(path: &Path) -> Option<CheckpointData> {
    let data = std::fs::read(path).ok()?;
    if data.len() < CKPT_HEADER_LEN || data[0..4] != CKPT_MAGIC {
        return None;
    }
    if u16::from_le_bytes([data[4], data[5]]) != CKPT_VERSION {
        return None;
    }
    let body_len = u64::from_le_bytes(data[8..16].try_into().ok()?) as usize;
    let body_crc = u32::from_le_bytes(data[16..20].try_into().ok()?);
    let body = data.get(CKPT_HEADER_LEN..CKPT_HEADER_LEN + body_len)?;
    if crc32(body) != body_crc {
        return None;
    }
    struct BodyCursor<'a> {
        body: &'a [u8],
        pos: usize,
    }
    impl<'a> BodyCursor<'a> {
        fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            let s = self.body.get(self.pos..self.pos.checked_add(n)?)?;
            self.pos += n;
            Some(s)
        }
        fn u16(&mut self) -> Option<u16> {
            self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
        }
        fn u32(&mut self) -> Option<u32> {
            self.take(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        }
        fn u64(&mut self) -> Option<u64> {
            self.take(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        }
    }
    let mut c = BodyCursor { body, pos: 0 };
    let epoch_count = c.u16()? as usize;
    let mut gc_floors = Vec::with_capacity(epoch_count);
    for _ in 0..epoch_count {
        gc_floors.push(c.u64()?);
    }
    let wal_pos = WalPosition {
        seq: c.u64()?,
        offset: c.u64()?,
    };
    let entry_count = c.u64()? as usize;
    let mut entries = Vec::with_capacity(entry_count.min(1 << 20));
    for _ in 0..entry_count {
        let len = c.u32()? as usize;
        let payload = c.take(len)?;
        entries.push(decode_entry(payload)?);
    }
    if c.pos != body.len() {
        return None; // trailing garbage
    }
    Some(CheckpointData {
        gc_floors,
        wal_pos,
        entries,
        file_bytes: data.len() as u64,
    })
}

/// Counters exposed for diagnostics and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintainerStats {
    /// Records appended via post-assignment.
    pub appended: u64,
    /// Entries stored with pre-routed positions (Chariots queues).
    pub stored: u64,
    /// Reads served.
    pub reads: u64,
    /// Records currently parked awaiting a minimum bound.
    pub deferred: usize,
    /// This maintainer's current frontier.
    pub frontier: LId,
    /// The frontier as of the last successful durability point — every
    /// owned position below it is both filled and fsynced.
    pub durable_frontier: LId,
    /// This maintainer's current view of the Head of the Log.
    pub head_of_log: LId,
}

/// The synchronous state machine of one log maintainer.
#[derive(Debug)]
pub struct MaintainerCore {
    id: MaintainerId,
    dc: DatacenterId,
    journal: EpochJournal,
    /// Index i holds state for epoch i; grown lazily.
    epochs: Vec<EpochState>,
    /// Cursor: the epoch in which the next self-assigned append lands.
    append_epoch: usize,
    hl: HlVector,
    wal: Option<Wal>,
    /// When the WAL is fsynced on the apply path; see
    /// [`MaintainerCore::sync_batch`].
    sync_policy: WalSyncPolicy,
    /// Counts WAL fsyncs (shared with the node's metrics registry as
    /// `flstore.wal.sync.count`).
    wal_syncs: Counter,
    /// The frontier as of the last successful durability point; feeds the
    /// pipelined-commit tracker and failover watermarks.
    durable: LId,
    /// Fault-injection hook: added latency paid inside every durability
    /// point (tests use it to widen the fsync window).
    sync_delay: Option<Duration>,
    /// WAL segment rotation threshold; applied when `with_wal` opens the
    /// log, so it must be configured first.
    wal_segment_bytes: u64,
    /// Compaction live-ratio threshold in thousandths (0 disables
    /// rewrites; fully dead segments are still deleted).
    compact_live_frac_milli: u32,
    /// Checkpoint cadence for [`MaintainerCore::maybe_checkpoint`];
    /// `Duration::ZERO` disables.
    checkpoint_interval: Duration,
    last_checkpoint: Instant,
    /// WAL segment seqs anchoring the current and previous checkpoints
    /// (protected from compaction; truncation keeps everything from the
    /// previous one up so fallback recovery always finds its suffix).
    cur_ckpt_seq: Option<u64>,
    prev_ckpt_seq: Option<u64>,
    /// How the last recovery went (zeroed for a fresh core).
    recovery: RecoveryStats,
    /// Highest GC bound applied so far (gates repeat sweeps).
    last_gc_bound: LId,
    /// Compaction sweeps that changed anything (shared with the node's
    /// registry as `flstore.storage.compactions`).
    compactions: Counter,
    /// Disk bytes reclaimed by compaction + checkpoint truncation
    /// (`flstore.storage.reclaimed_bytes`).
    reclaimed: Counter,
    deferred: Vec<MinBoundWaiter>,
    max_deferred: usize,
    /// Entries built for drained min-bound waiters since the last
    /// [`MaintainerCore::take_drained`] — the node replicates these to its
    /// backups (they bypass the normal append reply path).
    drained: Vec<Entry>,
    stats_appended: u64,
    stats_stored: u64,
    stats_reads: u64,
}

impl MaintainerCore {
    /// Creates a maintainer with empty storage.
    pub fn new(id: MaintainerId, dc: DatacenterId, journal: EpochJournal) -> Self {
        let n = journal.current().map.num_maintainers();
        let hl = HlVector::new(n);
        let mut core = MaintainerCore {
            id,
            dc,
            journal,
            epochs: vec![EpochState::new()],
            append_epoch: 0,
            hl,
            wal: None,
            sync_policy: WalSyncPolicy::default(),
            wal_syncs: Counter::new(),
            durable: LId::ZERO,
            sync_delay: None,
            wal_segment_bytes: crate::wal::DEFAULT_SEGMENT_BYTES,
            compact_live_frac_milli: 500,
            checkpoint_interval: Duration::ZERO,
            last_checkpoint: Instant::now(),
            cur_ckpt_seq: None,
            prev_ckpt_seq: None,
            recovery: RecoveryStats::default(),
            last_gc_bound: LId::ZERO,
            compactions: Counter::new(),
            reclaimed: Counter::new(),
            deferred: Vec::new(),
            max_deferred: 65_536,
            drained: Vec::new(),
            stats_appended: 0,
            stats_stored: 0,
            stats_reads: 0,
        };
        // A fresh maintainer's frontier is its first owned slot, not zero:
        // it is not blocking any position below that slot.
        core.refresh_own_frontier();
        core.durable = core.frontier();
        core
    }

    /// Bounds the explicit-order deferral buffer.
    pub fn with_max_deferred(mut self, max: usize) -> Self {
        self.max_deferred = max;
        self
    }

    /// Selects when the WAL is flushed+fsynced on the apply path.
    pub fn with_sync_policy(mut self, policy: WalSyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Shares the WAL fsync counter (e.g. a registry-backed
    /// `flstore.wal.sync.count`) so syncs are observable.
    pub fn with_wal_sync_counter(mut self, counter: Counter) -> Self {
        self.wal_syncs = counter;
        self
    }

    /// Fault injection: pays `delay` inside every durability point. Tests
    /// use it to hold a replica's fsync open while others race ahead.
    pub fn with_sync_delay(mut self, delay: Duration) -> Self {
        self.sync_delay = Some(delay);
        self
    }

    /// Sets the WAL segment rotation threshold. Must be called before
    /// [`MaintainerCore::with_wal`] to take effect.
    pub fn with_wal_segment_bytes(mut self, bytes: u64) -> Self {
        self.wal_segment_bytes = bytes.max(1);
        self
    }

    /// Sets the compaction live-ratio threshold in thousandths (see
    /// `FLStoreConfig::compact_live_frac`).
    pub fn with_compact_live_frac_milli(mut self, milli: u32) -> Self {
        self.compact_live_frac_milli = milli.min(1000);
        self
    }

    /// Sets the cadence of [`MaintainerCore::maybe_checkpoint`]
    /// (`Duration::ZERO` disables periodic checkpoints).
    pub fn with_checkpoint_interval(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Shares the storage-maintenance counters (registry-backed
    /// `flstore.storage.compactions` / `flstore.storage.reclaimed_bytes`).
    pub fn with_storage_counters(mut self, compactions: Counter, reclaimed: Counter) -> Self {
        self.compactions = compactions;
        self.reclaimed = reclaimed;
        self
    }

    /// Enables write-ahead persistence at `path`, recovering any existing
    /// state first: the latest valid checkpoint (falling back to the
    /// previous one, then to nothing, on corruption) plus a streamed
    /// replay of the WAL suffix the checkpoint does not cover — O(delta
    /// since checkpoint), not O(log). [`MaintainerCore::recovery_stats`]
    /// reports how the recovery went.
    pub fn with_wal(mut self, path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut stats = RecoveryStats::default();
        // Newest checkpoint first; a bad CRC (or any malformation) falls
        // back to the double-buffered previous snapshot, never to a
        // half-applied state.
        let checkpoint = load_checkpoint(&ckpt_path(&path, ".ckpt"))
            .or_else(|| load_checkpoint(&ckpt_path(&path, ".ckpt.prev")));
        let replay_from = match checkpoint {
            Some(ckpt) => {
                stats.used_checkpoint = true;
                stats.checkpoint_entries = ckpt.entries.len() as u64;
                stats.checkpoint_bytes = ckpt.file_bytes;
                // Floors first: a restored floor must reject stale WAL
                // frames below it during the suffix replay.
                for (i, floor) in ckpt.gc_floors.iter().enumerate() {
                    self.epoch_state(i).store.gc_before(*floor);
                }
                for entry in ckpt.entries {
                    self.apply_recovered(entry)?;
                }
                self.cur_ckpt_seq = Some(ckpt.wal_pos.seq);
                self.prev_ckpt_seq = Some(ckpt.wal_pos.seq);
                Some(ckpt.wal_pos)
            }
            None => None,
        };
        let mut replay = match replay_from {
            Some(pos) => Wal::replay_from(&path, pos)?,
            None => Wal::replay_iter(&path)?,
        };
        for entry in replay.by_ref() {
            // Last-wins: a replica's WAL may hold a newer frame for a slot
            // it first learned via replication and later saw repaired.
            self.apply_recovered(entry?)?;
        }
        stats.replayed_frames = replay.frames();
        stats.replayed_bytes = replay.bytes_read();
        self.recovery = stats;
        // Self-assignment resumes after the densest filled prefix of each
        // epoch (appends are dense per epoch, so the prefix is exact).
        for (i, state) in self.epochs.iter_mut().enumerate() {
            let _ = i;
            state.next_local = state.store.filled_prefix();
        }
        self.refresh_own_frontier();
        // Replayed entries were durable before the restart.
        self.durable = self.frontier();
        let mut wal = Wal::open_with(path, self.wal_segment_bytes)?;
        wal.set_protected(self.cur_ckpt_seq.iter().chain(&self.prev_ckpt_seq).copied());
        self.wal = Some(wal);
        Ok(self)
    }

    /// Applies one recovered entry (checkpoint snapshot or WAL frame),
    /// overwriting any occupant. Positions below a restored GC floor are
    /// skipped — the floor is authoritative, the stale frame is not.
    fn apply_recovered(&mut self, entry: Entry) -> Result<()> {
        match self.locate_and_apply(entry, false, true) {
            Ok(_) | Err(ChariotsError::GarbageCollected(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// This maintainer's id.
    pub fn id(&self) -> MaintainerId {
        self.id
    }

    /// The datacenter this maintainer serves.
    pub fn datacenter(&self) -> DatacenterId {
        self.dc
    }

    /// Read-only view of the epoch journal.
    pub fn journal(&self) -> &EpochJournal {
        &self.journal
    }

    fn epoch_state(&mut self, epoch_idx: usize) -> &mut EpochState {
        while self.epochs.len() <= epoch_idx {
            self.epochs.push(EpochState::new());
        }
        &mut self.epochs[epoch_idx]
    }

    /// The global position the next self-assigned append would take,
    /// without consuming it.
    ///
    /// Fails with [`ChariotsError::Unavailable`] if this maintainer owns no
    /// assignable positions — e.g. a freshly added maintainer whose future
    /// reassignment has not been announced to it yet.
    pub fn peek_next_lid(&mut self) -> Result<LId> {
        loop {
            let epoch_idx = self.append_epoch;
            let epoch = chariots_types::Epoch(epoch_idx as u32);
            let next_local = self.epoch_state(epoch_idx).next_local;
            let assignment = *self
                .journal
                .by_epoch(epoch)
                .expect("append_epoch within journal");
            let member = self.id.index() < assignment.map.num_maintainers();
            let exhausted = match self.journal.slots_in_epoch(epoch, self.id) {
                Some(cap) => next_local >= cap,
                // Unbounded (current) epoch: exhausted only if we are not
                // part of its striping.
                None => !member,
            };
            if exhausted {
                if self
                    .journal
                    .by_epoch(chariots_types::Epoch(epoch_idx as u32 + 1))
                    .is_none()
                {
                    return Err(ChariotsError::Unavailable(format!(
                        "maintainer {} owns no assignable positions yet",
                        self.id
                    )));
                }
                // This epoch's slots are exhausted; move on.
                self.append_epoch += 1;
                continue;
            }
            return Ok(assignment.lid_for(self.id, next_local));
        }
    }

    fn take_next_lid(&mut self) -> Result<LId> {
        let lid = self.peek_next_lid()?;
        self.epoch_state(self.append_epoch).next_local += 1;
        Ok(lid)
    }

    /// Appends payloads with post-assigned positions, returning the built
    /// [`Entry`]s — each carries the `(TOId, LId)` pair "sent back to the
    /// Application client" (§3) plus the full record, so callers (the node's
    /// group-commit path in particular) can reply *and* replicate without
    /// re-reading every position out of the store.
    ///
    /// In standalone FLStore the datacenter's total order *is* the log
    /// order, so the assigned `TOId` is `LId + 1` (TOIds are 1-based).
    pub fn append_batch(&mut self, payloads: Vec<AppendPayload>) -> Result<Vec<Entry>> {
        let mut appended = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let lid = self.take_next_lid()?;
            let toid = TOId(lid.0 + 1);
            let record = Record::new(
                RecordId::new(self.dc, toid),
                VersionVector::new(0),
                payload.tags,
                payload.body,
            );
            let entry = Entry::new(lid, record);
            self.locate_and_apply(entry.clone(), true, false)?;
            self.stats_appended += 1;
            appended.push(entry);
        }
        self.drain_deferred()?;
        Ok(appended)
    }

    /// Appends one payload subject to an explicit-order minimum bound: the
    /// assigned position is guaranteed to exceed `min` (§5.4). Returns the
    /// built entry if the append could happen immediately, or `Ok(None)` if
    /// the record was parked ("buffered until it can be added to a partial
    /// log with LIds larger than the minimum bound").
    pub fn append_min_bound(&mut self, payload: AppendPayload, min: LId) -> Result<Option<Entry>> {
        if self.peek_next_lid()? > min {
            let mut out = self.append_batch(vec![payload])?;
            return Ok(Some(out.pop().expect("one payload appended")));
        }
        if self.deferred.len() >= self.max_deferred {
            return Err(ChariotsError::Overloaded(format!(
                "maintainer {} min-bound buffer",
                self.id
            )));
        }
        self.deferred.push(MinBoundWaiter { payload, min });
        Ok(None)
    }

    /// Appends every parked record whose bound is now satisfied. Returns
    /// the entries appended. Called after ordinary appends and on gossip
    /// ticks.
    pub fn drain_deferred(&mut self) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        loop {
            let next = self.peek_next_lid()?;
            let Some(pos) = self.deferred.iter().position(|w| next > w.min) else {
                break;
            };
            let waiter = self.deferred.swap_remove(pos);
            // One-element append cannot recurse into drain_deferred
            // infinitely: each call strictly consumes a waiter.
            let lid = self.take_next_lid()?;
            let toid = TOId(lid.0 + 1);
            let record = Record::new(
                RecordId::new(self.dc, toid),
                VersionVector::new(0),
                waiter.payload.tags,
                waiter.payload.body,
            );
            let entry = Entry::new(lid, record);
            self.locate_and_apply(entry.clone(), true, false)?;
            self.stats_appended += 1;
            self.drained.push(entry.clone());
            out.push(entry);
        }
        Ok(out)
    }

    /// Entries built for drained min-bound waiters since the last call
    /// (consumed by the node's replication path — no store re-read needed).
    pub fn take_drained(&mut self) -> Vec<Entry> {
        std::mem::take(&mut self.drained)
    }

    /// Stores entries whose positions were already assigned by the Chariots
    /// queues stage. Positions must be owned by this maintainer under the
    /// governing epoch. Entries already held (re-sends after a crash, link
    /// duplication) are skipped — the position is immutable once assigned,
    /// so a re-delivery carries nothing new.
    pub fn store_entries(&mut self, entries: Vec<Entry>) -> Result<()> {
        for entry in entries {
            match self.locate_and_apply(entry, true, false) {
                Ok(_) => self.stats_stored += 1,
                Err(ChariotsError::DuplicateRecord(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Applies entries replicated from a peer replica of this maintainer's
    /// group (primary→backup push or anti-entropy repair), overwriting any
    /// occupant, and returns the resulting frontier. Positions already
    /// garbage-collected locally are skipped — collected data is gone.
    ///
    /// Takes a slice so the caller can hand every backup the same shared
    /// `Arc<[Entry]>` batch; entries are cloned only into this replica's
    /// own store/WAL.
    pub fn replicate_entries(&mut self, entries: &[Entry]) -> Result<LId> {
        for entry in entries {
            match self.locate_and_apply(entry.clone(), true, true) {
                Ok(_) => self.stats_stored += 1,
                Err(ChariotsError::GarbageCollected(_)) => {}
                Err(e) => return Err(e),
            }
        }
        // Replication can extend the filled prefix past the append cursor;
        // keep self-assignment ahead of what this replica now holds.
        self.resume_assignment();
        Ok(self.frontier())
    }

    /// Moves the self-assignment cursor of every epoch past the densest
    /// filled prefix. Called when a backup is promoted to primary (and
    /// after replication), so the new primary resumes assignment after the
    /// replicated suffix instead of re-handing-out taken positions.
    pub fn resume_assignment(&mut self) {
        for state in &mut self.epochs {
            state.next_local = state.next_local.max(state.store.filled_prefix());
        }
        self.refresh_own_frontier();
    }

    /// Locates `entry`'s slot under the governing epoch and applies it.
    ///
    /// Returns whether the slot was previously empty. With `overwrite`,
    /// an occupant is replaced (identical copies are left alone without a
    /// new WAL frame); without it, an occupied slot is a
    /// [`ChariotsError::DuplicateRecord`] and nothing is written.
    fn locate_and_apply(&mut self, entry: Entry, write_wal: bool, overwrite: bool) -> Result<bool> {
        let assignment = *self.journal.assignment_at(entry.lid);
        let Some(local) = assignment.local_index(self.id, entry.lid) else {
            return Err(ChariotsError::WrongMaintainer {
                asked: self.id,
                owner: assignment.owner_of(entry.lid),
                lid: entry.lid,
            });
        };
        let epoch_idx = assignment.epoch.0 as usize;
        {
            let state = self.epoch_state(epoch_idx);
            if state.store.is_collected(local) {
                return Err(ChariotsError::GarbageCollected(entry.lid));
            }
            if let Some(existing) = state.store.get(local) {
                if !overwrite {
                    return Err(ChariotsError::DuplicateRecord(entry.record.id));
                }
                if existing.record.id == entry.record.id {
                    return Ok(false);
                }
            }
        }
        if write_wal {
            if let Some(wal) = &mut self.wal {
                wal.append(&entry)?;
                // The strictest policy pays one fsync per record; the batch
                // policies defer to the sync_batch() commit point.
                if self.sync_policy == WalSyncPolicy::PerRecord {
                    wal.sync()?;
                    self.wal_syncs.add(1);
                }
            }
        }
        let state = self.epoch_state(epoch_idx);
        let was_empty = if overwrite {
            state.store.insert_or_replace(local, entry)?
        } else {
            state.store.insert(local, entry)?;
            true
        };
        self.refresh_own_frontier();
        Ok(was_empty)
    }

    /// This maintainer's frontier: the smallest owned global position still
    /// unfilled. Every owned position below it is filled.
    pub fn frontier(&self) -> LId {
        for (i, state) in self.epochs.iter().enumerate() {
            let epoch = chariots_types::Epoch(i as u32);
            let prefix = state.store.filled_prefix();
            let assignment = self.journal.by_epoch(epoch).expect("state implies epoch");
            let member = self.id.index() < assignment.map.num_maintainers();
            match self.journal.slots_in_epoch(epoch, self.id) {
                Some(cap) if prefix >= cap => continue, // epoch fully filled
                None if !member => continue,            // we own nothing in it
                _ => return assignment.lid_for(self.id, prefix),
            }
        }
        // All materialized epochs full: frontier is the first slot of the
        // next epoch (or of the current one if none materialized).
        let epoch = chariots_types::Epoch(self.epochs.len() as u32);
        let assignment = self
            .journal
            .by_epoch(epoch)
            .unwrap_or_else(|| self.journal.current());
        if self.id.index() >= assignment.map.num_maintainers() {
            // Not part of this striping yet (a newly added maintainer whose
            // epoch has not been announced here): conservatively claim
            // nothing is filled.
            return LId::ZERO;
        }
        assignment.lid_for(self.id, 0)
    }

    fn refresh_own_frontier(&mut self) {
        let f = self.frontier();
        self.hl.update(self.id, f);
    }

    /// Incorporates a gossiped frontier from a peer maintainer.
    pub fn gossip_in(&mut self, from: MaintainerId, frontier: LId) {
        self.hl.update(from, frontier);
    }

    /// The gossip message this maintainer sends to peers: its own frontier,
    /// freshly recomputed (an epoch announcement can move it without any
    /// record being stored).
    pub fn gossip_out(&mut self) -> (MaintainerId, LId) {
        self.refresh_own_frontier();
        (self.id, self.hl.get(self.id))
    }

    /// This maintainer's current view of the Head of the Log.
    pub fn head_of_log(&self) -> LId {
        self.hl.head_of_log()
    }

    /// Reads the entry at `lid`.
    ///
    /// With `enforce_hl`, positions at or above the maintainer's view of
    /// the Head of the Log are refused ("Application clients must not be
    /// allowed to read a record at log position i if there exists at least
    /// one gap at log position j less than i", §5.4).
    pub fn read(&mut self, lid: LId, enforce_hl: bool) -> Result<Entry> {
        self.stats_reads += 1;
        if enforce_hl && lid >= self.hl.head_of_log() {
            return Err(ChariotsError::NotYetAvailable(lid));
        }
        let assignment = self.journal.assignment_at(lid);
        let Some(local) = assignment.local_index(self.id, lid) else {
            return Err(ChariotsError::WrongMaintainer {
                asked: self.id,
                owner: assignment.owner_of(lid),
                lid,
            });
        };
        let epoch_idx = assignment.epoch.0 as usize;
        let Some(state) = self.epochs.get(epoch_idx) else {
            return Err(ChariotsError::NotYetAvailable(lid));
        };
        if state.store.is_collected(local) {
            return Err(ChariotsError::GarbageCollected(lid));
        }
        state
            .store
            .get(local)
            .cloned()
            .ok_or(ChariotsError::NotYetAvailable(lid))
    }

    /// Reads several positions in one pass, returning per-position results
    /// in input order. Each position is gated exactly as in [`read`], so a
    /// batch of one is indistinguishable from a single read — the batching
    /// only amortizes the request round trip, not the checks.
    ///
    /// [`read`]: MaintainerCore::read
    pub fn read_many(&mut self, lids: &[LId], enforce_hl: bool) -> Vec<Result<Entry>> {
        lids.iter().map(|&lid| self.read(lid, enforce_hl)).collect()
    }

    /// Scans this maintainer's stored entries with `lid ≥ from`, in `LId`
    /// order, up to `max` entries. Senders use this to ship local records to
    /// other datacenters; unlike client reads it is *not* HL-gated (causal
    /// safety at the receiver is TOId-based).
    pub fn scan_from(&self, from: LId, max: usize) -> Vec<Entry> {
        let mut out = Vec::new();
        for (i, state) in self.epochs.iter().enumerate() {
            if out.len() >= max {
                break;
            }
            let epoch = chariots_types::Epoch(i as u32);
            let assignment = match self.journal.by_epoch(epoch) {
                Some(a) => *a,
                None => break,
            };
            let start_local = assignment.local_index(self.id, from).unwrap_or_else(|| {
                // `from` is not one of our slots (or predates the
                // epoch): start from the first owned slot ≥ from.
                if from <= assignment.start {
                    0
                } else {
                    assignment
                        .map
                        .owned_below(self.id, from.0 - assignment.start.0)
                }
            });
            for (_, entry) in state.store.iter_from(start_local) {
                if entry.lid >= from {
                    out.push(entry.clone());
                    if out.len() >= max {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Garbage-collects every owned position strictly below `bound`, then
    /// compacts the WAL: segments whose frames are all (or mostly) below
    /// the collection floor are deleted or rewritten, so the hot log's
    /// disk footprint tracks the live suffix instead of growing forever.
    ///
    /// Returns the combined reclaim outcome when anything was freed.
    pub fn gc_before(&mut self, bound: LId) -> Option<CompactionStats> {
        if bound <= self.last_gc_bound {
            return None; // the bound only moves forward; nothing new to do
        }
        self.last_gc_bound = bound;
        for (i, state) in self.epochs.iter_mut().enumerate() {
            let epoch = chariots_types::Epoch(i as u32);
            let Some(assignment) = self.journal.by_epoch(epoch) else {
                continue;
            };
            if bound <= assignment.start {
                continue;
            }
            let span = bound.0 - assignment.start.0;
            let floor = assignment.map.owned_below(self.id, span);
            state.store.gc_before(floor);
        }
        self.wal.as_ref()?;
        // The new floors must be durable before any frame below them is
        // dropped: recovery has to learn "collected", not "empty", for
        // the reclaimed prefix — an un-persisted floor would let a
        // restarted maintainer re-assign positions that were already
        // acked. The checkpoint records the floors (and the live
        // snapshot); if it cannot be written, skip compaction — that
        // costs disk, never data.
        let ckpt_reclaimed = match self.checkpoint() {
            Ok(Some(info)) => info.reclaimed_bytes,
            _ => return None,
        };
        let mut wal = self.wal.take()?;
        let result = wal.compact(bound, self.compact_live_frac_milli, |lid| {
            self.lid_live(lid)
        });
        self.wal = Some(wal);
        // Compaction itself is best-effort: a failed rewrite leaves the
        // original segment in place (tmp + rename).
        let mut stats = result.ok()?;
        if !stats.is_empty() {
            self.compactions.add(1);
            self.reclaimed.add(stats.reclaimed_bytes);
        }
        stats.reclaimed_bytes += ckpt_reclaimed;
        if stats.is_empty() {
            return None;
        }
        Some(stats)
    }

    /// Whether the record at `lid` is still live on this maintainer (not
    /// garbage-collected). Used as the compaction predicate for WAL frames.
    fn lid_live(&self, lid: LId) -> bool {
        let assignment = self.journal.assignment_at(lid);
        let Some(local) = assignment.local_index(self.id, lid) else {
            // Not one of our slots under the governing epoch: the frame is
            // a leftover from a reassignment; nothing recovers from it.
            return false;
        };
        match self.epochs.get(assignment.epoch.0 as usize) {
            Some(state) => !state.store.is_collected(local),
            // No state for the epoch yet: keep the frame conservatively.
            None => true,
        }
    }

    /// Applies a future reassignment announced by the controller.
    pub fn announce_epoch(&mut self, start: LId, map: crate::range::RangeMap) {
        self.journal.announce(start, map);
    }

    /// Live counters.
    pub fn stats(&self) -> MaintainerStats {
        MaintainerStats {
            appended: self.stats_appended,
            stored: self.stats_stored,
            reads: self.stats_reads,
            deferred: self.deferred.len(),
            frontier: self.hl.get(self.id),
            durable_frontier: self.durable,
            head_of_log: self.hl.head_of_log(),
        }
    }

    /// Flushes (and syncs) the WAL if persistence is enabled,
    /// unconditionally — shutdown paths and tests that want durability
    /// regardless of the configured policy.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(d) = self.sync_delay {
            std::thread::sleep(d);
        }
        if let Some(wal) = &mut self.wal {
            wal.sync()?;
            self.wal_syncs.add(1);
        }
        self.durable = self.frontier();
        Ok(())
    }

    /// The group-commit durability point: called by the node once per
    /// drained batch, after every record in the batch has been applied and
    /// before any ack leaves this replica.
    ///
    /// - `PerBatch` (default): one flush+fsync for the whole batch.
    /// - `PerRecord`: no-op — every record already fsynced on apply.
    /// - `Never`: flush frames to the OS but skip the fsync (ablation /
    ///   bulk-load; crash durability is forfeited).
    pub fn sync_batch(&mut self) -> Result<()> {
        if let Some(d) = self.sync_delay {
            std::thread::sleep(d);
        }
        if let Some(wal) = &mut self.wal {
            match self.sync_policy {
                WalSyncPolicy::PerBatch => {
                    wal.sync()?;
                    self.wal_syncs.add(1);
                }
                WalSyncPolicy::PerRecord => {}
                // `Never` flushes frames to the OS without an fsync, so the
                // crash-durability debt is *not* retired — the backlog gauge
                // keeps growing, which is the honest signal for this
                // ablation. The durable frontier still advances: the
                // ablation deliberately treats flushed as good enough.
                WalSyncPolicy::Never => wal.flush()?,
            }
        }
        self.durable = self.frontier();
        Ok(())
    }

    /// The frontier as of the last successful durability point: every
    /// owned position below it is filled *and* covered by an fsync (or by
    /// the configured policy's weaker promise). Without persistence this
    /// tracks the plain frontier.
    pub fn durable_frontier(&self) -> LId {
        self.durable
    }

    /// WAL fsyncs performed by this core so far.
    pub fn wal_syncs(&self) -> u64 {
        self.wal_syncs.get()
    }

    /// WAL frames appended since the last fsync — records that would be
    /// lost if the machine died right now. Zero when persistence is off.
    pub fn wal_backlog(&self) -> usize {
        self.wal.as_ref().map_or(0, |w| w.unsynced() as usize)
    }

    /// Writes a checkpoint if persistence is on and the configured
    /// interval has elapsed since the last one. The node's maintenance
    /// tick calls this.
    pub fn maybe_checkpoint(&mut self) -> Result<Option<CheckpointInfo>> {
        if self.checkpoint_interval.is_zero() || self.wal.is_none() {
            return Ok(None);
        }
        if self.last_checkpoint.elapsed() < self.checkpoint_interval {
            return Ok(None);
        }
        self.checkpoint()
    }

    /// Snapshots durable state to `<wal>.ckpt` so the next recovery loads
    /// the snapshot and replays only the WAL suffix past it (O(delta)
    /// restart). Double-buffered: the prior snapshot is kept at
    /// `<wal>.ckpt.prev` until the new one is durably in place, and the
    /// WAL keeps every segment from the *previous* checkpoint's position
    /// up — so a torn or rotted current checkpoint still recovers exactly,
    /// just with a longer replay. Returns `None` when persistence is off.
    pub fn checkpoint(&mut self) -> Result<Option<CheckpointInfo>> {
        let Some(mut wal) = self.wal.take() else {
            return Ok(None);
        };
        let outcome = self.write_checkpoint(&mut wal);
        self.wal = Some(wal);
        self.last_checkpoint = Instant::now();
        outcome.map(Some)
    }

    fn write_checkpoint(&mut self, wal: &mut Wal) -> Result<CheckpointInfo> {
        // The snapshot must not get ahead of the log: fsync first, then
        // record the position the snapshot covers.
        if let Some(d) = self.sync_delay {
            std::thread::sleep(d);
        }
        wal.sync()?;
        self.wal_syncs.add(1);
        self.durable = self.frontier();
        let pos = wal.position();

        let mut body = Vec::new();
        body.extend_from_slice(&(self.epochs.len() as u16).to_le_bytes());
        for state in &self.epochs {
            body.extend_from_slice(&state.store.gc_floor().to_le_bytes());
        }
        body.extend_from_slice(&pos.seq.to_le_bytes());
        body.extend_from_slice(&pos.offset.to_le_bytes());
        let mut entry_count = 0u64;
        let mut frames = Vec::new();
        let mut payload = Vec::new();
        for state in &self.epochs {
            for (_, entry) in state.store.iter() {
                payload.clear();
                encode_entry(entry, &mut payload);
                frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frames.extend_from_slice(&payload);
                entry_count += 1;
            }
        }
        body.extend_from_slice(&entry_count.to_le_bytes());
        body.extend_from_slice(&frames);

        let mut header = Vec::with_capacity(CKPT_HEADER_LEN);
        header.extend_from_slice(&CKPT_MAGIC);
        header.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&(body.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(&body).to_le_bytes());

        let base = wal.path().to_path_buf();
        let tmp = ckpt_path(&base, ".ckpt.tmp");
        let cur = ckpt_path(&base, ".ckpt");
        let prev = ckpt_path(&base, ".ckpt.prev");
        {
            let mut f = File::create(&tmp).map_err(io_err)?;
            f.write_all(&header).map_err(io_err)?;
            f.write_all(&body).map_err(io_err)?;
            f.sync_data().map_err(io_err)?;
        }
        // Demote the current snapshot before promoting the new one; both
        // renames are atomic, so every crash point leaves at least one
        // loadable checkpoint. A *corrupt* current snapshot is deleted
        // instead of demoted — clobbering a good `.prev` with rot would
        // open a crash window (between the renames) with no loadable
        // snapshot but an already-truncated WAL.
        if cur.exists() {
            if load_checkpoint(&cur).is_some() {
                std::fs::rename(&cur, &prev).map_err(io_err)?;
            } else {
                std::fs::remove_file(&cur).map_err(io_err)?;
            }
        }
        std::fs::rename(&tmp, &cur).map_err(io_err)?;

        let old_cur = self.cur_ckpt_seq;
        // The very first snapshot has no predecessor: leave `prev` unset so
        // nothing is truncated while only one snapshot exists on disk — a
        // rotted sole `.ckpt` must still fall back to a full WAL replay.
        self.prev_ckpt_seq = old_cur;
        self.cur_ckpt_seq = Some(pos.seq);
        wal.set_protected(
            self.prev_ckpt_seq
                .iter()
                .chain(self.cur_ckpt_seq.iter())
                .copied(),
        );
        // Everything below the *previous* checkpoint's segment is covered
        // by both on-disk snapshots: safe to drop.
        let mut reclaimed_bytes = 0;
        if let Some(seq) = self.prev_ckpt_seq {
            reclaimed_bytes = wal.truncate_below(seq)?;
        }
        self.reclaimed.add(reclaimed_bytes);
        Ok(CheckpointInfo {
            upto: self.durable,
            entries: entry_count,
            bytes: (CKPT_HEADER_LEN + body.len()) as u64,
            reclaimed_bytes,
        })
    }

    /// How the last [`MaintainerCore::with_wal`] recovery went.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Point-in-time storage footprint: WAL segments and bytes on disk,
    /// live payload bytes resident in memory.
    pub fn storage_stats(&self) -> StorageStats {
        StorageStats {
            segments: self.wal.as_ref().map_or(0, |w| w.segment_count() as u64),
            disk_bytes: self.wal.as_ref().map_or(0, |w| w.disk_bytes()),
            live_bytes: self.epochs.iter().map(|s| s.store.resident_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::RangeMap;
    use chariots_types::Tag;

    fn core(id: u16, maintainers: usize, batch: u64) -> MaintainerCore {
        MaintainerCore::new(
            MaintainerId(id),
            DatacenterId(0),
            EpochJournal::new(RangeMap::new(maintainers, batch)),
        )
    }

    fn payload(body: &str) -> AppendPayload {
        AppendPayload::new(TagSet::new(), Bytes::copy_from_slice(body.as_bytes()))
    }

    /// `(TOId, LId)` view of appended entries, for assignment asserts.
    fn ids(entries: &[Entry]) -> Vec<(TOId, LId)> {
        entries.iter().map(|e| (e.record.toid(), e.lid)).collect()
    }

    #[test]
    fn post_assignment_fills_owned_slots_in_order() {
        let mut m = core(1, 3, 10); // owns 10..19, 40..49, …
        let out = m.append_batch(vec![payload("a"), payload("b")]).unwrap();
        assert_eq!(ids(&out), vec![(TOId(11), LId(10)), (TOId(12), LId(11))]);
        let out = m
            .append_batch((0..8).map(|_| payload("x")).collect())
            .unwrap();
        assert_eq!(out.last().unwrap().lid, LId(19));
        // Next round skips to 40.
        let out = m.append_batch(vec![payload("y")]).unwrap();
        assert_eq!(out[0].lid, LId(40));
    }

    #[test]
    fn append_batch_returns_full_entries() {
        let mut m = core(0, 1, 10);
        let out = m.append_batch(vec![payload("body")]).unwrap();
        // The returned entry matches what a store read would produce — the
        // node's hot path relies on this to skip the re-read.
        assert_eq!(out[0], m.read(out[0].lid, false).unwrap());
        assert_eq!(&out[0].record.body[..], b"body");
    }

    #[test]
    fn read_own_records_without_hl() {
        let mut m = core(0, 2, 5);
        m.append_batch(vec![payload("hello")]).unwrap();
        let e = m.read(LId(0), false).unwrap();
        assert_eq!(&e.record.body[..], b"hello");
        assert_eq!(e.record.toid(), TOId(1));
    }

    #[test]
    fn read_foreign_lid_names_owner() {
        let mut m = core(0, 2, 5);
        let err = m.read(LId(7), false).unwrap_err();
        assert_eq!(
            err,
            ChariotsError::WrongMaintainer {
                asked: MaintainerId(0),
                owner: MaintainerId(1),
                lid: LId(7),
            }
        );
    }

    #[test]
    fn hl_gates_reads_until_gossip_closes_gaps() {
        let mut m = core(0, 2, 5);
        m.append_batch(vec![payload("a")]).unwrap();
        // Own frontier is 1, but maintainer 1 has not gossiped: HL = 0.
        assert_eq!(m.head_of_log(), LId(0));
        assert!(matches!(
            m.read(LId(0), true),
            Err(ChariotsError::NotYetAvailable(_))
        ));
        // Peer reports it has filled its first round: HL rises.
        m.gossip_in(MaintainerId(1), LId(10));
        assert_eq!(m.head_of_log(), LId(1));
        assert!(m.read(LId(0), true).is_ok());
    }

    #[test]
    fn frontier_advances_within_and_across_rounds() {
        let mut m = core(0, 2, 3); // owns 0,1,2, 6,7,8, …
        assert_eq!(m.frontier(), LId(0));
        m.append_batch(vec![payload("a"), payload("b")]).unwrap();
        assert_eq!(m.frontier(), LId(2));
        m.append_batch(vec![payload("c")]).unwrap();
        assert_eq!(m.frontier(), LId(6), "round exhausted: next owned slot");
    }

    #[test]
    fn min_bound_defers_until_position_exceeds_bound() {
        let mut m = core(0, 2, 5);
        // Next position would be 0, min bound 7 (e.g. assigned by peer): defer.
        let parked = m.append_min_bound(payload("later"), LId(7)).unwrap();
        assert!(parked.is_none());
        assert_eq!(m.stats().deferred, 1);
        // Five appends exhaust round one (0..4); next position is 10 > 7,
        // so the waiter drains during the batch append.
        m.append_batch((0..5).map(|_| payload("x")).collect())
            .unwrap();
        assert_eq!(m.stats().deferred, 0);
        let e = m.read(LId(10), false).unwrap();
        assert_eq!(&e.record.body[..], b"later");
    }

    #[test]
    fn min_bound_satisfied_immediately_appends_now() {
        let mut m = core(0, 2, 5);
        m.append_batch(vec![payload("a")]).unwrap();
        let got = m.append_min_bound(payload("b"), LId(0)).unwrap();
        assert_eq!(
            got.map(|e| (e.record.toid(), e.lid)),
            Some((TOId(2), LId(1)))
        );
    }

    #[test]
    fn min_bound_buffer_is_bounded() {
        let mut m = core(0, 2, 5).with_max_deferred(2);
        assert!(m
            .append_min_bound(payload("1"), LId(100))
            .unwrap()
            .is_none());
        assert!(m
            .append_min_bound(payload("2"), LId(100))
            .unwrap()
            .is_none());
        assert!(matches!(
            m.append_min_bound(payload("3"), LId(100)),
            Err(ChariotsError::Overloaded(_))
        ));
    }

    #[test]
    fn store_entries_accepts_owned_positions_only() {
        let mut m = core(1, 2, 5); // owns 5..9, 15..19, …
        let entry = Entry::new(
            LId(6),
            Record::new(
                RecordId::new(DatacenterId(1), TOId(1)),
                VersionVector::new(2),
                TagSet::new(),
                Bytes::from_static(b"ext"),
            ),
        );
        m.store_entries(vec![entry]).unwrap();
        assert_eq!(
            m.read(LId(6), false).unwrap().record.host(),
            DatacenterId(1)
        );
        let foreign = Entry::new(
            LId(2),
            Record::new(
                RecordId::new(DatacenterId(1), TOId(2)),
                VersionVector::new(2),
                TagSet::new(),
                Bytes::new(),
            ),
        );
        assert!(matches!(
            m.store_entries(vec![foreign]),
            Err(ChariotsError::WrongMaintainer { .. })
        ));
    }

    #[test]
    fn out_of_order_store_tracks_frontier() {
        let mut m = core(0, 2, 3);
        let mk = |lid: u64| {
            Entry::new(
                LId(lid),
                Record::new(
                    RecordId::new(DatacenterId(0), TOId(lid + 1)),
                    VersionVector::new(1),
                    TagSet::new(),
                    Bytes::new(),
                ),
            )
        };
        m.store_entries(vec![mk(2)]).unwrap();
        assert_eq!(m.frontier(), LId(0));
        m.store_entries(vec![mk(0), mk(1)]).unwrap();
        assert_eq!(m.frontier(), LId(6));
    }

    #[test]
    fn scan_from_returns_lid_ordered_entries() {
        let mut m = core(0, 2, 3); // owns 0,1,2,6,7,8
        m.append_batch((0..5).map(|_| payload("x")).collect())
            .unwrap();
        let all = m.scan_from(LId(0), 100);
        let lids: Vec<LId> = all.iter().map(|e| e.lid).collect();
        assert_eq!(lids, vec![LId(0), LId(1), LId(2), LId(6), LId(7)]);
        let tail = m.scan_from(LId(2), 2);
        let lids: Vec<LId> = tail.iter().map(|e| e.lid).collect();
        assert_eq!(lids, vec![LId(2), LId(6)]);
        // From a position we don't own: starts at the next owned slot.
        let from_foreign = m.scan_from(LId(4), 2);
        assert_eq!(from_foreign[0].lid, LId(6));
    }

    #[test]
    fn gc_collects_below_bound() {
        let mut m = core(0, 2, 3);
        m.append_batch((0..4).map(|_| payload("x")).collect())
            .unwrap();
        m.gc_before(LId(2));
        assert!(matches!(
            m.read(LId(0), false),
            Err(ChariotsError::GarbageCollected(_))
        ));
        assert!(m.read(LId(2), false).is_ok());
        assert!(m.read(LId(6), false).is_ok());
    }

    #[test]
    fn epoch_reassignment_changes_future_appends() {
        let mut m = core(0, 1, 5); // alone: owns everything
        m.append_batch((0..5).map(|_| payload("x")).collect())
            .unwrap();
        // A second maintainer joins from position 10.
        m.announce_epoch(LId(10), RangeMap::new(2, 5));
        // Positions 5..9 are still epoch-0 (ours); fill them.
        let out = m
            .append_batch((0..5).map(|_| payload("y")).collect())
            .unwrap();
        assert_eq!(out.last().unwrap().lid, LId(9));
        // Next append lands in epoch 1 at relative 0 → global 10; we are
        // maintainer 0 so we own 10..14, then 20..24.
        let out = m
            .append_batch((0..6).map(|_| payload("z")).collect())
            .unwrap();
        assert_eq!(out[0].lid, LId(10));
        assert_eq!(out[4].lid, LId(14));
        assert_eq!(out[5].lid, LId(20));
    }

    #[test]
    fn wal_recovery_restores_state() {
        let dir = chariots_simnet::TestDir::new("chariots-m-recover");
        let path = dir.path().join("m0.wal");

        let journal = EpochJournal::new(RangeMap::new(2, 3));
        {
            let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
                .with_wal(&path)
                .unwrap();
            m.append_batch(vec![payload("a"), payload("b")]).unwrap();
            m.sync().unwrap();
        }
        // "Crash" and recover from the WAL.
        let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal)
            .with_wal(&path)
            .unwrap();
        assert_eq!(&m.read(LId(0), false).unwrap().record.body[..], b"a");
        assert_eq!(&m.read(LId(1), false).unwrap().record.body[..], b"b");
        assert_eq!(m.frontier(), LId(2));
        // New appends continue after the recovered prefix.
        let out = m.append_batch(vec![payload("c")]).unwrap();
        assert_eq!(out[0].lid, LId(2));
    }

    /// The group-commit durability contract: every record acked at a
    /// `sync_batch()` boundary survives a crash that tears the WAL anywhere
    /// after that boundary — here mid-frame inside the *next* (unacked)
    /// batch.
    #[test]
    fn acked_batches_survive_mid_batch_truncation() {
        let dir = chariots_simnet::TestDir::new("chariots-m-groupcommit");
        let path = dir.path().join("m0.wal");
        let journal = EpochJournal::new(RangeMap::new(1, 100));

        let synced_len = {
            let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
                .with_wal(&path)
                .unwrap()
                .with_sync_policy(WalSyncPolicy::PerBatch);
            // Batch 1: applied, then the batch commit point — these three
            // records are the ones a client saw acked.
            m.append_batch(vec![payload("a1"), payload("a2"), payload("a3")])
                .unwrap();
            m.sync_batch().unwrap();
            assert_eq!(m.wal_syncs(), 1, "one fsync for the whole batch");
            let synced_len = std::fs::metadata(Wal::segment_path(&path, 0))
                .unwrap()
                .len();
            // Batch 2: applied but the crash lands before its sync_batch —
            // nothing in it was ever acked.
            m.append_batch(vec![payload("b1"), payload("b2")]).unwrap();
            m.sync().unwrap(); // flush so the file holds batch 2 bytes to tear
            synced_len
        };

        // Crash: tear the file mid-frame inside the unacked second batch.
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(Wal::segment_path(&path, 0))
            .unwrap();
        file.set_len(synced_len + 5).unwrap();
        drop(file);

        let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal)
            .with_wal(&path)
            .unwrap();
        for (lid, body) in [(0u64, "a1"), (1, "a2"), (2, "a3")] {
            assert_eq!(
                &m.read(LId(lid), false).unwrap().record.body[..],
                body.as_bytes(),
                "acked record {lid} must survive the crash"
            );
        }
        assert_eq!(m.frontier(), LId(3), "exactly the acked prefix recovered");
    }

    /// `PerRecord` fsyncs on every apply; `Never` never does.
    #[test]
    fn sync_policy_controls_fsync_count() {
        let dir = chariots_simnet::TestDir::new("chariots-m-syncpolicy");
        let journal = EpochJournal::new(RangeMap::new(1, 100));

        let mut per_record = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
            .with_wal(dir.path().join("per-record.wal"))
            .unwrap()
            .with_sync_policy(WalSyncPolicy::PerRecord);
        per_record
            .append_batch(vec![payload("a"), payload("b"), payload("c")])
            .unwrap();
        per_record.sync_batch().unwrap();
        assert_eq!(per_record.wal_syncs(), 3, "one fsync per record");

        let mut never = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal)
            .with_wal(dir.path().join("never.wal"))
            .unwrap()
            .with_sync_policy(WalSyncPolicy::Never);
        never
            .append_batch(vec![payload("a"), payload("b"), payload("c")])
            .unwrap();
        never.sync_batch().unwrap();
        assert_eq!(never.wal_syncs(), 0, "Never policy does not fsync");
    }

    #[test]
    fn append_returns_tags_preserved() {
        let mut m = core(0, 1, 10);
        let p = AppendPayload::new(
            TagSet::new().with(Tag::with_value("key", "k1")),
            Bytes::from_static(b"v"),
        );
        let out = m.append_batch(vec![p]).unwrap();
        let e = m.read(out[0].lid, false).unwrap();
        assert!(e.record.tags.contains_key("key"));
    }

    #[test]
    fn checkpoint_recovery_replays_only_suffix() {
        let dir = chariots_simnet::TestDir::new("chariots-m-ckpt");
        let path = dir.path().join("m0.wal");
        let journal = EpochJournal::new(RangeMap::new(1, 1000));
        {
            let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
                .with_wal_segment_bytes(256)
                .with_wal(&path)
                .unwrap();
            m.append_batch((0..50).map(|_| payload("ckpt-body")).collect())
                .unwrap();
            m.sync_batch().unwrap();
            let info = m.checkpoint().unwrap().unwrap();
            assert_eq!(info.entries, 50);
            assert!(info.bytes > 0);
            // Only a short suffix lands after the snapshot.
            m.append_batch(vec![payload("t1"), payload("t2"), payload("t3")])
                .unwrap();
            m.sync().unwrap();
        }
        let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal)
            .with_wal_segment_bytes(256)
            .with_wal(&path)
            .unwrap();
        let rs = m.recovery_stats();
        assert!(rs.used_checkpoint);
        assert_eq!(rs.checkpoint_entries, 50);
        assert_eq!(
            rs.replayed_frames, 3,
            "recovery replays only the post-checkpoint suffix"
        );
        assert_eq!(m.frontier(), LId(53));
        assert_eq!(
            &m.read(LId(0), false).unwrap().record.body[..],
            b"ckpt-body"
        );
        assert_eq!(&m.read(LId(52), false).unwrap().record.body[..], b"t3");
        // Appends resume past the recovered log.
        let out = m.append_batch(vec![payload("after")]).unwrap();
        assert_eq!(out[0].lid, LId(53));
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_previous_snapshot() {
        let dir = chariots_simnet::TestDir::new("chariots-m-ckpt-corrupt");
        let path = dir.path().join("m0.wal");
        let journal = EpochJournal::new(RangeMap::new(1, 1000));
        {
            let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
                .with_wal(&path)
                .unwrap();
            m.append_batch((0..10).map(|_| payload("one")).collect())
                .unwrap();
            m.sync_batch().unwrap();
            m.checkpoint().unwrap().unwrap();
            m.append_batch((0..5).map(|_| payload("two")).collect())
                .unwrap();
            m.sync_batch().unwrap();
            m.checkpoint().unwrap().unwrap();
            m.append_batch(vec![payload("tail1"), payload("tail2")])
                .unwrap();
            m.sync().unwrap();
        }
        // Rot the *current* checkpoint's last byte: its CRC fails, so
        // recovery must fall back to the previous snapshot and replay a
        // longer suffix — never load half a snapshot.
        let cur = ckpt_path(&path, ".ckpt");
        let mut bytes = std::fs::read(&cur).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&cur, &bytes).unwrap();

        let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal)
            .with_wal(&path)
            .unwrap();
        let rs = m.recovery_stats();
        assert!(rs.used_checkpoint, "previous snapshot still loads");
        assert_eq!(rs.checkpoint_entries, 10, "snapshot #1, not the rotted #2");
        assert_eq!(
            rs.replayed_frames, 7,
            "everything after snapshot #1 replays from the WAL"
        );
        assert_eq!(m.frontier(), LId(17));
        for (lid, body) in [(0u64, "one"), (12, "two"), (16, "tail2")] {
            assert_eq!(
                &m.read(LId(lid), false).unwrap().record.body[..],
                body.as_bytes()
            );
        }
    }

    #[test]
    fn gc_checkpoints_floors_then_compacts_wal() {
        let dir = chariots_simnet::TestDir::new("chariots-m-gc-compact");
        let path = dir.path().join("m0.wal");
        let journal = EpochJournal::new(RangeMap::new(1, 10_000));
        let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
            .with_wal_segment_bytes(512)
            .with_wal(&path)
            .unwrap();
        m.append_batch((0..100).map(|_| payload("wal-compaction-filler")).collect())
            .unwrap();
        m.sync_batch().unwrap();
        let before = m.storage_stats();
        assert!(before.segments > 4, "small segments force rotation");
        assert!(before.live_bytes > 0);

        let stats = m.gc_before(LId(90)).expect("sweep reclaims disk");
        assert!(stats.reclaimed_bytes > 0);
        let after = m.storage_stats();
        assert!(
            after.disk_bytes < before.disk_bytes,
            "WAL footprint shrinks: {} -> {}",
            before.disk_bytes,
            after.disk_bytes
        );
        assert!(after.live_bytes < before.live_bytes);
        // Repeating the same bound is a no-op.
        assert!(m.gc_before(LId(90)).is_none());

        // The floors went durable with the sweep's checkpoint: recovery
        // sees the prefix as *collected*, not empty, and resumes append
        // assignment after the acked log — never re-issuing positions.
        drop(m);
        let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal)
            .with_wal_segment_bytes(512)
            .with_wal(&path)
            .unwrap();
        assert!(matches!(
            m.read(LId(10), false),
            Err(ChariotsError::GarbageCollected(_))
        ));
        assert!(m.read(LId(95), false).is_ok());
        assert_eq!(m.frontier(), LId(100));
        let out = m.append_batch(vec![payload("next")]).unwrap();
        assert_eq!(out[0].lid, LId(100));
    }

    #[test]
    fn maybe_checkpoint_respects_interval() {
        let dir = chariots_simnet::TestDir::new("chariots-m-ckpt-interval");
        let path = dir.path().join("m0.wal");
        let journal = EpochJournal::new(RangeMap::new(1, 100));
        // Disabled by default (zero interval).
        let mut m = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone())
            .with_wal(&path)
            .unwrap();
        m.append_batch(vec![payload("a")]).unwrap();
        m.sync_batch().unwrap();
        assert!(m.maybe_checkpoint().unwrap().is_none());
        // A zero-elapsed interval has not fired yet right after startup…
        let mut m = m.with_checkpoint_interval(Duration::from_secs(3600));
        assert!(m.maybe_checkpoint().unwrap().is_none());
        // …but a tiny one fires on the next tick.
        let mut m = m.with_checkpoint_interval(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let info = m.maybe_checkpoint().unwrap().expect("interval elapsed");
        assert_eq!(info.entries, 1);
    }
}
