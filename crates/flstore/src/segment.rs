//! In-memory segmented storage of one maintainer's partial log.
//!
//! A maintainer's owned slots form a dense *local index* space (0, 1, 2, …)
//! that the [`RangeMap`](crate::range::RangeMap) maps to global `LId`s.
//! Slots are stored in fixed-size segments so that garbage collection can
//! drop whole segments from the front without shifting anything.
//!
//! Within a single-datacenter FLStore deployment the maintainer fills its
//! slots strictly in order, but under Chariots the queues stage routes
//! already-assigned records to maintainers over the network, so slots may
//! fill *out of order*; the store tracks the contiguous filled prefix, which
//! feeds the Head-of-Log gossip (§5.4).

use std::collections::VecDeque;

use chariots_types::{ChariotsError, Entry, Result};

/// Entries per segment. Small enough that GC is granular, large enough that
/// the per-segment overhead is negligible.
const DEFAULT_SEGMENT_SIZE: usize = 1024;

#[derive(Debug)]
struct Segment {
    /// Local index of slot 0 of this segment.
    base: u64,
    slots: Vec<Option<Entry>>,
    filled: usize,
}

impl Segment {
    fn new(base: u64, size: usize) -> Self {
        Segment {
            base,
            slots: vec![None; size],
            filled: 0,
        }
    }
}

/// Segmented storage of one maintainer's partial log, indexed by local index.
#[derive(Debug)]
pub struct SegmentStore {
    segment_size: usize,
    /// Live segments; `segments[0].base == first_base`.
    segments: VecDeque<Segment>,
    /// Local index of the first live (non-GC'd) segment's base.
    first_base: u64,
    /// All slots `< filled_prefix` are filled (or were, before GC).
    filled_prefix: u64,
    /// Total filled slots currently live.
    len: u64,
    /// Slots `< gc_floor` were garbage-collected.
    gc_floor: u64,
    /// Payload bytes (record bodies) of live entries. GC must drive this
    /// down — it is the signal that collected memory was actually freed.
    resident_bytes: u64,
}

impl Default for SegmentStore {
    fn default() -> Self {
        SegmentStore::new(DEFAULT_SEGMENT_SIZE)
    }
}

impl SegmentStore {
    /// Creates a store with the given segment size.
    pub fn new(segment_size: usize) -> Self {
        assert!(segment_size > 0);
        SegmentStore {
            segment_size,
            segments: VecDeque::new(),
            first_base: 0,
            filled_prefix: 0,
            len: 0,
            gc_floor: 0,
            resident_bytes: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last local index of the contiguous filled prefix: every
    /// slot below this was filled at some point. This is the maintainer's
    /// contribution to the Head-of-Log computation.
    pub fn filled_prefix(&self) -> u64 {
        self.filled_prefix
    }

    /// Local indexes below this were garbage-collected.
    pub fn gc_floor(&self) -> u64 {
        self.gc_floor
    }

    /// Payload bytes of live entries resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    fn segment_mut(&mut self, local_idx: u64) -> &mut Segment {
        let seg_base = local_idx / self.segment_size as u64 * self.segment_size as u64;
        if self.segments.is_empty() {
            self.first_base = seg_base;
            self.segments
                .push_back(Segment::new(seg_base, self.segment_size));
        }
        // Out-of-order inserts may land before the first materialized
        // segment (but never below the GC floor, checked by the caller).
        while self.first_base > seg_base {
            self.first_base -= self.segment_size as u64;
            self.segments
                .push_front(Segment::new(self.first_base, self.segment_size));
        }
        // Extend forward as needed.
        while self.segments.back().expect("nonempty").base < seg_base {
            let next_base = self.segments.back().unwrap().base + self.segment_size as u64;
            self.segments
                .push_back(Segment::new(next_base, self.segment_size));
        }
        let seg_idx = ((seg_base - self.first_base) / self.segment_size as u64) as usize;
        &mut self.segments[seg_idx]
    }

    fn segment(&self, local_idx: u64) -> Option<&Segment> {
        if local_idx < self.first_base {
            return None;
        }
        let seg_idx = ((local_idx - self.first_base) / self.segment_size as u64) as usize;
        self.segments.get(seg_idx)
    }

    /// Inserts `entry` at `local_idx`.
    ///
    /// Inserting below the GC floor or into an occupied slot is an error
    /// (duplicate incorporation must be caught by the filters upstream; at
    /// this layer it indicates a protocol bug).
    pub fn insert(&mut self, local_idx: u64, entry: Entry) -> Result<()> {
        if local_idx < self.gc_floor {
            return Err(ChariotsError::GarbageCollected(entry.lid));
        }
        let size = self.segment_size as u64;
        let seg = self.segment_mut(local_idx);
        let slot = (local_idx % size) as usize;
        if seg.slots[slot].is_some() {
            return Err(ChariotsError::DuplicateRecord(entry.id()));
        }
        let body_bytes = entry.record.body.len() as u64;
        seg.slots[slot] = Some(entry);
        seg.filled += 1;
        self.len += 1;
        self.resident_bytes += body_bytes;
        // Advance the contiguous prefix over newly filled slots.
        while self.get(self.filled_prefix).is_some() {
            self.filled_prefix += 1;
        }
        Ok(())
    }

    /// Inserts `entry` at `local_idx`, replacing any occupant (replication
    /// repair: the copy stamped by the current generation wins). Returns
    /// whether the slot was previously empty. Inserting below the GC floor
    /// is still an error — collected data is gone on every replica.
    pub fn insert_or_replace(&mut self, local_idx: u64, entry: Entry) -> Result<bool> {
        if local_idx < self.gc_floor {
            return Err(ChariotsError::GarbageCollected(entry.lid));
        }
        let size = self.segment_size as u64;
        let body_bytes = entry.record.body.len() as u64;
        let seg = self.segment_mut(local_idx);
        let slot = (local_idx % size) as usize;
        let was_empty = seg.slots[slot].is_none();
        if let Some(old) = seg.slots[slot].replace(entry) {
            self.resident_bytes -= old.record.body.len() as u64;
        }
        self.resident_bytes += body_bytes;
        if was_empty {
            seg.filled += 1;
            self.len += 1;
            while self.get(self.filled_prefix).is_some() {
                self.filled_prefix += 1;
            }
        }
        Ok(was_empty)
    }

    /// The entry at `local_idx`, if present and not GC'd.
    pub fn get(&self, local_idx: u64) -> Option<&Entry> {
        let seg = self.segment(local_idx)?;
        seg.slots[(local_idx % self.segment_size as u64) as usize].as_ref()
    }

    /// Whether `local_idx` was garbage-collected.
    pub fn is_collected(&self, local_idx: u64) -> bool {
        local_idx < self.gc_floor
    }

    /// Iterates live entries in local-index order starting at `from`.
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = (u64, &Entry)> {
        self.segments.iter().flat_map(move |seg| {
            seg.slots.iter().enumerate().filter_map(move |(i, slot)| {
                let idx = seg.base + i as u64;
                if idx < from {
                    return None;
                }
                slot.as_ref().map(|e| (idx, e))
            })
        })
    }

    /// Iterates all live entries in local-index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Entry)> {
        self.iter_from(0)
    }

    /// Garbage-collects every slot below `local_idx`: whole segments fully
    /// below the floor are freed; a partially-collected segment keeps its
    /// storage but its collected slots read as absent.
    pub fn gc_before(&mut self, local_idx: u64) {
        if local_idx <= self.gc_floor {
            return;
        }
        self.gc_floor = local_idx;
        // Drop whole segments below the floor, releasing their payloads.
        while let Some(front) = self.segments.front() {
            if front.base + self.segment_size as u64 <= local_idx {
                let seg = self.segments.pop_front().expect("front exists");
                self.len -= seg.filled as u64;
                for entry in seg.slots.into_iter().flatten() {
                    self.resident_bytes -= entry.record.body.len() as u64;
                }
                self.first_base = seg.base + self.segment_size as u64;
            } else {
                break;
            }
        }
        // Null out collected slots of the (at most one) straddling segment.
        if let Some(front) = self.segments.front_mut() {
            if front.base < local_idx {
                let upto = (local_idx - front.base) as usize;
                for slot in front.slots[..upto].iter_mut() {
                    if let Some(entry) = slot.take() {
                        front.filled -= 1;
                        self.len -= 1;
                        self.resident_bytes -= entry.record.body.len() as u64;
                    }
                }
            }
        }
        // Release the VecDeque's spare capacity once a GC pass has drained
        // segments: without this, a long-lived store that GC'd most of its
        // history still pins the high-water-mark allocation.
        if self.segments.capacity() > 2 * self.segments.len().max(1) {
            self.segments.shrink_to_fit();
        }
        if self.filled_prefix < self.gc_floor {
            self.filled_prefix = self.gc_floor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chariots_types::{DatacenterId, LId, Record, RecordId, TOId, TagSet, VersionVector};

    fn entry(lid: u64) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(0), TOId(lid + 1)),
                VersionVector::new(1),
                TagSet::new(),
                Bytes::from_static(b"x"),
            ),
        )
    }

    #[test]
    fn insert_and_get() {
        let mut s = SegmentStore::new(4);
        s.insert(0, entry(0)).unwrap();
        s.insert(1, entry(10)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0).unwrap().lid, LId(0));
        assert_eq!(s.get(1).unwrap().lid, LId(10));
        assert!(s.get(2).is_none());
    }

    #[test]
    fn double_insert_is_rejected() {
        let mut s = SegmentStore::new(4);
        s.insert(0, entry(0)).unwrap();
        assert!(matches!(
            s.insert(0, entry(0)),
            Err(ChariotsError::DuplicateRecord(_))
        ));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_or_replace_overwrites_without_double_count() {
        let mut s = SegmentStore::new(4);
        assert!(s.insert_or_replace(0, entry(0)).unwrap());
        assert!(!s.insert_or_replace(0, entry(0)).unwrap());
        assert_eq!(s.len(), 1);
        assert_eq!(s.filled_prefix(), 1);
        s.gc_before(1);
        assert!(matches!(
            s.insert_or_replace(0, entry(0)),
            Err(ChariotsError::GarbageCollected(_))
        ));
    }

    #[test]
    fn filled_prefix_tracks_contiguity() {
        let mut s = SegmentStore::new(4);
        assert_eq!(s.filled_prefix(), 0);
        s.insert(0, entry(0)).unwrap();
        assert_eq!(s.filled_prefix(), 1);
        s.insert(2, entry(2)).unwrap(); // gap at 1
        assert_eq!(s.filled_prefix(), 1);
        s.insert(1, entry(1)).unwrap(); // gap closes; prefix jumps past 2
        assert_eq!(s.filled_prefix(), 3);
    }

    #[test]
    fn out_of_order_fill_across_segments() {
        let mut s = SegmentStore::new(2);
        s.insert(5, entry(5)).unwrap();
        s.insert(0, entry(0)).unwrap();
        assert_eq!(s.get(5).unwrap().lid, LId(5));
        assert_eq!(s.filled_prefix(), 1);
        for i in 1..5 {
            s.insert(i, entry(i)).unwrap();
        }
        assert_eq!(s.filled_prefix(), 6);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn iter_is_ordered_and_skips_gaps() {
        let mut s = SegmentStore::new(2);
        for i in [3u64, 0, 5] {
            s.insert(i, entry(i)).unwrap();
        }
        let idxs: Vec<u64> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 3, 5]);
        let from2: Vec<u64> = s.iter_from(2).map(|(i, _)| i).collect();
        assert_eq!(from2, vec![3, 5]);
    }

    #[test]
    fn gc_drops_whole_segments_and_partial_slots() {
        let mut s = SegmentStore::new(2);
        for i in 0..6 {
            s.insert(i, entry(i)).unwrap();
        }
        s.gc_before(3); // segment [0,1] freed entirely; slot 2 nulled
        assert_eq!(s.gc_floor(), 3);
        assert!(s.is_collected(2));
        assert!(!s.is_collected(3));
        assert!(s.get(0).is_none());
        assert!(s.get(2).is_none());
        assert_eq!(s.get(3).unwrap().lid, LId(3));
        assert_eq!(s.len(), 3);
        // Inserting below the floor is an error.
        assert!(matches!(
            s.insert(1, entry(1)),
            Err(ChariotsError::GarbageCollected(_))
        ));
    }

    #[test]
    fn gc_is_monotone() {
        let mut s = SegmentStore::new(2);
        for i in 0..4 {
            s.insert(i, entry(i)).unwrap();
        }
        s.gc_before(3);
        s.gc_before(1); // no-op: floor never regresses
        assert_eq!(s.gc_floor(), 3);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn gc_then_insert_beyond_floor_works() {
        let mut s = SegmentStore::new(2);
        for i in 0..4 {
            s.insert(i, entry(i)).unwrap();
        }
        s.gc_before(4);
        assert_eq!(s.len(), 0);
        s.insert(4, entry(4)).unwrap();
        assert_eq!(s.get(4).unwrap().lid, LId(4));
        assert_eq!(s.filled_prefix(), 5);
    }

    #[test]
    fn gc_releases_resident_payload_bytes() {
        let mut s = SegmentStore::new(2);
        let body = vec![7u8; 512];
        for i in 0..8 {
            s.insert(
                i,
                Entry::new(
                    LId(i),
                    Record::new(
                        RecordId::new(DatacenterId(0), TOId(i + 1)),
                        VersionVector::new(1),
                        TagSet::new(),
                        Bytes::from(body.clone()),
                    ),
                ),
            )
            .unwrap();
        }
        let full = s.resident_bytes();
        assert_eq!(full, 8 * 512);
        // GC of a prefix (whole segments plus a straddling slot) must
        // actually release the collected payload memory.
        s.gc_before(5);
        assert_eq!(s.resident_bytes(), 3 * 512);
        // Replacement swaps the accounting, it doesn't leak the old body.
        s.insert_or_replace(
            6,
            Entry::new(
                LId(6),
                Record::new(
                    RecordId::new(DatacenterId(0), TOId(100)),
                    VersionVector::new(1),
                    TagSet::new(),
                    Bytes::from_static(b"tiny"),
                ),
            ),
        )
        .unwrap();
        assert_eq!(s.resident_bytes(), 2 * 512 + 4);
        s.gc_before(8);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn prefix_never_below_gc_floor() {
        let mut s = SegmentStore::new(2);
        s.insert(0, entry(0)).unwrap();
        s.gc_before(2); // collected past the filled prefix
        assert_eq!(s.filled_prefix(), 2);
    }
}
