//! Deterministic round-robin ownership of log ranges (§5.2).
//!
//! "We employ a deterministic approach to make each machine responsible for
//! specific ranges of the log. These ranges round-robin across machines
//! where each round consists of a number of records [the batch size]."
//!
//! With `m` maintainers and batch size `b`, the global log is divided into
//! consecutive *rounds* of `b` positions; round `r` belongs to maintainer
//! `r mod m`. Every mapping here is pure arithmetic — no coordination, which
//! is the whole point of post-assignment.

use chariots_types::{LId, MaintainerId};

/// The round-robin striping of one epoch: `num_maintainers` machines, each
/// owning alternating runs of `batch_size` positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeMap {
    num_maintainers: u64,
    batch_size: u64,
}

impl RangeMap {
    /// Creates a range map.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(num_maintainers: usize, batch_size: u64) -> Self {
        assert!(num_maintainers > 0, "need at least one maintainer");
        assert!(batch_size > 0, "batch size must be positive");
        RangeMap {
            num_maintainers: num_maintainers as u64,
            batch_size,
        }
    }

    /// Number of maintainers in this epoch.
    pub fn num_maintainers(&self) -> usize {
        self.num_maintainers as usize
    }

    /// Records per round per maintainer.
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// The maintainer owning global position `lid`.
    #[inline]
    pub fn owner_of(&self, lid: LId) -> MaintainerId {
        let round = lid.0 / self.batch_size;
        MaintainerId((round % self.num_maintainers) as u16)
    }

    /// Converts a maintainer's dense *local index* (0, 1, 2, … in the order
    /// the maintainer fills its slots) into the global `LId` of that slot.
    #[inline]
    pub fn lid_for(&self, m: MaintainerId, local_index: u64) -> LId {
        debug_assert!(
            (m.0 as u64) < self.num_maintainers,
            "maintainer {m} is not part of this striping"
        );
        let local_round = local_index / self.batch_size;
        let offset = local_index % self.batch_size;
        let global_round = local_round * self.num_maintainers + m.0 as u64;
        LId(global_round * self.batch_size + offset)
    }

    /// Converts a global `LId` into its owner's dense local index.
    ///
    /// Returns `None` if `m` does not own `lid`.
    #[inline]
    pub fn local_index(&self, m: MaintainerId, lid: LId) -> Option<u64> {
        if self.owner_of(lid) != m {
            return None;
        }
        let global_round = lid.0 / self.batch_size;
        let local_round = global_round / self.num_maintainers;
        Some(local_round * self.batch_size + lid.0 % self.batch_size)
    }

    /// Number of slots maintainer `m` owns among positions `0..span`.
    ///
    /// This powers both epoch sizing (how many slots a bounded epoch gives
    /// each maintainer) and garbage collection (how many of a maintainer's
    /// slots fall below a global GC bound).
    pub fn owned_below(&self, m: MaintainerId, span: u64) -> u64 {
        if m.0 as u64 >= self.num_maintainers {
            // A maintainer not in this epoch's striping (e.g. one added by
            // a later epoch) owns nothing here.
            return 0;
        }
        let cycle = self.batch_size * self.num_maintainers;
        let full_cycles = span / cycle;
        let rem = span % cycle;
        let mut slots = full_cycles * self.batch_size;
        // Within the partial cycle, m's round occupies
        // [m·b, (m+1)·b).
        let round_start = m.0 as u64 * self.batch_size;
        if rem > round_start {
            slots += (rem - round_start).min(self.batch_size);
        }
        slots
    }

    /// The inclusive-exclusive bounds `[start, end)` of the round containing
    /// `lid`.
    pub fn round_bounds(&self, lid: LId) -> (LId, LId) {
        let start = lid.0 / self.batch_size * self.batch_size;
        (LId(start), LId(start + self.batch_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_three_maintainers_batch_1000() {
        // Fig. 4: maintainers A, B, C; batch size 1000. Round 1 gives A
        // 0–999, B 1000–1999, C 2000–2999; round 2 gives A 3000–3999, …
        let map = RangeMap::new(3, 1000);
        assert_eq!(map.owner_of(LId(0)), MaintainerId(0));
        assert_eq!(map.owner_of(LId(999)), MaintainerId(0));
        assert_eq!(map.owner_of(LId(1000)), MaintainerId(1));
        assert_eq!(map.owner_of(LId(2500)), MaintainerId(2));
        assert_eq!(map.owner_of(LId(3000)), MaintainerId(0));
        assert_eq!(map.owner_of(LId(4001)), MaintainerId(1));
    }

    #[test]
    fn lid_for_walks_owned_slots_in_order() {
        let map = RangeMap::new(3, 1000);
        // Maintainer B's slots: 1000..=1999, then 4000..=4999, …
        assert_eq!(map.lid_for(MaintainerId(1), 0), LId(1000));
        assert_eq!(map.lid_for(MaintainerId(1), 999), LId(1999));
        assert_eq!(map.lid_for(MaintainerId(1), 1000), LId(4000));
        assert_eq!(map.lid_for(MaintainerId(0), 0), LId(0));
        assert_eq!(map.lid_for(MaintainerId(2), 1500), LId(5500));
    }

    #[test]
    fn local_index_rejects_foreign_lids() {
        let map = RangeMap::new(3, 1000);
        assert_eq!(map.local_index(MaintainerId(0), LId(1000)), None);
        assert_eq!(map.local_index(MaintainerId(1), LId(1000)), Some(0));
    }

    #[test]
    fn single_maintainer_owns_everything() {
        let map = RangeMap::new(1, 10);
        for lid in 0..100 {
            assert_eq!(map.owner_of(LId(lid)), MaintainerId(0));
            assert_eq!(map.local_index(MaintainerId(0), LId(lid)), Some(lid));
            assert_eq!(map.lid_for(MaintainerId(0), lid), LId(lid));
        }
    }

    #[test]
    fn round_bounds_cover_batch() {
        let map = RangeMap::new(3, 100);
        assert_eq!(map.round_bounds(LId(0)), (LId(0), LId(100)));
        assert_eq!(map.round_bounds(LId(99)), (LId(0), LId(100)));
        assert_eq!(map.round_bounds(LId(250)), (LId(200), LId(300)));
    }

    #[test]
    #[should_panic(expected = "at least one maintainer")]
    fn zero_maintainers_panics() {
        let _ = RangeMap::new(0, 10);
    }

    proptest! {
        /// lid_for and local_index are inverse bijections on owned slots.
        #[test]
        fn lid_local_roundtrip(m in 1usize..8, b in 1u64..64, idx in 0u64..10_000) {
            let map = RangeMap::new(m, b);
            for owner in 0..m as u16 {
                let owner = MaintainerId(owner);
                let lid = map.lid_for(owner, idx);
                prop_assert_eq!(map.owner_of(lid), owner);
                prop_assert_eq!(map.local_index(owner, lid), Some(idx));
            }
        }

        /// Every global position has exactly one owner, and consecutive
        /// local indexes map to strictly increasing LIds.
        #[test]
        fn ownership_partitions_log(m in 1usize..8, b in 1u64..64, lid in 0u64..10_000) {
            let map = RangeMap::new(m, b);
            let owner = map.owner_of(LId(lid));
            let mut owners = 0;
            for cand in 0..m as u16 {
                if map.local_index(MaintainerId(cand), LId(lid)).is_some() {
                    owners += 1;
                    prop_assert_eq!(MaintainerId(cand), owner);
                }
            }
            prop_assert_eq!(owners, 1);
            let next = map.lid_for(owner, map.local_index(owner, LId(lid)).unwrap() + 1);
            prop_assert!(next > LId(lid));
        }
    }
}
