//! The application-client library (§3): `Append` and `Read` over FLStore.
//!
//! "The shared log is accessed by cloud applications … through a linked
//! library that manages the exchange of information between the application
//! and the log maintainers." The client polls the controller once at
//! session start (and again on topology trouble), then talks directly to
//! maintainers — and to indexers only "if [the] read operation did not
//! specify LIds in the rules".

use bytes::Bytes;
use chariots_simnet::RetryPolicy;
use chariots_types::{ChariotsError, Condition, Entry, LId, Limit, ReadRule, Result, TOId, TagSet};

use crate::controller::{Controller, Session};
use crate::maintainer::AppendPayload;

/// Errors worth a bounded retry after a session refresh: the target's
/// machine is down (failover may be promoting a backup right now), the
/// group's routing moved (fencing / no primary yet), or the journal went
/// stale. Everything else — bad requests, GC'd positions, shutdown — is
/// returned immediately.
fn transient(e: &ChariotsError) -> bool {
    matches!(
        e,
        ChariotsError::Unavailable(_)
            | ChariotsError::Fenced { .. }
            | ChariotsError::NoLivePrimary(_)
            | ChariotsError::WrongMaintainer { .. }
    )
}

/// How the client spreads appends over maintainers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AppendRouting {
    /// Round-robin over maintainers (default; best load spread).
    #[default]
    RoundRobin,
    /// Always the same maintainer (gives same-maintainer FIFO ordering for
    /// this client's appends, §5.4's first explicit-order technique).
    Pinned(u16),
}

/// A client session against one datacenter's FLStore.
pub struct FLStoreClient {
    controller: Controller,
    session: Session,
    routing: AppendRouting,
    retry: RetryPolicy,
    rr_cursor: usize,
}

impl FLStoreClient {
    /// Opens a session via the controller.
    pub fn connect(controller: &Controller) -> Self {
        FLStoreClient {
            controller: controller.clone(),
            session: controller.session(),
            routing: AppendRouting::default(),
            retry: RetryPolicy::default(),
            rr_cursor: 0,
        }
    }

    /// Sets the append-routing policy.
    pub fn with_routing(mut self, routing: AppendRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the retry schedule used for transient errors (Unavailable,
    /// fenced or primary-less groups, stale-journal routing). The default
    /// rides out a failover window; `RetryPolicy::new().max_attempts(1)`
    /// restores fail-fast behavior.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Re-polls the controller ("if communication problems occur").
    pub fn refresh_session(&mut self) {
        self.session = self.controller.session();
    }

    /// Approximate number of records in the log (from session start).
    pub fn approx_records(&self) -> u64 {
        self.session.approx_records
    }

    fn pick_maintainer(&mut self) -> Result<usize> {
        let n = self.session.maintainers.len();
        if n == 0 {
            return Err(ChariotsError::Unavailable("no maintainers".into()));
        }
        Ok(match self.routing {
            AppendRouting::Pinned(i) => (i as usize) % n,
            AppendRouting::RoundRobin => {
                self.rr_cursor = (self.rr_cursor + 1) % n;
                self.rr_cursor
            }
        })
    }

    /// Appends a record; returns the assigned `(TOId, LId)` (§3's
    /// `Append(in: record, tags)`).
    pub fn append(&mut self, tags: TagSet, body: impl Into<Bytes>) -> Result<(TOId, LId)> {
        let mut ids = self.append_batch(vec![AppendPayload::new(tags, body)])?;
        Ok(ids.pop().expect("one payload, one id"))
    }

    /// Appends a batch to a single maintainer (amortizes the round trip).
    ///
    /// Transient failures — the primary's machine down mid-failover, a
    /// fenced or deposed primary — are retried with jittered backoff after
    /// refreshing the session; a failed attempt assigned nothing, so the
    /// retry cannot duplicate records.
    pub fn append_batch(&mut self, payloads: Vec<AppendPayload>) -> Result<Vec<(TOId, LId)>> {
        let retry = self.retry.clone();
        retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let i = self.pick_maintainer()?;
            self.session.maintainers[i].append(payloads.clone())
        })
    }

    /// Fire-and-forget batch append (open-loop load generation).
    pub fn append_async(&mut self, payloads: Vec<AppendPayload>) -> Result<()> {
        let i = self.pick_maintainer()?;
        if self.session.maintainers[i].append_async(payloads) {
            Ok(())
        } else {
            Err(ChariotsError::ShutDown)
        }
    }

    /// Explicit-order append across maintainers: the assigned position is
    /// guaranteed to exceed `min` (§5.4's second technique).
    pub fn append_after(
        &mut self,
        tags: TagSet,
        body: impl Into<Bytes>,
        min: LId,
    ) -> Result<Option<(TOId, LId)>> {
        let payload = AppendPayload::new(tags, body.into());
        let retry = self.retry.clone();
        retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let i = self.pick_maintainer()?;
            self.session.maintainers[i].append_min_bound(payload.clone(), min)
        })
    }

    /// Reads the record at `lid`, enforcing the no-gaps-below rule via the
    /// Head of the Log.
    pub fn read(&mut self, lid: LId) -> Result<Entry> {
        self.read_with_hl(lid, true)
    }

    /// Reads the record at `lid`, optionally skipping the HL gate (used by
    /// infrastructure that has its own ordering guarantees).
    ///
    /// A stale journal (`WrongMaintainer`) or a down machine is handled by
    /// refreshing the session and retrying with bounded jittered backoff —
    /// the paper's "if communication problems occur" clause; the group
    /// handle additionally falls back to backups for reads.
    pub fn read_with_hl(&mut self, lid: LId, enforce_hl: bool) -> Result<Entry> {
        let retry = self.retry.clone();
        retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let owner = self.session.journal.owner_of(lid);
            let handle = self
                .session
                .maintainers
                .get(owner.index())
                .ok_or_else(|| ChariotsError::Unavailable(format!("maintainer {owner}")))?;
            handle.read(lid, enforce_hl)
        })
    }

    /// The Head of the Log: every position strictly below it is readable
    /// (Hyksos polls this to pick get-transaction snapshots, Alg. 1).
    pub fn head_of_log(&mut self) -> Result<LId> {
        // Any maintainer answers ("it asks one of the maintainers").
        let retry = self.retry.clone();
        retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let i = self.pick_maintainer()?;
            self.session.maintainers[i].head_of_log()
        })
    }

    /// `Read(in: rules, out: records)` (§3): evaluates a [`ReadRule`].
    ///
    /// * Rules that pin exact `LId`s read directly from the owners.
    /// * Rules with tag conditions consult the responsible indexer first.
    /// * Rules with neither fall back to scanning the maintainers.
    ///
    /// Results respect the Head of the Log: positions at or above it are
    /// never returned.
    pub fn read_rule(&mut self, rule: &ReadRule) -> Result<Vec<Entry>> {
        let hl = self.head_of_log()?;

        // Exact-LId fast path.
        let exact: Vec<LId> = rule
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::LIdEq(lid) => Some(*lid),
                _ => None,
            })
            .collect();
        if !exact.is_empty() {
            let mut out = Vec::new();
            for lid in exact {
                if lid >= hl {
                    continue;
                }
                let entry = self.read_with_hl(lid, true)?;
                if rule.matches(&entry) {
                    out.push(entry);
                }
            }
            out.sort_by_key(|e| e.lid);
            return Ok(apply_limit(out, rule.limit));
        }

        // Tag-indexed path.
        let tag_key = rule.conditions.iter().find_map(|c| match c {
            Condition::HasTag(key) => Some(key.clone()),
            Condition::TagValue(key, _) => Some(key.clone()),
            _ => None,
        });
        let candidates: Vec<LId> = if let Some(key) = tag_key {
            if self.session.indexers.is_empty() {
                self.scan_candidates(hl)?
            } else {
                let ix = crate::indexer::indexer_for(&key, self.session.indexers.len());
                // Over-fetch with Limit::All: other conditions may filter
                // further, and the final limit is applied after filtering.
                self.session.indexers[ix].lookup(key, None, Limit::All)?
            }
        } else {
            self.scan_candidates(hl)?
        };

        let mut out = Vec::new();
        for lid in candidates {
            if lid >= hl {
                continue;
            }
            if let Ok(entry) = self.read_with_hl(lid, true) {
                if rule.matches(&entry) {
                    out.push(entry);
                }
            }
        }
        out.sort_by_key(|e| e.lid);
        out.dedup_by_key(|e| e.lid);
        Ok(apply_limit(out, rule.limit))
    }

    /// Full-scan fallback: every readable position below the HL.
    fn scan_candidates(&mut self, hl: LId) -> Result<Vec<LId>> {
        let mut lids = Vec::new();
        for m in &self.session.maintainers {
            for e in m.scan(LId::ZERO, usize::MAX)? {
                if e.lid < hl {
                    lids.push(e.lid);
                }
            }
        }
        lids.sort_unstable();
        Ok(lids)
    }
}

/// Applies a [`Limit`] to `LId`-ascending entries, mirroring
/// [`ReadRule::apply`]'s ordering semantics.
fn apply_limit(mut entries: Vec<Entry>, limit: Limit) -> Vec<Entry> {
    match limit {
        Limit::All => entries,
        Limit::Oldest(n) => {
            entries.truncate(n);
            entries
        }
        Limit::MostRecent(n) => {
            let skip = entries.len().saturating_sub(n);
            let mut recent = entries.split_off(skip);
            recent.reverse();
            recent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_limit_most_recent_descends() {
        use chariots_types::{DatacenterId, Record, RecordId, TagSet, VersionVector};
        let entries: Vec<Entry> = (0..5)
            .map(|i| {
                Entry::new(
                    LId(i),
                    Record::new(
                        RecordId::new(DatacenterId(0), chariots_types::TOId(i + 1)),
                        VersionVector::new(1),
                        TagSet::new(),
                        Bytes::new(),
                    ),
                )
            })
            .collect();
        let got = apply_limit(entries.clone(), Limit::MostRecent(2));
        assert_eq!(
            got.iter().map(|e| e.lid).collect::<Vec<_>>(),
            vec![LId(4), LId(3)]
        );
        let got = apply_limit(entries, Limit::Oldest(2));
        assert_eq!(
            got.iter().map(|e| e.lid).collect::<Vec<_>>(),
            vec![LId(0), LId(1)]
        );
    }
}
