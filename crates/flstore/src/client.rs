//! The application-client library (§3): `Append` and `Read` over FLStore.
//!
//! "The shared log is accessed by cloud applications … through a linked
//! library that manages the exchange of information between the application
//! and the log maintainers." The client polls the controller once at
//! session start (and again on topology trouble), then talks directly to
//! maintainers — and to indexers only "if [the] read operation did not
//! specify LIds in the rules".
//!
//! ## The batched read path
//!
//! Reads exploit two structural properties of the log:
//!
//! * **Deterministic striping** (§5.2): the epoch journal tells the client
//!   which maintainer owns any position, so [`read_many`] groups candidate
//!   positions by owner and issues **one batch RPC per owning replica
//!   group** (concurrently across groups) instead of one RPC per record.
//! * **Immutability**: a committed position below the Head of the Log
//!   never changes, so a bounded LRU entry cache needs no invalidation,
//!   and the monotonic HL itself can be served from a bounded-staleness
//!   cache — a stale HL is always a safe *lower* bound on readability.
//!
//! [`read_rule`] routes its exact-`LId`, tag-indexed, and scan paths
//! through this machinery and skips (rather than aborts on) positions that
//! cannot currently be read — see [`read_rule`] for the exact semantics.
//!
//! [`read_many`]: FLStoreClient::read_many
//! [`read_rule`]: FLStoreClient::read_rule

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use bytes::Bytes;
use chariots_simnet::{Counter, Histogram, MetricsRegistry, RetryPolicy};
use chariots_types::{ChariotsError, Condition, Entry, LId, Limit, ReadRule, Result, TOId, TagSet};

use crate::controller::{Controller, Session};
use crate::maintainer::AppendPayload;
use crate::replication::ReplicaGroupHandle;

/// Errors worth a bounded retry after a session refresh: the target's
/// machine is down (failover may be promoting a backup right now), the
/// group's routing moved (fencing / no primary yet), the journal went
/// stale, or the TCP transport hiccuped (connection reset mid-send,
/// reconnect in progress, corrupt frame) — the sender reconnects under the
/// retry. Everything else — bad requests, GC'd positions, shutdown — is
/// returned immediately.
fn transient(e: &ChariotsError) -> bool {
    matches!(
        e,
        ChariotsError::Unavailable(_)
            | ChariotsError::Fenced { .. }
            | ChariotsError::NoLivePrimary(_)
            | ChariotsError::WrongMaintainer { .. }
            | ChariotsError::QuorumLost { .. }
            | ChariotsError::Transport(_)
    )
}

/// How the client spreads appends over maintainers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AppendRouting {
    /// Round-robin over maintainers (default; best load spread).
    #[default]
    RoundRobin,
    /// Always the same maintainer (gives same-maintainer FIFO ordering for
    /// this client's appends, §5.4's first explicit-order technique).
    Pinned(u16),
}

/// Shared read-path instruments. Every client of a deployment feeds the
/// same counters (the controller hands them out with the session), so the
/// deployment's registry sees the aggregate:
///
/// * `{prefix}.read.rpc.count` — read-path RPCs issued by clients (batch
///   reads, single reads, scans, index lookups, HL polls). The batched
///   path's win is this dropping from O(candidates) to O(owning groups).
/// * `{prefix}.read.batch.size` — positions per batch-read RPC.
/// * `{prefix}.read.cache.{hit,miss}` — HL-cache and entry-cache outcomes
///   (counted only while the respective cache is enabled).
#[derive(Clone, Default)]
pub struct ReadObs {
    /// Positions per batch-read RPC.
    pub batch_size: Histogram,
    /// Cache hits (HL cache + entry cache).
    pub cache_hit: Counter,
    /// Cache misses (HL cache + entry cache).
    pub cache_miss: Counter,
    /// Read-path RPCs issued by clients.
    pub rpc_count: Counter,
}

impl ReadObs {
    /// Fresh, unregistered instruments (standalone controllers).
    pub fn new() -> Self {
        ReadObs::default()
    }

    /// Instruments registered in `registry` as `{prefix}.read.batch.size`,
    /// `{prefix}.read.cache.hit`, `{prefix}.read.cache.miss`, and
    /// `{prefix}.read.rpc.count`.
    pub fn registered(registry: &MetricsRegistry, prefix: &str) -> Self {
        ReadObs {
            batch_size: registry.histogram(&format!("{prefix}.read.batch.size")),
            cache_hit: registry.counter(&format!("{prefix}.read.cache.hit")),
            cache_miss: registry.counter(&format!("{prefix}.read.cache.miss")),
            rpc_count: registry.counter(&format!("{prefix}.read.rpc.count")),
        }
    }
}

/// A bounded LRU cache of committed entries, keyed by `LId`.
///
/// Soundness needs no invalidation protocol: only entries read under HL
/// enforcement are inserted, and a position below the Head of the Log is
/// committed and immutable (per §5.4's no-gaps-below rule a later read can
/// only return the identical entry). Eviction is least-recently-used via
/// a logical clock; capacity 0 disables the cache entirely.
struct EntryCache {
    cap: usize,
    clock: u64,
    map: HashMap<LId, (Entry, u64)>,
    by_use: BTreeMap<u64, LId>,
}

impl EntryCache {
    fn new(cap: usize) -> Self {
        EntryCache {
            cap,
            clock: 0,
            map: HashMap::new(),
            by_use: BTreeMap::new(),
        }
    }

    fn enabled(&self) -> bool {
        self.cap > 0
    }

    fn get(&mut self, lid: LId) -> Option<Entry> {
        let old_stamp = self.map.get(&lid).map(|(_, s)| *s)?;
        self.clock += 1;
        self.by_use.remove(&old_stamp);
        self.by_use.insert(self.clock, lid);
        let (entry, stamp) = self.map.get_mut(&lid).expect("present above");
        *stamp = self.clock;
        Some(entry.clone())
    }

    fn insert(&mut self, entry: Entry) {
        if self.cap == 0 {
            return;
        }
        let lid = entry.lid;
        if let Some((_, old_stamp)) = self.map.get(&lid) {
            self.by_use.remove(old_stamp);
        } else {
            while self.map.len() >= self.cap {
                let (_, evicted) = self.by_use.pop_first().expect("cache non-empty");
                self.map.remove(&evicted);
            }
        }
        self.clock += 1;
        self.by_use.insert(self.clock, lid);
        self.map.insert(lid, (entry, self.clock));
    }
}

/// A client session against one datacenter's FLStore.
pub struct FLStoreClient {
    controller: Controller,
    session: Session,
    routing: AppendRouting,
    retry: RetryPolicy,
    rr_cursor: usize,
    hl_cache_ttl: Duration,
    hl_cache: Option<(LId, Instant)>,
    entry_cache: EntryCache,
    obs: ReadObs,
}

impl FLStoreClient {
    /// Opens a session via the controller. Cache settings and read
    /// instruments come with the session (the deployment configures them
    /// from [`FLStoreConfig`](chariots_types::FLStoreConfig)).
    pub fn connect(controller: &Controller) -> Self {
        let session = controller.session();
        let hl_cache_ttl = session.hl_cache_ttl;
        let entry_cache = EntryCache::new(session.read_cache_entries);
        let obs = session.read_obs.clone();
        FLStoreClient {
            controller: controller.clone(),
            session,
            routing: AppendRouting::default(),
            retry: RetryPolicy::default(),
            rr_cursor: 0,
            hl_cache_ttl,
            hl_cache: None,
            entry_cache,
            obs,
        }
    }

    /// Sets the append-routing policy.
    pub fn with_routing(mut self, routing: AppendRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the retry schedule used for transient errors (Unavailable,
    /// fenced or primary-less groups, stale-journal routing). The default
    /// rides out a failover window; `RetryPolicy::new().max_attempts(1)`
    /// restores fail-fast behavior.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the Head-of-Log cache TTL for this client
    /// (`Duration::ZERO` disables the cache).
    pub fn with_hl_cache_ttl(mut self, ttl: Duration) -> Self {
        self.hl_cache_ttl = ttl;
        self
    }

    /// Overrides the entry-cache capacity for this client (0 disables).
    pub fn with_entry_cache_capacity(mut self, cap: usize) -> Self {
        self.entry_cache = EntryCache::new(cap);
        self
    }

    /// Re-polls the controller ("if communication problems occur"). The
    /// entry cache survives: committed positions are immutable, so a
    /// topology change cannot stale it.
    pub fn refresh_session(&mut self) {
        self.session = self.controller.session();
    }

    /// Approximate number of records in the log (from session start).
    pub fn approx_records(&self) -> u64 {
        self.session.approx_records
    }

    fn pick_maintainer(&mut self) -> Result<usize> {
        let n = self.session.maintainers.len();
        if n == 0 {
            return Err(ChariotsError::Unavailable("no maintainers".into()));
        }
        Ok(match self.routing {
            AppendRouting::Pinned(i) => (i as usize) % n,
            AppendRouting::RoundRobin => {
                self.rr_cursor = (self.rr_cursor + 1) % n;
                self.rr_cursor
            }
        })
    }

    /// Appends a record; returns the assigned `(TOId, LId)` (§3's
    /// `Append(in: record, tags)`).
    pub fn append(&mut self, tags: TagSet, body: impl Into<Bytes>) -> Result<(TOId, LId)> {
        let mut ids = self.append_batch(vec![AppendPayload::new(tags, body)])?;
        Ok(ids.pop().expect("one payload, one id"))
    }

    /// Appends a batch to a single maintainer (amortizes the round trip).
    ///
    /// Transient failures — the primary's machine down mid-failover, a
    /// fenced or deposed primary — are retried with jittered backoff after
    /// refreshing the session; a failed attempt assigned nothing, so the
    /// retry cannot duplicate records.
    pub fn append_batch(&mut self, payloads: Vec<AppendPayload>) -> Result<Vec<(TOId, LId)>> {
        let retry = self.retry.clone();
        retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let i = self.pick_maintainer()?;
            self.session.maintainers[i].append(payloads.clone())
        })
    }

    /// Fire-and-forget batch append (open-loop load generation).
    pub fn append_async(&mut self, payloads: Vec<AppendPayload>) -> Result<()> {
        let i = self.pick_maintainer()?;
        if self.session.maintainers[i].append_async(payloads) {
            Ok(())
        } else {
            Err(ChariotsError::ShutDown)
        }
    }

    /// Explicit-order append across maintainers: the assigned position is
    /// guaranteed to exceed `min` (§5.4's second technique).
    pub fn append_after(
        &mut self,
        tags: TagSet,
        body: impl Into<Bytes>,
        min: LId,
    ) -> Result<Option<(TOId, LId)>> {
        let payload = AppendPayload::new(tags, body.into());
        let retry = self.retry.clone();
        retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let i = self.pick_maintainer()?;
            self.session.maintainers[i].append_min_bound(payload.clone(), min)
        })
    }

    /// Reads the record at `lid`, enforcing the no-gaps-below rule via the
    /// Head of the Log.
    pub fn read(&mut self, lid: LId) -> Result<Entry> {
        self.read_with_hl(lid, true)
    }

    /// Reads the record at `lid`, optionally skipping the HL gate (used by
    /// infrastructure that has its own ordering guarantees).
    ///
    /// A stale journal (`WrongMaintainer`) or a down machine is handled by
    /// refreshing the session and retrying with bounded jittered backoff —
    /// the paper's "if communication problems occur" clause; the group
    /// handle additionally falls back to backups for reads. Entries read
    /// under the HL gate populate the entry cache.
    pub fn read_with_hl(&mut self, lid: LId, enforce_hl: bool) -> Result<Entry> {
        if let Some(entry) = self.entry_cache.get(lid) {
            self.obs.cache_hit.add(1);
            return Ok(entry);
        }
        if self.entry_cache.enabled() {
            self.obs.cache_miss.add(1);
        }
        let retry = self.retry.clone();
        let entry = retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let owner = self.session.journal.owner_of(lid);
            let handle = self
                .session
                .maintainers
                .get(owner.index())
                .ok_or_else(|| ChariotsError::Unavailable(format!("maintainer {owner}")))?;
            self.obs.rpc_count.add(1);
            handle.read(lid, enforce_hl)
        })?;
        // Only HL-gated reads are known-committed; a gate-free read may
        // observe a position that a failover could still reassign.
        if enforce_hl {
            self.entry_cache.insert(entry.clone());
        }
        Ok(entry)
    }

    /// Reads every position in `lids`, enforcing the HL gate, and returns
    /// per-position results **in input order** (one slot per requested
    /// position, duplicates included).
    ///
    /// This is the scatter-gather path: positions are grouped by owning
    /// maintainer via the journal's striping and fetched with one
    /// [`ReplicaGroupHandle::read_batch`] RPC per owning group, issued
    /// concurrently across groups. Transiently failing positions (downed
    /// or fenced groups, stale routing) are retried with jittered backoff
    /// after a session refresh; everything else (`NotYetAvailable`,
    /// `GarbageCollected`, …) lands in that position's slot.
    pub fn read_many(&mut self, lids: &[LId]) -> Vec<Result<Entry>> {
        self.read_many_with_hl(lids, true)
    }

    /// [`read_many`](Self::read_many) with an explicit HL-gate flag. Only
    /// HL-gated results populate the entry cache.
    pub fn read_many_with_hl(&mut self, lids: &[LId], enforce_hl: bool) -> Vec<Result<Entry>> {
        let mut results: Vec<Option<Result<Entry>>> = lids.iter().map(|_| None).collect();
        // Serve what we can from the entry cache.
        let mut pending: Vec<usize> = Vec::new();
        for (i, &lid) in lids.iter().enumerate() {
            if let Some(entry) = self.entry_cache.get(lid) {
                self.obs.cache_hit.add(1);
                results[i] = Some(Ok(entry));
            } else {
                if self.entry_cache.enabled() {
                    self.obs.cache_miss.add(1);
                }
                pending.push(i);
            }
        }
        if pending.is_empty() {
            return results.into_iter().map(|r| r.expect("cached")).collect();
        }

        let retry = self.retry.clone();
        let mut last_transient: Option<ChariotsError> = None;
        // Each retry round re-groups the still-pending positions under the
        // (possibly refreshed) journal and scatters again; `results` keeps
        // the latest outcome per position, so a final transient failure is
        // reported per-slot rather than failing the whole call.
        let _ = retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &i in &pending {
                let owner = self.session.journal.owner_of(lids[i]);
                groups.entry(owner.index()).or_default().push(i);
            }
            pending.clear();
            let mut scatter: Vec<(Vec<usize>, ReplicaGroupHandle, Vec<LId>)> = Vec::new();
            for (owner, idxs) in groups {
                match self.session.maintainers.get(owner) {
                    Some(handle) => {
                        let batch: Vec<LId> = idxs.iter().map(|&i| lids[i]).collect();
                        self.obs.rpc_count.add(1);
                        self.obs.batch_size.record(batch.len() as u64);
                        scatter.push((idxs, handle.clone(), batch));
                    }
                    None => {
                        // Stale journal: the owner is not in this session's
                        // topology. Transient — a refresh resolves it.
                        let err = ChariotsError::Unavailable(format!("maintainer group {owner}"));
                        for &i in &idxs {
                            results[i] = Some(Err(err.clone()));
                            pending.push(i);
                        }
                        last_transient = Some(err);
                    }
                }
            }

            // Scatter concurrently across owning groups, gather in order.
            let gathered: Vec<Vec<Result<Entry>>> = if scatter.len() == 1 {
                let (_, handle, batch) = &scatter[0];
                vec![handle.read_batch(batch, enforce_hl)]
            } else {
                std::thread::scope(|s| {
                    let threads: Vec<_> = scatter
                        .iter()
                        .map(|(_, handle, batch)| {
                            s.spawn(move || handle.read_batch(batch, enforce_hl))
                        })
                        .collect();
                    threads
                        .into_iter()
                        .map(|t| t.join().expect("read_batch worker panicked"))
                        .collect()
                })
            };

            for ((idxs, _, _), batch_results) in scatter.into_iter().zip(gathered) {
                for (i, r) in idxs.into_iter().zip(batch_results) {
                    match r {
                        Ok(entry) => {
                            if enforce_hl {
                                self.entry_cache.insert(entry.clone());
                            }
                            results[i] = Some(Ok(entry));
                        }
                        Err(e) => {
                            if transient(&e) {
                                last_transient = Some(e.clone());
                                pending.push(i);
                            }
                            results[i] = Some(Err(e));
                        }
                    }
                }
            }
            if pending.is_empty() {
                last_transient = None;
                Ok(())
            } else {
                // Failing the closure triggers another round (or, at the
                // retry budget, leaves the per-slot errors in place).
                Err(last_transient.clone().expect("pending implies transient"))
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every position resolved"))
            .collect()
    }

    /// The Head of the Log: every position strictly below it is readable
    /// (Hyksos polls this to pick get-transaction snapshots, Alg. 1).
    /// Always fetched fresh; the result refreshes the client's HL cache.
    pub fn head_of_log(&mut self) -> Result<LId> {
        // Any maintainer answers ("it asks one of the maintainers").
        let retry = self.retry.clone();
        let hl = retry.run(transient, |attempt| {
            if attempt > 0 {
                self.refresh_session();
            }
            let i = self.pick_maintainer()?;
            self.obs.rpc_count.add(1);
            self.session.maintainers[i].head_of_log()
        })?;
        self.hl_cache = Some((hl, Instant::now()));
        Ok(hl)
    }

    /// The HL for rule evaluation: served from the cache while younger
    /// than the TTL, fetched (and re-cached) otherwise. A stale value is
    /// safe — the HL only grows, so the cache can only *under*-report
    /// readability, never expose a gap (bounded-staleness reads).
    fn cached_head_of_log(&mut self) -> Result<LId> {
        if self.hl_cache_ttl > Duration::ZERO {
            if let Some((hl, at)) = self.hl_cache {
                if at.elapsed() <= self.hl_cache_ttl {
                    self.obs.cache_hit.add(1);
                    return Ok(hl);
                }
            }
            self.obs.cache_miss.add(1);
        }
        self.head_of_log()
    }

    /// `Read(in: rules, out: records)` (§3): evaluates a [`ReadRule`].
    ///
    /// * Rules that pin exact `LId`s read directly from the owners.
    /// * Rules with tag conditions consult the responsible indexer first,
    ///   pushing the value predicate, the position bound (HL ∧ `LIdBelow`),
    ///   and — when those conditions are the whole rule — the limit down
    ///   into the lookup.
    /// * Rules with neither fall back to scanning the maintainers.
    ///
    /// All three paths fetch candidate entries through the scatter-gather
    /// [`read_many`](Self::read_many) batch path.
    ///
    /// Results respect the Head of the Log: positions at or above it are
    /// never returned. The HL may be served from the bounded-staleness
    /// cache, so a just-committed record can be missed for up to the TTL.
    ///
    /// **Error semantics**: positions that cannot currently be read
    /// (`NotYetAvailable` under replica lag, `GarbageCollected`, a group
    /// that stays down past the retry budget) are *skipped* — uniformly,
    /// on every path — so a rule returns the readable subset rather than
    /// failing outright. Infrastructure errors outside per-position reads
    /// (HL poll, index lookup, scan) still fail the call.
    pub fn read_rule(&mut self, rule: &ReadRule) -> Result<Vec<Entry>> {
        let hl = self.cached_head_of_log()?;

        // Exact-LId fast path.
        let exact: Vec<LId> = rule
            .conditions
            .iter()
            .filter_map(|c| match c {
                Condition::LIdEq(lid) => Some(*lid),
                _ => None,
            })
            .collect();
        if !exact.is_empty() {
            let lids: Vec<LId> = exact.into_iter().filter(|&lid| lid < hl).collect();
            let entries = self.collect_readable(&lids, rule);
            return Ok(self.finish_rule(entries, rule));
        }

        // Tag-indexed path.
        let tag_cond = rule.conditions.iter().find_map(|c| match c {
            Condition::HasTag(key) => Some((key.clone(), None)),
            Condition::TagValue(key, pred) => Some((key.clone(), Some(pred.clone()))),
            _ => None,
        });
        let candidates: Vec<LId> = match tag_cond {
            Some((key, predicate)) if !self.session.indexers.is_empty() => {
                // Push the position bound down: the HL, tightened by any
                // `LIdBelow` conditions the rule carries.
                let below = rule.conditions.iter().fold(hl, |acc, c| match c {
                    Condition::LIdBelow(bound) => acc.min(*bound),
                    _ => acc,
                });
                // The limit may only be pushed down when the lookup's
                // filters are exhaustive — one tag condition, position
                // bounds, nothing else — otherwise a condition applied
                // after the lookup could reject candidates the truncated
                // result no longer has replacements for.
                let sole_tag = rule
                    .conditions
                    .iter()
                    .filter(|c| matches!(c, Condition::HasTag(_) | Condition::TagValue(_, _)))
                    .count()
                    == 1;
                let pushable = sole_tag
                    && rule.conditions.iter().all(|c| {
                        matches!(
                            c,
                            Condition::HasTag(_)
                                | Condition::TagValue(_, _)
                                | Condition::LIdBelow(_)
                        )
                    });
                let limit = if pushable { rule.limit } else { Limit::All };
                let ix = crate::indexer::indexer_for(&key, self.session.indexers.len());
                self.obs.rpc_count.add(1);
                self.session.indexers[ix].lookup(key, predicate, Some(below), limit)?
            }
            _ => {
                // No tag to index on (or no indexers): scan fallback. The
                // scan already materializes the entries — use them.
                let entries = self.scan_matching(hl, rule)?;
                return Ok(self.finish_rule(entries, rule));
            }
        };
        let lids: Vec<LId> = candidates.into_iter().filter(|&lid| lid < hl).collect();
        let entries = self.collect_readable(&lids, rule);
        Ok(self.finish_rule(entries, rule))
    }

    /// Batch-reads `lids` and keeps the readable, rule-matching entries
    /// (skip-unreadable semantics — see [`read_rule`](Self::read_rule)).
    fn collect_readable(&mut self, lids: &[LId], rule: &ReadRule) -> Vec<Entry> {
        self.read_many(lids)
            .into_iter()
            .filter_map(|r| r.ok())
            .filter(|e| rule.matches(e))
            .collect()
    }

    /// Orders, dedups, and limits matched entries per the rule.
    fn finish_rule(&self, mut entries: Vec<Entry>, rule: &ReadRule) -> Vec<Entry> {
        entries.sort_by_key(|e| e.lid);
        entries.dedup_by_key(|e| e.lid);
        apply_limit(entries, rule.limit)
    }

    /// Full-scan fallback: every readable, rule-matching entry below the
    /// HL, straight from the maintainers' scan responses (no per-position
    /// re-reads).
    fn scan_matching(&mut self, hl: LId, rule: &ReadRule) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        for m in &self.session.maintainers {
            self.obs.rpc_count.add(1);
            for e in m.scan(LId::ZERO, usize::MAX)? {
                if e.lid < hl && rule.matches(&e) {
                    out.push(e);
                }
            }
        }
        Ok(out)
    }
}

/// Applies a [`Limit`] to `LId`-ascending entries, mirroring
/// [`ReadRule::apply`]'s ordering semantics.
fn apply_limit(mut entries: Vec<Entry>, limit: Limit) -> Vec<Entry> {
    match limit {
        Limit::All => entries,
        Limit::Oldest(n) => {
            entries.truncate(n);
            entries
        }
        Limit::MostRecent(n) => {
            let skip = entries.len().saturating_sub(n);
            let mut recent = entries.split_off(skip);
            recent.reverse();
            recent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_types::{DatacenterId, Record, RecordId, TagSet, VersionVector};

    fn entry(lid: u64) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(0), chariots_types::TOId(lid + 1)),
                VersionVector::new(1),
                TagSet::new(),
                Bytes::new(),
            ),
        )
    }

    #[test]
    fn apply_limit_most_recent_descends() {
        let entries: Vec<Entry> = (0..5).map(entry).collect();
        let got = apply_limit(entries.clone(), Limit::MostRecent(2));
        assert_eq!(
            got.iter().map(|e| e.lid).collect::<Vec<_>>(),
            vec![LId(4), LId(3)]
        );
        let got = apply_limit(entries, Limit::Oldest(2));
        assert_eq!(
            got.iter().map(|e| e.lid).collect::<Vec<_>>(),
            vec![LId(0), LId(1)]
        );
    }

    #[test]
    fn entry_cache_is_lru_and_bounded() {
        let mut cache = EntryCache::new(2);
        cache.insert(entry(0));
        cache.insert(entry(1));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.get(LId(0)).is_some());
        cache.insert(entry(2));
        assert!(cache.get(LId(1)).is_none(), "LRU victim evicted");
        assert!(cache.get(LId(0)).is_some());
        assert!(cache.get(LId(2)).is_some());
        assert!(cache.map.len() <= 2);
    }

    #[test]
    fn entry_cache_zero_capacity_is_disabled() {
        let mut cache = EntryCache::new(0);
        assert!(!cache.enabled());
        cache.insert(entry(0));
        assert!(cache.get(LId(0)).is_none());
    }

    #[test]
    fn entry_cache_reinsert_refreshes_not_grows() {
        let mut cache = EntryCache::new(2);
        cache.insert(entry(0));
        cache.insert(entry(0));
        cache.insert(entry(1));
        assert_eq!(cache.map.len(), 2);
        assert_eq!(cache.by_use.len(), 2);
    }
}
