//! Cold storage for garbage-collected records (§6.1).
//!
//! "If the user chooses not to garbage collect the records then they may
//! employ a cold storage solution to archive older records." This module
//! provides that tier: before the hot log reclaims a prefix, its entries
//! are appended to an archive file (the same CRC-framed format as the
//! WAL segments, but flat and unsegmented — archives only grow at the
//! tail and are never compacted), and an [`ArchiveReader`] serves reads
//! of collected positions — the substrate for the paper's "time travel"
//! and auditing use cases.
//!
//! The reader keeps only an LId→offset index resident plus a small
//! bounded cache of decoded entries; bodies stay on disk until asked for.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use chariots_types::{ChariotsError, Entry, LId, Result};

use crate::wal::{encode_entry, read_frame, write_frame, FrameStep};

fn io_err(e: std::io::Error) -> ChariotsError {
    ChariotsError::Storage(e.to_string())
}

/// Decoded entries kept resident by an [`ArchiveReader`]. Small on
/// purpose: archive reads are cold-path (anti-entropy repair, audits).
const READER_CACHE_ENTRIES: usize = 1024;

/// Append-side handle to an archive file.
#[derive(Debug)]
pub struct ArchiveWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Positions strictly below this have been archived.
    archived_below: LId,
}

impl ArchiveWriter {
    /// Opens (creating if absent) the archive at `path`. Existing frames
    /// are scanned (not loaded) to find where archiving left off.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let mut archived_below = LId::ZERO;
        match File::open(&path) {
            Ok(file) => {
                let mut reader = BufReader::new(file);
                while let FrameStep::Entry(entry, _) = read_frame(&mut reader)? {
                    archived_below = entry.lid.next();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(e)),
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(ArchiveWriter {
            path,
            writer: BufWriter::new(file),
            archived_below,
        })
    }

    /// Archives entries. They must continue the archived prefix in `LId`
    /// order (the GC bound only moves forward, so this is the natural call
    /// pattern); re-archiving already-archived positions is a no-op.
    pub fn archive(&mut self, entries: &[Entry]) -> Result<()> {
        let mut payload = Vec::new();
        for entry in entries {
            if entry.lid < self.archived_below {
                continue; // idempotent re-archive
            }
            if entry.lid != self.archived_below {
                return Err(ChariotsError::Storage(format!(
                    "archive gap: expected {}, got {}",
                    self.archived_below, entry.lid
                )));
            }
            payload.clear();
            encode_entry(entry, &mut payload);
            write_frame(&mut self.writer, &payload)?;
            self.archived_below = entry.lid.next();
        }
        self.writer.flush().map_err(io_err)?;
        self.writer.get_ref().sync_data().map_err(io_err)
    }

    /// Positions strictly below this are safely archived.
    pub fn archived_below(&self) -> LId {
        self.archived_below
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Interior state of an [`ArchiveReader`]: the file handle plus a small
/// FIFO cache of decoded entries.
#[derive(Debug)]
struct ReaderInner {
    /// `None` when no archive file existed at open time (the index is
    /// empty, so no read ever needs it).
    file: Option<File>,
    cache: VecDeque<(LId, Entry)>,
}

/// Read-side handle: a lazily-consulted LId→offset index over the
/// archive file. Only the index (8 bytes per entry) and a bounded cache
/// of decoded entries stay resident; payloads are fetched on demand.
#[derive(Debug)]
pub struct ArchiveReader {
    path: PathBuf,
    /// First archived position; entries are dense from here.
    base: Option<LId>,
    /// Byte offset of each entry's frame, indexed by `lid - base`.
    offsets: Vec<u64>,
    inner: Mutex<ReaderInner>,
}

impl ArchiveReader {
    /// Opens the archive at `path`, scanning frame boundaries to build
    /// the offset index without retaining any payloads.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut base = None;
        let mut offsets = Vec::new();
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // No archive yet: an empty reader.
                return Ok(ArchiveReader {
                    path,
                    base,
                    offsets,
                    inner: Mutex::new(ReaderInner {
                        file: None,
                        cache: VecDeque::new(),
                    }),
                });
            }
            Err(e) => return Err(io_err(e)),
        };
        let mut reader = BufReader::new(file);
        let mut pos = 0u64;
        loop {
            match read_frame(&mut reader)? {
                FrameStep::Entry(entry, bytes) => {
                    if base.is_none() {
                        base = Some(entry.lid);
                    }
                    offsets.push(pos);
                    pos += bytes;
                }
                FrameStep::Eof | FrameStep::Invalid => break,
            }
        }
        let file = File::open(&path).map_err(io_err)?;
        Ok(ArchiveReader {
            path,
            base,
            offsets,
            inner: Mutex::new(ReaderInner {
                file: Some(file),
                cache: VecDeque::new(),
            }),
        })
    }

    /// Reads the archived entry at `lid`, seeking to its frame on disk
    /// (or serving it from the bounded cache).
    pub fn read(&self, lid: LId) -> Result<Entry> {
        // Entries are dense and LId-ordered starting at the first archived
        // position.
        let base = self.base.ok_or(ChariotsError::NotYetAvailable(lid))?;
        if lid < base {
            return Err(ChariotsError::GarbageCollected(lid));
        }
        let offset = *self
            .offsets
            .get((lid.0 - base.0) as usize)
            .ok_or(ChariotsError::NotYetAvailable(lid))?;
        let inner = &mut *self.inner.lock();
        if let Some((_, e)) = inner.cache.iter().find(|(l, _)| *l == lid) {
            return Ok(e.clone());
        }
        // A non-empty offset index implies the file existed at open time.
        let file = inner
            .file
            .as_mut()
            .ok_or(ChariotsError::NotYetAvailable(lid))?;
        file.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        let entry = match read_frame(file)? {
            FrameStep::Entry(entry, _) if entry.lid == lid => *entry,
            // The index said a frame lives here; anything else means the
            // file changed underneath us or rotted.
            _ => {
                return Err(ChariotsError::Storage(format!(
                    "archive frame at offset {offset} unreadable for {lid}"
                )))
            }
        };
        if inner.cache.len() >= READER_CACHE_ENTRIES {
            inner.cache.pop_front();
        }
        inner.cache.push_back((lid, entry.clone()));
        Ok(entry)
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Streams archived entries in `LId` order from disk (nothing is
    /// retained once yielded).
    pub fn iter(&self) -> impl Iterator<Item = Entry> {
        let reader = File::open(&self.path).map(BufReader::new);
        let mut remaining = self.offsets.len();
        let mut reader = reader.ok();
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let r = reader.as_mut()?;
            match read_frame(r) {
                Ok(FrameStep::Entry(entry, _)) => {
                    remaining -= 1;
                    Some(*entry)
                }
                _ => None,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chariots_types::{DatacenterId, Record, RecordId, TOId, TagSet, VersionVector};

    fn entry(lid: u64) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(0), TOId(lid + 1)),
                VersionVector::new(1),
                TagSet::new(),
                Bytes::from(format!("r{lid}")),
            ),
        )
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chariots-archive-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn archive_and_read_back() {
        let path = temp_path("roundtrip.arc");
        let mut w = ArchiveWriter::open(&path).unwrap();
        w.archive(&[entry(0), entry(1), entry(2)]).unwrap();
        assert_eq!(w.archived_below(), LId(3));
        let r = ArchiveReader::open(&path).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(&r.read(LId(1)).unwrap().record.body[..], b"r1");
        assert!(matches!(
            r.read(LId(3)),
            Err(ChariotsError::NotYetAvailable(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn archive_rejects_gaps_and_tolerates_rearchive() {
        let path = temp_path("gaps.arc");
        let mut w = ArchiveWriter::open(&path).unwrap();
        w.archive(&[entry(0)]).unwrap();
        // Re-archiving position 0 is a no-op…
        w.archive(&[entry(0), entry(1)]).unwrap();
        assert_eq!(w.archived_below(), LId(2));
        // …but skipping position 2 is an error.
        assert!(matches!(
            w.archive(&[entry(3)]),
            Err(ChariotsError::Storage(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn archive_resumes_after_reopen() {
        let path = temp_path("resume.arc");
        {
            let mut w = ArchiveWriter::open(&path).unwrap();
            w.archive(&[entry(0), entry(1)]).unwrap();
        }
        let mut w = ArchiveWriter::open(&path).unwrap();
        assert_eq!(w.archived_below(), LId(2));
        w.archive(&[entry(2)]).unwrap();
        let r = ArchiveReader::open(&path).unwrap();
        assert_eq!(r.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_archive_reads_nothing() {
        let path = temp_path("empty.arc");
        let _ = ArchiveWriter::open(&path).unwrap();
        let r = ArchiveReader::open(&path).unwrap();
        assert!(r.is_empty());
        assert!(r.read(LId(0)).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reader_serves_reads_with_bounded_cache() {
        let path = temp_path("bounded.arc");
        let mut w = ArchiveWriter::open(&path).unwrap();
        let entries: Vec<Entry> = (0..64).map(entry).collect();
        w.archive(&entries).unwrap();
        let r = ArchiveReader::open(&path).unwrap();
        // Random-access reads hit the offset index, not a resident Vec.
        for lid in [63u64, 0, 31, 7, 63, 0] {
            let e = r.read(LId(lid)).unwrap();
            assert_eq!(e.lid, LId(lid));
            assert_eq!(&e.record.body[..], format!("r{lid}").as_bytes());
        }
        assert!(r.inner.lock().cache.len() <= READER_CACHE_ENTRIES);
        // Streaming iteration sees everything, in order.
        let lids: Vec<u64> = r.iter().map(|e| e.lid.0).collect();
        assert_eq!(lids, (0..64).collect::<Vec<u64>>());
        std::fs::remove_file(&path).unwrap();
    }
}
