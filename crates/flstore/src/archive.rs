//! Cold storage for garbage-collected records (§6.1).
//!
//! "If the user chooses not to garbage collect the records then they may
//! employ a cold storage solution to archive older records." This module
//! provides that tier: before the hot log reclaims a prefix, its entries
//! are appended to an archive file (the same CRC-framed format as the
//! WAL), and an [`ArchiveReader`] serves reads of collected positions —
//! the substrate for the paper's "time travel" and auditing use cases.

use std::path::{Path, PathBuf};

use chariots_types::{ChariotsError, Entry, LId, Result};

use crate::wal::Wal;

/// Append-side handle to an archive file.
#[derive(Debug)]
pub struct ArchiveWriter {
    wal: Wal,
    /// Positions strictly below this have been archived.
    archived_below: LId,
}

impl ArchiveWriter {
    /// Opens (creating if absent) the archive at `path`. Existing frames
    /// are scanned to find where archiving left off.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let archived_below = Wal::replay(&path)?
            .last()
            .map(|e| e.lid.next())
            .unwrap_or(LId::ZERO);
        Ok(ArchiveWriter {
            wal: Wal::open(path)?,
            archived_below,
        })
    }

    /// Archives entries. They must continue the archived prefix in `LId`
    /// order (the GC bound only moves forward, so this is the natural call
    /// pattern); re-archiving already-archived positions is a no-op.
    pub fn archive(&mut self, entries: &[Entry]) -> Result<()> {
        for entry in entries {
            if entry.lid < self.archived_below {
                continue; // idempotent re-archive
            }
            if entry.lid != self.archived_below {
                return Err(ChariotsError::Storage(format!(
                    "archive gap: expected {}, got {}",
                    self.archived_below, entry.lid
                )));
            }
            self.wal.append(entry)?;
            self.archived_below = entry.lid.next();
        }
        self.wal.sync()
    }

    /// Positions strictly below this are safely archived.
    pub fn archived_below(&self) -> LId {
        self.archived_below
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        self.wal.path()
    }
}

/// Read-side handle: loads the archive into memory for position lookups.
/// Archives are cold by definition — opened on demand, not kept hot.
#[derive(Debug)]
pub struct ArchiveReader {
    entries: Vec<Entry>,
}

impl ArchiveReader {
    /// Loads the archive at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(ArchiveReader {
            entries: Wal::replay(path)?,
        })
    }

    /// Reads the archived entry at `lid`.
    pub fn read(&self, lid: LId) -> Result<Entry> {
        // Entries are dense and LId-ordered starting at the first archived
        // position.
        let base = self
            .entries
            .first()
            .map(|e| e.lid)
            .ok_or(ChariotsError::NotYetAvailable(lid))?;
        if lid < base {
            return Err(ChariotsError::GarbageCollected(lid));
        }
        self.entries
            .get((lid.0 - base.0) as usize)
            .filter(|e| e.lid == lid)
            .cloned()
            .ok_or(ChariotsError::NotYetAvailable(lid))
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates archived entries in `LId` order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chariots_types::{DatacenterId, Record, RecordId, TOId, TagSet, VersionVector};

    fn entry(lid: u64) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(0), TOId(lid + 1)),
                VersionVector::new(1),
                TagSet::new(),
                Bytes::from(format!("r{lid}")),
            ),
        )
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chariots-archive-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn archive_and_read_back() {
        let path = temp_path("roundtrip.arc");
        let mut w = ArchiveWriter::open(&path).unwrap();
        w.archive(&[entry(0), entry(1), entry(2)]).unwrap();
        assert_eq!(w.archived_below(), LId(3));
        let r = ArchiveReader::open(&path).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(&r.read(LId(1)).unwrap().record.body[..], b"r1");
        assert!(matches!(
            r.read(LId(3)),
            Err(ChariotsError::NotYetAvailable(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn archive_rejects_gaps_and_tolerates_rearchive() {
        let path = temp_path("gaps.arc");
        let mut w = ArchiveWriter::open(&path).unwrap();
        w.archive(&[entry(0)]).unwrap();
        // Re-archiving position 0 is a no-op…
        w.archive(&[entry(0), entry(1)]).unwrap();
        assert_eq!(w.archived_below(), LId(2));
        // …but skipping position 2 is an error.
        assert!(matches!(
            w.archive(&[entry(3)]),
            Err(ChariotsError::Storage(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn archive_resumes_after_reopen() {
        let path = temp_path("resume.arc");
        {
            let mut w = ArchiveWriter::open(&path).unwrap();
            w.archive(&[entry(0), entry(1)]).unwrap();
        }
        let mut w = ArchiveWriter::open(&path).unwrap();
        assert_eq!(w.archived_below(), LId(2));
        w.archive(&[entry(2)]).unwrap();
        let r = ArchiveReader::open(&path).unwrap();
        assert_eq!(r.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_archive_reads_nothing() {
        let path = temp_path("empty.arc");
        let _ = ArchiveWriter::open(&path).unwrap();
        let r = ArchiveReader::open(&path).unwrap();
        assert!(r.is_empty());
        assert!(r.read(LId(0)).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
