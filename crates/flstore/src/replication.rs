//! Maintainer replica groups: synchronous replication, failure detection
//! hooks, and automatic primary failover.
//!
//! The paper's FLStore persists each log range on exactly one maintainer;
//! a crashed maintainer therefore stalls the Head of the Log until it
//! recovers (§5.4 discusses the HL, not maintainer fault tolerance). This
//! module adds the missing availability story: every maintainer id is
//! backed by a *replica group* of `f + 1` interchangeable replicas sharing
//! that id. One replica acts as **primary** — it self-assigns positions,
//! gossips the group frontier, and acks an append only after pushing it to
//! every live backup. Backups persist replicated entries in their own WALs
//! and serve reads when the primary is unreachable.
//!
//! Failover is driven by a heartbeat [`FailureDetector`]
//! (crate `chariots-simnet`): when the detector suspects a primary, the
//! [`Controller`](crate::Controller) promotes the most caught-up live
//! backup and bumps the group's [`Generation`]. Requests stamped with an
//! older generation are *fenced* ([`ChariotsError::Fenced`]), so a deposed
//! primary cannot ack writes the new primary will never see. Because every
//! [`ReplicaGroupHandle`] clone shares one [`GroupState`], sessions held by
//! clients and by the Chariots store stage re-route transparently the
//! moment the promotion lands.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chariots_simnet::{Counter, EventJournal, EventKind, FailureDetector, Gauge, ServiceStation};
use chariots_types::{
    ChariotsError, CommitMode, Entry, Generation, LId, MaintainerId, Result, TOId,
};
use parking_lot::RwLock;

use crate::maintainer::{AppendPayload, MaintainerStats};
use crate::node::MaintainerHandle;
use crate::range::RangeMap;

pub mod commit;

use commit::{CommitTracker, ResolvedCommit};

/// The failure-detector key of one replica, e.g. `"M1.r0"`.
pub fn replica_key(group: MaintainerId, index: usize) -> String {
    format!("{group}.r{index}")
}

/// Shared control state of one replica group: who is primary, the fencing
/// generation, and the endpoint of every replica. All clones of a group's
/// [`ReplicaGroupHandle`] — and the replicas themselves — observe the same
/// instance, which is what makes failover take effect everywhere at once.
#[derive(Debug)]
pub struct GroupState {
    group: MaintainerId,
    primary: AtomicUsize,
    generation: AtomicU64,
    replicas: RwLock<Vec<MaintainerHandle>>,
    commit: CommitTracker,
}

impl GroupState {
    /// Fresh state for group `group`: replica 0 is primary, generation 0,
    /// no endpoints registered yet (the topology is cyclic, so endpoints
    /// arrive via [`GroupState::set_replicas`] after spawn).
    pub fn new(group: MaintainerId) -> Self {
        GroupState {
            group,
            primary: AtomicUsize::new(0),
            generation: AtomicU64::new(Generation::INITIAL.as_u64()),
            replicas: RwLock::new(Vec::new()),
            commit: CommitTracker::new(group),
        }
    }

    /// The maintainer id all replicas of this group share.
    pub fn group(&self) -> MaintainerId {
        self.group
    }

    /// Index of the replica currently acting as primary.
    pub fn primary_index(&self) -> usize {
        self.primary.load(Ordering::Acquire)
    }

    /// Whether replica `index` is the current primary.
    pub fn is_primary(&self, index: usize) -> bool {
        self.primary_index() == index
    }

    /// The generation under which replica `index` currently holds primacy,
    /// or `None` if it is not primary. Unlike reading [`Self::is_primary`]
    /// and [`Self::generation`] separately, the two are observed
    /// consistently: a concurrent [`Self::promote`] (which bumps the
    /// generation before moving the seat) can never yield "primary under
    /// the *new* generation" to the replica being deposed.
    pub fn primary_generation(&self, index: usize) -> Option<Generation> {
        loop {
            let before = self.generation();
            if !self.is_primary(index) {
                return None;
            }
            if self.generation() == before {
                return Some(before);
            }
            // A promotion landed between the two reads; retry.
        }
    }

    /// The group's current fencing generation.
    pub fn generation(&self) -> Generation {
        Generation(self.generation.load(Ordering::Acquire))
    }

    /// Registers the replica endpoints (called once after spawn).
    pub fn set_replicas(&self, replicas: Vec<MaintainerHandle>) {
        *self.replicas.write() = replicas;
    }

    /// Snapshot of all replica endpoints.
    pub fn replicas(&self) -> Vec<MaintainerHandle> {
        self.replicas.read().clone()
    }

    /// Endpoint of replica `index`, if registered.
    pub fn replica(&self, index: usize) -> Option<MaintainerHandle> {
        self.replicas.read().get(index).cloned()
    }

    /// Endpoint of the current primary, if registered.
    pub fn primary_handle(&self) -> Option<MaintainerHandle> {
        self.replica(self.primary_index())
    }

    /// Number of replicas in the group.
    pub fn replica_count(&self) -> usize {
        self.replicas.read().len()
    }

    /// Promotes replica `index` to primary and bumps the generation,
    /// fencing every request stamped with the old one — including every
    /// pipelined batch still awaiting quorum under the old generation.
    /// Returns the new generation.
    pub fn promote(&self, index: usize) -> Generation {
        // Generation first: a deposed primary that still sees itself as
        // primary for an instant will have its replication fenced.
        let g = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.primary.store(index, Ordering::Release);
        let new_gen = Generation(g);
        let fenced = self.commit.fence(new_gen);
        self.finish(fenced);
        new_gen
    }

    /// The group's pipelined-commit ledger.
    pub fn commit(&self) -> &CommitTracker {
        &self.commit
    }

    /// Raises replica `index`'s durable watermark (highest contiguous
    /// fsynced frontier) — the state failover promotes by.
    pub fn note_durable(&self, index: usize, frontier: LId) {
        self.commit.note_durable(index, frontier);
    }

    /// A backup reports batch `seq` durable at `frontier`. Resolves the
    /// batch if this ack completes its quorum.
    pub fn report_commit_ack(&self, index: usize, seq: u64, frontier: LId) {
        self.commit.note_durable(index, frontier);
        let resolved = self.commit.report_ack(index, seq);
        self.finish(resolved.into_iter().collect());
    }

    /// A replica reports batch `seq` failed on its seat (send error,
    /// fencing, or sync failure). Resolves the batch as quorum-lost if too
    /// few participants remain.
    pub fn report_commit_failure(&self, index: usize, seq: u64) {
        let resolved = self.commit.report_failure(index, seq);
        self.finish(resolved.into_iter().collect());
    }

    /// The primary reports its own WAL fsync done for batch `seq`.
    pub fn report_primary_durable(&self, index: usize, seq: u64, fsync_us: u64, frontier: LId) {
        self.commit.note_durable(index, frontier);
        let resolved = self.commit.report_primary_durable(index, seq, fsync_us);
        self.finish(resolved.into_iter().collect());
    }

    /// Fails every in-flight pipelined batch with `err` (replica loop
    /// shutdown — nobody is left to ack, so waiters must not hang).
    pub fn abort_pending(&self, err: ChariotsError) {
        let resolved = self.commit.abort(err);
        self.finish(resolved);
    }

    /// Completes resolved batches outside the tracker lock, re-checking
    /// fencing first: a batch whose quorum arrived *after* a promotion
    /// deposed its primary must not ack — the new primary may assign those
    /// positions to different records.
    fn finish(&self, resolved: Vec<ResolvedCommit>) {
        for ResolvedCommit { batch, outcome } in resolved {
            let outcome = if outcome.is_ok()
                && self.primary_generation(batch.primary) != Some(batch.generation)
            {
                Err(ChariotsError::Fenced {
                    group: self.group,
                    sent: batch.generation,
                    current: self.generation(),
                })
            } else {
                outcome
            };
            let orphans = batch.complete(outcome);
            if !orphans.is_empty() {
                self.commit.park_orphans(orphans);
            }
        }
    }
}

/// Per-replica wiring a maintainer node needs to participate in its group:
/// which group, which seat, and how to report liveness.
#[derive(Clone)]
pub struct ReplicaCtx {
    /// The group's shared control state.
    pub group: Arc<GroupState>,
    /// This replica's index within the group.
    pub index: usize,
    /// Failure detector to heartbeat into (`None` outside deployments).
    pub detector: Option<FailureDetector>,
    /// Liveness reporting period.
    pub heartbeat_interval: Duration,
    /// How an acting primary commits batches: serially (fsync, then
    /// replicate, then ack) or pipelined at f+1 durable copies.
    pub commit_mode: CommitMode,
}

impl ReplicaCtx {
    /// Wiring for a single-replica (unreplicated) group — the legacy
    /// standalone-maintainer shape used by tests and benches. There are no
    /// backups to overlap with, so the commit mode is serial.
    pub fn solo(group: Arc<GroupState>) -> Self {
        ReplicaCtx {
            group,
            index: 0,
            detector: None,
            heartbeat_interval: Duration::from_millis(5),
            commit_mode: CommitMode::Serial,
        }
    }

    /// This replica's failure-detector key.
    pub fn key(&self) -> String {
        replica_key(self.group.group(), self.index)
    }
}

/// Client-side handle to a replica group. It exposes the same surface as a
/// single [`MaintainerHandle`] — callers address "maintainer M*i*" exactly
/// as before — but routes every request according to the group's live
/// primary, falling back to backups where that preserves availability.
/// Cheap to clone; all clones share the group state, so a failover
/// re-routes every session at once.
#[derive(Clone)]
pub struct ReplicaGroupHandle {
    /// The maintainer id this group serves.
    pub id: MaintainerId,
    state: Arc<GroupState>,
    appended: Counter,
}

impl fmt::Debug for ReplicaGroupHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaGroupHandle")
            .field("id", &self.id)
            .field("primary", &self.state.primary_index())
            .field("generation", &self.state.generation())
            .field("replicas", &self.state.replica_count())
            .finish()
    }
}

impl ReplicaGroupHandle {
    /// Wraps registered group state into a routable handle. `appended` is
    /// the group-level appended counter (incremented by whichever replica
    /// is acting primary).
    pub fn new(id: MaintainerId, state: Arc<GroupState>, appended: Counter) -> Self {
        ReplicaGroupHandle {
            id,
            state,
            appended,
        }
    }

    /// Wraps one already-spawned standalone maintainer as a single-replica
    /// group (no replication, no failover — the legacy shape).
    pub fn solo(handle: MaintainerHandle) -> Self {
        let state = Arc::new(GroupState::new(handle.id));
        let appended = handle.appended_counter();
        state.set_replicas(vec![handle.clone()]);
        ReplicaGroupHandle {
            id: handle.id,
            state,
            appended,
        }
    }

    /// The group's shared control state.
    pub fn state(&self) -> Arc<GroupState> {
        Arc::clone(&self.state)
    }

    /// The group's current fencing generation.
    pub fn generation(&self) -> Generation {
        self.state.generation()
    }

    /// Snapshot of the group's replica endpoints.
    pub fn replicas(&self) -> Vec<MaintainerHandle> {
        self.state.replicas()
    }

    fn primary(&self) -> Result<MaintainerHandle> {
        self.state
            .primary_handle()
            .ok_or(ChariotsError::NoLivePrimary(self.id))
    }

    /// A target for pre-assigned stores: the primary if its machine is up,
    /// otherwise any live backup — positions committed upstream by the
    /// queues' token must not park in a dead node's buffer.
    fn live_for_store(&self) -> Result<MaintainerHandle> {
        let primary = self.primary()?;
        if !primary.station().is_crashed() {
            return Ok(primary);
        }
        for replica in self.state.replicas() {
            if !replica.station().is_crashed() {
                return Ok(replica);
            }
        }
        // Every replica is down: behave like the unreplicated store (the
        // primary's node buffers the entries until recovery).
        Ok(primary)
    }

    /// Fire-and-forget append to the current primary.
    pub fn append_async(&self, payloads: Vec<AppendPayload>) -> bool {
        match self.primary() {
            Ok(p) => p.append_async(payloads),
            Err(_) => false,
        }
    }

    /// Append through the current primary and wait for the assigned
    /// `(TOId, LId)` pairs. Acked only after the primary replicated the
    /// records to every live backup.
    pub fn append(&self, payloads: Vec<AppendPayload>) -> Result<Vec<(TOId, LId)>> {
        self.primary()?.append(payloads)
    }

    /// Explicit-order append with a minimum bound, via the primary.
    pub fn append_min_bound(
        &self,
        payload: AppendPayload,
        min: LId,
    ) -> Result<Option<(TOId, LId)>> {
        self.primary()?.append_min_bound(payload, min)
    }

    /// Store pre-routed entries (Chariots queues stage) on the group.
    pub fn store(&self, entries: Vec<Entry>) -> bool {
        match self.live_for_store() {
            Ok(target) => target.store(entries),
            Err(_) => false,
        }
    }

    /// Read one position, falling back to backups if the primary's machine
    /// is unavailable.
    pub fn read(&self, lid: LId, enforce_hl: bool) -> Result<Entry> {
        let primary_index = self.state.primary_index();
        let mut last = ChariotsError::NoLivePrimary(self.id);
        let replicas = self.state.replicas();
        // Primary first, then the backups in seat order.
        let order = std::iter::once(primary_index)
            .chain((0..replicas.len()).filter(|&i| i != primary_index));
        for i in order {
            let Some(replica) = replicas.get(i) else {
                continue;
            };
            match replica.read(lid, enforce_hl) {
                Ok(entry) => return Ok(entry),
                // Keep falling back: the replica may be down (Unavailable)
                // or simply lagging (NotYetAvailable) while a later one —
                // e.g. a more caught-up backup — holds the entry.
                Err(e @ (ChariotsError::Unavailable(_) | ChariotsError::NotYetAvailable(_))) => {
                    last = e
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Read several positions in one round trip per replica, with the same
    /// per-position fallback semantics as [`read`](Self::read): positions a
    /// replica refuses as `Unavailable` or `NotYetAvailable` are retried
    /// against the backups in seat order, while every other outcome (the
    /// entry, `GarbageCollected`, `WrongMaintainer`, …) is final. Returns
    /// one result per requested position, in request order.
    pub fn read_batch(&self, lids: &[LId], enforce_hl: bool) -> Vec<Result<Entry>> {
        let mut results: Vec<Option<Result<Entry>>> = lids.iter().map(|_| None).collect();
        let mut pending: Vec<usize> = (0..lids.len()).collect();
        let mut last = ChariotsError::NoLivePrimary(self.id);
        let primary_index = self.state.primary_index();
        let replicas = self.state.replicas();
        // Primary first, then the backups in seat order.
        let order = std::iter::once(primary_index)
            .chain((0..replicas.len()).filter(|&i| i != primary_index));
        for i in order {
            if pending.is_empty() {
                break;
            }
            let Some(replica) = replicas.get(i) else {
                continue;
            };
            let batch: Vec<LId> = pending.iter().map(|&p| lids[p]).collect();
            match replica.read_batch(batch, enforce_hl) {
                Ok(batch_results) => {
                    let mut still = Vec::new();
                    for (&p, r) in pending.iter().zip(batch_results) {
                        match r {
                            // Keep falling back, exactly as the single-read
                            // path does: down (Unavailable) or lagging
                            // (NotYetAvailable) replicas may be covered by
                            // a later, more caught-up seat.
                            Err(
                                e @ (ChariotsError::Unavailable(_)
                                | ChariotsError::NotYetAvailable(_)),
                            ) => {
                                last = e;
                                still.push(p);
                            }
                            other => results[p] = Some(other),
                        }
                    }
                    pending = still;
                }
                // The node is gone entirely: like the single-read path,
                // a dead channel is final, not a fallback trigger.
                Err(e) => {
                    for p in pending.drain(..) {
                        results[p] = Some(Err(e.clone()));
                    }
                }
            }
        }
        for p in pending {
            results[p] = Some(Err(last.clone()));
        }
        results
            .into_iter()
            .map(|r| r.expect("every position resolved"))
            .collect()
    }

    /// Scan owned entries with `lid ≥ from` (served by the primary).
    pub fn scan(&self, from: LId, max: usize) -> Result<Vec<Entry>> {
        self.primary()?.scan(from, max)
    }

    /// The group's view of the Head of the Log (served by the primary).
    pub fn head_of_log(&self) -> Result<LId> {
        self.primary()?.head_of_log()
    }

    /// Live counters (served by the primary).
    pub fn stats(&self) -> Result<MaintainerStats> {
        self.primary()?.stats()
    }

    /// Injects gossip into every replica, so backups track the Head of the
    /// Log and can serve HL-gated reads during failover.
    pub fn gossip_in(&self, from: MaintainerId, frontier: LId) {
        for replica in self.state.replicas() {
            replica.gossip_in(from, frontier);
        }
    }

    /// Announces a future reassignment to every replica.
    pub fn announce_epoch(&self, start: LId, map: RangeMap) {
        for replica in self.state.replicas() {
            replica.announce_epoch(start, map);
        }
    }

    /// Requests garbage collection below `before` on every replica.
    pub fn gc(&self, before: LId) {
        for replica in self.state.replicas() {
            replica.gc(before);
        }
    }

    /// Crashes the current primary's machine (fault injection). Backups
    /// stay up; the failure detector notices and the controller fails over.
    pub fn crash(&self) {
        if let Some(primary) = self.state.primary_handle() {
            primary.crash();
        }
    }

    /// Recovers every crashed replica of the group.
    pub fn recover(&self) {
        for replica in self.state.replicas() {
            replica.recover();
        }
    }

    /// Total records appended+stored through the group (shared counter,
    /// incremented only by the acting primary — replication is not double
    /// counted).
    pub fn appended_counter(&self) -> Counter {
        self.appended.clone()
    }

    /// The station of the current primary's machine.
    pub fn station(&self) -> Arc<ServiceStation> {
        match self.state.primary_handle() {
            Some(primary) => primary.station(),
            // No endpoints registered yet: a parked station that never
            // serves. Deployments always register before exposing handles.
            None => Arc::new(ServiceStation::new(
                format!("{}-unwired", self.id),
                chariots_simnet::StationConfig::uncapped(),
            )),
        }
    }
}

/// One failover sweep: for every group whose primary the detector
/// suspects, promote the most caught-up live backup through the group
/// state and count the event. Returns how many promotions happened.
///
/// The decision inputs are per-replica: a candidate must be unsuspected,
/// its machine must be up, and among such candidates the one with the
/// highest **durable watermark** wins — the commit tracker's record of the
/// highest contiguous frontier that seat has fsynced (falling back to the
/// seat's self-reported durable frontier). A pipelined batch is only
/// promised to survive on seats that reported it durable, so promoting by
/// volatile frontier could seat a primary missing acked records.
///
/// Each promotion publishes a [`EventKind::FailoverStart`] /
/// [`EventKind::FailoverEnd`] pair plus a [`EventKind::Fencing`] event
/// into `journal`. The reported promotion latency is how long the group
/// ran without an acting primary: the time from the silent primary
/// crossing the suspicion threshold to the promotion landing.
pub fn run_failover(
    groups: &[ReplicaGroupHandle],
    detector: &FailureDetector,
    failovers: &Counter,
    journal: &EventJournal,
) -> usize {
    let mut promoted = 0;
    for group in groups {
        let state = group.state();
        let replicas = state.replicas();
        if replicas.len() < 2 {
            continue;
        }
        let primary_index = state.primary_index();
        let key = replica_key(group.id, primary_index);
        if !detector.is_suspected(&key) {
            continue;
        }
        let mut best: Option<(usize, LId)> = None;
        for (i, replica) in replicas.iter().enumerate() {
            if i == primary_index
                || replica.station().is_crashed()
                || detector.is_suspected(&replica_key(group.id, i))
            {
                continue;
            }
            // Promote by durable watermark, not the volatile frontier: a
            // backup may have applied entries whose fsync failed, and a
            // pipelined batch is only promised to survive on seats that
            // reported it durable.
            let watermark = state.commit().durable_frontier(i).unwrap_or(LId::ZERO).max(
                replica
                    .stats()
                    .map(|s| s.durable_frontier)
                    .unwrap_or(LId::ZERO),
            );
            if best.is_none_or(|(_, f)| watermark > f) {
                best = Some((i, watermark));
            }
        }
        if let Some((index, _)) = best {
            let source = format!("flstore.{}", group.id);
            let gid = group.id.0 as u64;
            journal.publish(&source, None, EventKind::FailoverStart { group: gid });
            let generation = state.promote(index);
            let latency = detector
                .last_heartbeat_age(&key)
                .map(|age| age.saturating_sub(detector.suspicion_timeout()))
                .unwrap_or_default();
            journal.publish(
                &source,
                None,
                EventKind::FailoverEnd {
                    group: gid,
                    new_primary: index as u64,
                    promotion_latency_us: latency.as_micros() as u64,
                },
            );
            journal.publish(
                &source,
                None,
                EventKind::Fencing {
                    group: gid,
                    generation: generation.as_u64(),
                },
            );
            failovers.add(1);
            promoted += 1;
        }
    }
    promoted
}

/// One anti-entropy sweep: for every group, copy the missing suffix from
/// the authoritative live replica into every lagging live replica (in
/// `batch`-entry chunks), and report the worst observed lag — in log
/// positions — through the `lag` gauge. This is both how a restarted
/// replica catches up after WAL replay and how a primary that missed
/// stores during a brief outage is made whole again.
///
/// The source is the *current primary* whenever its machine is live — a
/// recovered deposed primary may hold a longer local log whose tail was
/// never acked (fenced mid-flight), and picking it by frontier alone would
/// resurrect those stale entries over the new primary's assignments. Only
/// when the primary's machine is down does the sweep fall back to the
/// highest live frontier.
pub fn run_repair(groups: &[ReplicaGroupHandle], batch: usize, lag: &Gauge) {
    let mut worst_lag = 0u64;
    for group in groups {
        let state = group.state();
        let replicas = state.replicas();
        if replicas.len() < 2 {
            continue;
        }
        let mut frontiers: Vec<(usize, LId)> = Vec::new();
        for (i, replica) in replicas.iter().enumerate() {
            if replica.station().is_crashed() {
                continue;
            }
            if let Ok(stats) = replica.stats() {
                frontiers.push((i, stats.frontier));
            }
        }
        let primary_index = state.primary_index();
        let Some(&(source, top)) = frontiers
            .iter()
            .find(|&&(i, _)| i == primary_index)
            .or_else(|| frontiers.iter().max_by_key(|&&(_, f)| f))
        else {
            continue;
        };
        let generation = state.generation();
        for &(i, frontier) in &frontiers {
            if i == source || frontier >= top {
                continue;
            }
            worst_lag = worst_lag.max(top.0 - frontier.0);
            if let Ok(missing) = replicas[source].scan(frontier, batch) {
                if !missing.is_empty() {
                    let _ = replicas[i].replicate(missing.into(), generation);
                }
            }
        }
    }
    lag.set(worst_lag as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochJournal;
    use crate::maintainer::MaintainerCore;
    use crate::node::{spawn_replica, BatchPolicy, Fabric};
    use bytes::Bytes;
    use chariots_simnet::{Shutdown, StationConfig};
    use chariots_types::{DatacenterId, TagSet};

    fn payload(s: &str) -> AppendPayload {
        AppendPayload::new(TagSet::new(), Bytes::copy_from_slice(s.as_bytes()))
    }

    /// Spawns one replicated group of `n` replicas over a single-maintainer
    /// striping and returns (handle, shutdown, threads).
    fn launch_group(
        n: usize,
    ) -> (
        ReplicaGroupHandle,
        Shutdown,
        Vec<std::thread::JoinHandle<MaintainerCore>>,
    ) {
        let journal = EpochJournal::new(RangeMap::new(1, 10));
        let fabric = Fabric::new();
        let shutdown = Shutdown::new();
        let state = Arc::new(GroupState::new(MaintainerId(0)));
        let appended = Counter::new();
        let mut raw = Vec::new();
        let mut threads = Vec::new();
        for r in 0..n {
            let core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal.clone());
            let station = Arc::new(ServiceStation::new(
                format!("m0-r{r}"),
                StationConfig::uncapped(),
            ));
            let ctx = ReplicaCtx {
                group: Arc::clone(&state),
                index: r,
                detector: None,
                heartbeat_interval: Duration::from_millis(5),
                commit_mode: CommitMode::PipelinedQuorum,
            };
            let (h, t) = spawn_replica(
                core,
                station,
                fabric.clone(),
                Duration::from_millis(1),
                shutdown.clone(),
                ctx,
                appended.clone(),
                BatchPolicy::default(),
            );
            raw.push(h);
            threads.push(t);
        }
        state.set_replicas(raw);
        let group = ReplicaGroupHandle::new(MaintainerId(0), state, appended);
        fabric.set_peers(vec![group.clone()]);
        (group, shutdown, threads)
    }

    #[test]
    fn appends_reach_every_replica_before_ack() {
        let (group, shutdown, threads) = launch_group(2);
        let ids = group.append(vec![payload("a"), payload("b")]).unwrap();
        assert_eq!(ids.len(), 2);
        // Synchronous replication: by ack time both replicas hold both
        // entries — no sleeping, no retries.
        for replica in group.replicas() {
            for (_, lid) in &ids {
                let e = replica.read(*lid, false).unwrap();
                assert_eq!(e.lid, *lid);
            }
        }
        assert_eq!(
            group.appended_counter().get(),
            2,
            "counted once, not per replica"
        );
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn promotion_bumps_generation_and_fences_the_old_one() {
        let (group, shutdown, threads) = launch_group(2);
        group.append(vec![payload("a")]).unwrap();
        let old_gen = group.generation();
        let new_gen = group.state().promote(1);
        assert_eq!(new_gen, old_gen.next());
        // A replicate stamped with the stale generation is fenced.
        let entry = group.replicas()[1].read(LId(0), false).unwrap();
        let err = group.replicas()[0]
            .replicate(vec![entry].into(), old_gen)
            .unwrap_err();
        assert!(matches!(err, ChariotsError::Fenced { .. }), "got {err:?}");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn promoted_backup_serves_appends_after_primary_crash() {
        let (group, shutdown, threads) = launch_group(2);
        let before = group.append(vec![payload("a"), payload("b")]).unwrap();
        assert_eq!(before.len(), 2);
        // Kill the primary's machine and promote the backup, as the
        // controller's failover would.
        group.crash();
        group.state().promote(1);
        // The group keeps accepting appends, resuming after the replicated
        // suffix instead of re-assigning positions.
        let after = group.append(vec![payload("c")]).unwrap();
        assert_eq!(
            after[0].1,
            LId(2),
            "assignment resumed past replicated entries"
        );
        let e = group.read(LId(2), false).unwrap();
        assert_eq!(&e.record.body[..], b"c");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn run_failover_promotes_most_caught_up_backup() {
        let (group, shutdown, threads) = launch_group(3);
        group.append(vec![payload("a"), payload("b")]).unwrap();
        let detector = FailureDetector::new(Duration::from_millis(20));
        // Heartbeat the backups so only the primary is suspected; never
        // beat the primary's key.
        detector.register(&replica_key(MaintainerId(0), 0));
        group.crash();
        let failovers = Counter::new();
        let journal = EventJournal::default();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            detector.heartbeat(&replica_key(MaintainerId(0), 1));
            detector.heartbeat(&replica_key(MaintainerId(0), 2));
            let groups = [group.clone()];
            if run_failover(&groups, &detector, &failovers, &journal) > 0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never promoted");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_ne!(group.state().primary_index(), 0);
        assert_eq!(failovers.get(), 1);
        assert_eq!(group.generation(), Generation(1));
        // The promotion left its structured trail: start, end (with the
        // promotion latency), and the fencing bump.
        let events = journal.recent(8);
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::FailoverStart { group: 0 })));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::FailoverEnd {
                group: 0,
                new_primary: _,
                promotion_latency_us: _,
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::Fencing {
                group: 0,
                generation: 1,
            }
        )));
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn repair_sources_from_the_primary_not_a_longer_deposed_log() {
        let (group, shutdown, threads) = launch_group(2);
        // a, b reach both replicas; c, d only the primary (backup down).
        group.append(vec![payload("a"), payload("b")]).unwrap();
        group.replicas()[1].crash();
        group.append(vec![payload("c"), payload("d")]).unwrap();
        // Fail over to the backup: the deposed replica now holds a longer
        // local log (frontier 4) than the new primary (frontier 2), but
        // its tail was never replicated under the current generation.
        group.replicas()[1].recover();
        group.state().promote(1);
        let lag = Gauge::new();
        let groups = [group.clone()];
        run_repair(&groups, 64, &lag);
        // The stale tail is NOT resurrected onto the new primary: repair
        // sources from the current primary, not the highest frontier.
        assert!(matches!(
            group.replicas()[1].read(LId(2), false),
            Err(ChariotsError::NotYetAvailable(_))
        ));
        // The new primary reassigns position 2; replication overwrites the
        // deposed replica's stale copy.
        let after = group.append(vec![payload("e")]).unwrap();
        assert_eq!(after[0].1, LId(2));
        let stale = group.replicas()[0].read(LId(2), false).unwrap();
        assert_eq!(&stale.record.body[..], b"e", "stale copy overwritten");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn read_falls_back_past_a_lagging_primary() {
        let (group, shutdown, threads) = launch_group(2);
        // The backup misses position 0 (down during the append), then
        // comes back and is promoted before catching up.
        group.replicas()[1].crash();
        group.append(vec![payload("a")]).unwrap();
        group.replicas()[1].recover();
        group.state().promote(1);
        // The lagging new primary answers NotYetAvailable; the group read
        // falls back to the caught-up replica instead of surfacing it.
        let e = group.read(LId(0), false).unwrap();
        assert_eq!(&e.record.body[..], b"a");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn run_repair_catches_a_lagging_replica_up() {
        let (group, shutdown, threads) = launch_group(2);
        // Lag the backup: crash it, append through the primary (which
        // skips crashed backups), then bring it back empty-handed.
        group.replicas()[1].crash();
        group
            .append(vec![payload("a"), payload("b"), payload("c")])
            .unwrap();
        group.replicas()[1].recover();
        let lag = Gauge::new();
        let groups = [group.clone()];
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            run_repair(&groups, 64, &lag);
            let f = group.replicas()[1].stats().unwrap().frontier;
            if f >= LId(3) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "backup never caught up"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let e = group.replicas()[1].read(LId(2), false).unwrap();
        assert_eq!(&e.record.body[..], b"c");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }
}
