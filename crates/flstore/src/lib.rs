//! # chariots-flstore
//!
//! **FLStore** — the Fractal Log Store: a distributed, deterministic shared
//! log that scales beyond a single machine (Section 5 of *Chariots*, EDBT
//! 2015).
//!
//! The key idea is **post-assignment**: instead of a centralized sequencer
//! pre-assigning log positions (CORFU's bottleneck), clients send records to
//! any log maintainer, and the maintainer assigns "the next available log
//! position from log positions under its control". Ownership of positions
//! round-robins across maintainers in batches ([`range`]), so maintainers
//! share nothing on the append path and throughput scales with machines.
//!
//! Post-assignment creates two challenges, both solved here as in the
//! paper:
//!
//! * **Temporary gaps** — a fast maintainer runs ahead of a slow one;
//!   fixed-size Head-of-Log gossip ([`gossip`]) tells readers how far the
//!   log is gap-free.
//! * **Explicit ordering** — clients that need one append after another
//!   either pin a maintainer (FIFO per maintainer) or attach a minimum
//!   bound that parks the record until its position must exceed the bound
//!   ([`maintainer`]).
//!
//! The crate also provides tag [`indexer`]s, the stateless [`controller`]
//! oracle, WAL persistence with crash recovery ([`wal`]), live elasticity
//! through the epoch journal ([`epoch`]), and the linked client library
//! ([`client`]). [`deployment::FLStore`] wires a full single-datacenter
//! instance.
//!
//! ```
//! use chariots_flstore::FLStore;
//! use chariots_types::{DatacenterId, FLStoreConfig, TagSet};
//!
//! let store = FLStore::launch(
//!     DatacenterId(0),
//!     FLStoreConfig::new().maintainers(3).batch_size(100),
//! ).unwrap();
//! let mut client = store.client();
//! let (toid, lid) = client.append(TagSet::new(), "hello shared log").unwrap();
//! assert_eq!(u64::from(toid.0), lid.0 + 1);
//! store.shutdown();
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod client;
pub mod controller;
pub mod deployment;
pub mod epoch;
pub mod gossip;
pub mod indexer;
pub mod maintainer;
pub mod node;
pub mod range;
pub mod replication;
pub mod segment;
pub mod wal;

pub use archive::{ArchiveReader, ArchiveWriter};
pub use client::{AppendRouting, FLStoreClient, ReadObs};
pub use controller::{Controller, Session};
pub use deployment::FLStore;
pub use epoch::{EpochAssignment, EpochJournal};
pub use gossip::HlVector;
pub use indexer::{indexer_for, IndexerCore, Posting};
pub use maintainer::{
    AppendPayload, CheckpointInfo, MaintainerCore, MaintainerStats, RecoveryStats, StorageStats,
};
pub use node::{Fabric, FabricObs, IndexerHandle, MaintainerHandle};
pub use range::RangeMap;
pub use replication::{
    replica_key, run_failover, run_repair, GroupState, ReplicaCtx, ReplicaGroupHandle,
};
pub use wal::{CompactionStats, SegmentInfo, Wal, WalPosition, WalReplay, DEFAULT_SEGMENT_BYTES};

#[cfg(test)]
mod deployment_tests {
    use super::*;
    use chariots_types::{
        Condition, DatacenterId, FLStoreConfig, LId, ReadRule, Tag, TagSet, TagValue,
        ValuePredicate,
    };
    use std::time::{Duration, Instant};

    fn small_cfg() -> FLStoreConfig {
        FLStoreConfig::new()
            .maintainers(3)
            .batch_size(4)
            .gossip_interval(Duration::from_millis(1))
    }

    fn wait_for_hl(client: &mut FLStoreClient, at_least: LId) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if client.head_of_log().unwrap() >= at_least {
                return;
            }
            assert!(Instant::now() < deadline, "HL stuck below {at_least}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn appends_fill_log_densely_across_maintainers() {
        let store = FLStore::launch(DatacenterId(0), small_cfg()).unwrap();
        let mut client = store.client();
        let mut assigned = Vec::new();
        for i in 0..24 {
            let (_, lid) = client.append(TagSet::new(), format!("r{i}")).unwrap();
            assigned.push(lid);
        }
        // Round-robin routing spreads appends evenly (8 per maintainer =
        // two rounds of 4), so all 24 global positions 0..24 are filled.
        let mut sorted = assigned.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 24, "no duplicate positions");
        assert_eq!(sorted.first(), Some(&LId(0)));
        assert_eq!(sorted.last(), Some(&LId(23)));
        wait_for_hl(&mut client, LId(24));
        for lid in sorted {
            assert!(client.read(lid).is_ok(), "gap at {lid}");
        }
        store.shutdown();
    }

    #[test]
    fn hl_blocks_reads_past_gaps() {
        let store = FLStore::launch(DatacenterId(0), small_cfg()).unwrap();
        let mut client = store.client();
        // Pin all appends to maintainer 0: maintainers 1 and 2 never fill
        // their rounds, so HL stays at most at the end of M0's first round…
        let mut pinned = store.client().with_routing(AppendRouting::Pinned(0));
        for i in 0..8 {
            pinned.append(TagSet::new(), format!("r{i}")).unwrap();
        }
        wait_for_hl(&mut client, LId(4));
        // M0's second round (positions 12..16) is filled but unreadable:
        // positions 4..12 (M1, M2) are gaps.
        let hl = client.head_of_log().unwrap();
        assert_eq!(hl, LId(4), "HL stops at the first gap");
        assert!(client.read(LId(12)).is_err());
        assert!(client.read(LId(0)).is_ok());
        store.shutdown();
    }

    #[test]
    fn read_rule_by_tag_uses_indexers() {
        let store = FLStore::launch(DatacenterId(0), small_cfg().indexers(2)).unwrap();
        let mut client = store.client();
        for i in 0..12 {
            let key = if i % 2 == 0 { "even" } else { "odd" };
            client
                .append(
                    TagSet::new().with(Tag::with_value(key, i as i64)),
                    format!("r{i}"),
                )
                .unwrap();
        }
        let mut client2 = store.client();
        wait_for_hl(&mut client2, LId(12));
        std::thread::sleep(Duration::from_millis(20)); // indexer ingestion
        let rule = ReadRule::where_(Condition::TagValue(
            "even".into(),
            ValuePredicate::Ge(TagValue::Int(6)),
        ));
        let hits = client2.read_rule(&rule).unwrap();
        let vals: Vec<i64> = hits
            .iter()
            .map(
                |e| match e.record.tags.get("even").unwrap().value.as_ref().unwrap() {
                    TagValue::Int(v) => *v,
                    _ => panic!("int tag"),
                },
            )
            .collect();
        assert_eq!(vals.len(), 3, "6, 8, 10");
        assert!(vals.iter().all(|v| *v >= 6 && v % 2 == 0));
        store.shutdown();
    }

    #[test]
    fn elastic_expansion_preserves_old_reads_and_routes_new_appends() {
        let cfg = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(4)
            .gossip_interval(Duration::from_millis(1));
        let mut store = FLStore::launch(DatacenterId(0), cfg).unwrap();
        let mut client = store.client();
        for i in 0..8 {
            client.append(TagSet::new(), format!("old{i}")).unwrap();
        }
        // Future reassignment at position 16 (past the frontier of 8).
        store.add_maintainer(LId(16)).unwrap();
        let mut client = store.client(); // refreshed session sees 3 maintainers
                                         // Keep appending: round-robin routing does not align exactly with
                                         // per-maintainer slot capacity across the epoch boundary, so the
                                         // Head of the Log advances as traffic flows, not per append count.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut i = 0;
        while client.head_of_log().unwrap() < LId(24) {
            assert!(Instant::now() < deadline, "HL stuck during expansion");
            client.append(TagSet::new(), format!("new{i}")).unwrap();
            i += 1;
            std::thread::sleep(Duration::from_millis(1));
        }
        // Every position 0..24 is readable; old records unchanged.
        for lid in 0..24 {
            let e = client.read(LId(lid)).unwrap();
            assert_eq!(e.lid, LId(lid));
        }
        // The new maintainer actually serves appends in its epoch.
        let m2_appended = store.maintainers()[2].appended_counter().get();
        assert!(m2_appended > 0, "new maintainer never appended");
        store.shutdown();
    }

    #[test]
    fn crash_recovery_from_wal_preserves_log() {
        let tmp = chariots_simnet::TestDir::new("chariots-flstore-recover");
        let dir = tmp.path().to_path_buf();
        let cfg = FLStoreConfig::new()
            .maintainers(2)
            .batch_size(4)
            .gossip_interval(Duration::from_millis(1));
        {
            let store = FLStore::launch_with(
                DatacenterId(0),
                cfg.clone(),
                chariots_simnet::StationConfig::uncapped(),
                Some(dir.clone()),
            )
            .unwrap();
            let mut client = store.client();
            for i in 0..8 {
                client.append(TagSet::new(), format!("r{i}")).unwrap();
            }
            store.shutdown(); // WAL flushed on drop path via append writes
        }
        // Relaunch from the same directory: the WALs replay.
        let store = FLStore::launch_with(
            DatacenterId(0),
            cfg,
            chariots_simnet::StationConfig::uncapped(),
            Some(dir.clone()),
        )
        .unwrap();
        let mut client = store.client();
        wait_for_hl(&mut client, LId(8));
        for lid in 0..8 {
            assert!(client.read(LId(lid)).is_ok(), "lost {lid} across restart");
        }
        // And the log continues where it left off.
        let (_, lid) = client.append(TagSet::new(), "after").unwrap();
        assert!(lid >= LId(8));
        store.shutdown();
    }

    #[test]
    fn gc_reclaims_prefix() {
        let store = FLStore::launch(DatacenterId(0), small_cfg()).unwrap();
        let mut client = store.client();
        for i in 0..12 {
            client.append(TagSet::new(), format!("r{i}")).unwrap();
        }
        wait_for_hl(&mut client, LId(12));
        store.gc_before(LId(6));
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(
            client.read(LId(0)),
            Err(chariots_types::ChariotsError::GarbageCollected(_))
        ));
        assert!(client.read(LId(6)).is_ok());
        store.shutdown();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use bytes::Bytes;
    use chariots_types::{
        DatacenterId, Entry, LId, MaintainerId, Record, RecordId, TOId, TagSet, VersionVector,
    };
    use proptest::prelude::*;

    fn entry(lid: u64) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(0), TOId(lid + 1)),
                VersionVector::new(1),
                TagSet::new(),
                Bytes::from(format!("r{lid}")),
            ),
        )
    }

    proptest! {
        /// The WAL replay of any byte-level corruption never panics and
        /// never yields entries beyond the corrupted point.
        #[test]
        fn wal_replay_survives_arbitrary_corruption(
            n_entries in 1usize..8,
            flip_at in 0usize..2048,
            flip_mask in 1u8..=255,
        ) {
            let dir = chariots_simnet::TestDir::new("chariots-prop-wal");
            let path = dir.path().join("fuzz.wal");
            {
                let mut wal = Wal::open(&path).unwrap();
                for i in 0..n_entries {
                    wal.append(&entry(i as u64)).unwrap();
                }
                wal.sync().unwrap();
            }
            // Corruption lands in the first (and only) segment file; frame
            // data starts past its 48-byte header.
            let seg = Wal::segment_path(&path, 0);
            let mut data = std::fs::read(&seg).unwrap();
            let header = 48usize.min(data.len() - 1);
            let idx = header + flip_at % (data.len() - header);
            data[idx] ^= flip_mask;
            std::fs::write(&seg, &data).unwrap();
            // Must not panic; the intact prefix must be a prefix of the
            // original entries.
            let replayed = Wal::replay(&path).unwrap();
            prop_assert!(replayed.len() <= n_entries);
            for (i, e) in replayed.iter().enumerate() {
                // A flipped byte can only truncate the log, never corrupt
                // a *surviving* frame (CRC catches it) — except the
                // astronomically unlikely CRC collision, which a u8 flip
                // cannot produce.
                prop_assert_eq!(e, &entry(i as u64));
            }
        }

        /// Epoch journals partition the whole log: every position has
        /// exactly one owner under any sequence of future reassignments.
        #[test]
        fn epoch_journal_partitions_positions(
            initial_m in 1usize..5,
            batch in 1u64..32,
            growth in proptest::collection::vec((1u64..200, 1usize..3), 0..4),
            probe in 0u64..2_000,
        ) {
            let mut journal = EpochJournal::new(RangeMap::new(initial_m, batch));
            let mut m = initial_m;
            let mut start = 0u64;
            for (gap, add) in growth {
                start += gap;
                m += add;
                journal.announce(LId(start), RangeMap::new(m, batch));
            }
            let owner = journal.owner_of(LId(probe));
            prop_assert!(owner.index() < m, "owner out of fleet");
            // The owner's local index must map back to the same position.
            let assignment = journal.assignment_at(LId(probe));
            let local = assignment.local_index(owner, LId(probe));
            prop_assert!(local.is_some());
            prop_assert_eq!(assignment.lid_for(owner, local.unwrap()), LId(probe));
        }

        /// The segment store accepts any insertion order of a set of
        /// slots and reports the correct contiguous prefix.
        #[test]
        fn segment_store_prefix_is_order_independent(
            mut slots in proptest::collection::vec(0u64..64, 1..40),
        ) {
            slots.sort_unstable();
            slots.dedup();
            let expected_prefix = {
                let mut p = 0u64;
                while slots.binary_search(&p).is_ok() {
                    p += 1;
                }
                p
            };
            // Insert in the (arbitrary) proptest order…
            let mut store = segment::SegmentStore::new(8);
            let mut shuffled = slots.clone();
            // deterministic pseudo-shuffle
            shuffled.reverse();
            for (i, s) in shuffled.iter().enumerate() {
                if i % 2 == 0 {
                    store.insert(*s, entry(*s)).unwrap();
                }
            }
            for (i, s) in shuffled.iter().enumerate() {
                if i % 2 == 1 {
                    store.insert(*s, entry(*s)).unwrap();
                }
            }
            prop_assert_eq!(store.filled_prefix(), expected_prefix);
            prop_assert_eq!(store.len() as usize, slots.len());
            let got: Vec<u64> = store.iter().map(|(i, _)| i).collect();
            prop_assert_eq!(got, slots);
        }

        /// A maintainer's post-assigned positions are exactly its owned
        /// slots, in order, regardless of batch sizes used for appends.
        #[test]
        fn maintainer_assignment_matches_range_map(
            m_count in 1usize..5,
            batch in 1u64..16,
            appends in proptest::collection::vec(1usize..8, 1..12),
            which in 0u16..5,
        ) {
            let which = MaintainerId(which % m_count as u16);
            let journal = EpochJournal::new(RangeMap::new(m_count, batch));
            let map = RangeMap::new(m_count, batch);
            let mut core = MaintainerCore::new(which, DatacenterId(0), journal);
            let mut assigned = Vec::new();
            for n in appends {
                let payloads = (0..n)
                    .map(|_| AppendPayload::new(TagSet::new(), Bytes::new()))
                    .collect();
                assigned.extend(core.append_batch(payloads).unwrap());
            }
            for (i, entry) in assigned.iter().enumerate() {
                prop_assert_eq!(entry.lid, map.lid_for(which, i as u64));
                prop_assert_eq!(entry.record.toid().0, entry.lid.0 + 1);
            }
        }

        /// Indexer lookups agree with a naive reference model under any
        /// posting order.
        #[test]
        fn indexer_matches_reference_model(
            postings in proptest::collection::vec((0u64..64, -10i64..10), 1..40),
            k in 1usize..8,
        ) {
            use chariots_types::{Limit, TagValue, ValuePredicate};
            let mut ix = IndexerCore::new();
            let mut reference: Vec<(u64, i64)> = Vec::new();
            for (lid, v) in &postings {
                if reference.iter().any(|(l, _)| l == lid) {
                    continue; // one posting per position in this model
                }
                ix.post("k", Some(TagValue::Int(*v)), LId(*lid));
                reference.push((*lid, *v));
            }
            reference.sort_unstable();
            let pred = ValuePredicate::Ge(TagValue::Int(0));
            let got = ix.lookup("k", Some(&pred), None, Limit::MostRecent(k));
            let expected: Vec<LId> = reference
                .iter()
                .rev()
                .filter(|(_, v)| *v >= 0)
                .take(k)
                .map(|(l, _)| LId(*l))
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}

#[cfg(test)]
mod client_semantics_tests {
    use super::*;
    use chariots_types::{DatacenterId, FLStoreConfig, LId, TagSet};
    use std::time::{Duration, Instant};

    fn launch() -> FLStore {
        FLStore::launch(
            DatacenterId(0),
            FLStoreConfig::new()
                .maintainers(3)
                .batch_size(4)
                .gossip_interval(Duration::from_millis(1)),
        )
        .unwrap()
    }

    #[test]
    fn pinned_routing_gives_fifo_positions() {
        // §5.4's first explicit-order technique: "send the appends to the
        // same maintainer in the order wanted. Maintainers ensure that a
        // latter append will have a LId higher than ones received earlier."
        let store = launch();
        let mut client = store.client().with_routing(AppendRouting::Pinned(1));
        let mut last = None;
        for i in 0..10 {
            let (_, lid) = client.append(TagSet::new(), format!("r{i}")).unwrap();
            if let Some(prev) = last {
                assert!(lid > prev, "FIFO violated: {lid} after {prev}");
            }
            last = Some(lid);
        }
        store.shutdown();
    }

    #[test]
    fn append_after_enforces_cross_maintainer_order() {
        // §5.4's second technique: the minimum bound guarantees the second
        // record's position exceeds the first's, even on a different
        // maintainer.
        let store = launch();
        let mut first = store.client().with_routing(AppendRouting::Pinned(2));
        let (_, first_lid) = first.append(TagSet::new(), "earlier").unwrap();
        // Maintainer 0 has assigned nothing yet: its next position (0)
        // would violate the order without the bound.
        let mut second = store.client().with_routing(AppendRouting::Pinned(0));
        let immediate = second
            .append_after(TagSet::new(), "later", first_lid)
            .unwrap();
        match immediate {
            Some((_, lid)) => assert!(lid > first_lid),
            None => {
                // Parked: background traffic must advance maintainer 0
                // past the bound, then the waiter drains.
                let mut traffic = store.client().with_routing(AppendRouting::Pinned(0));
                let deadline = Instant::now() + Duration::from_secs(5);
                let mut released = None;
                while released.is_none() {
                    traffic.append(TagSet::new(), "filler").unwrap();
                    // Find the parked record by scanning for its body.
                    for m in store.maintainers() {
                        for e in m.scan(LId::ZERO, 1000).unwrap() {
                            if &e.record.body[..] == b"later" {
                                released = Some(e.lid);
                            }
                        }
                    }
                    assert!(Instant::now() < deadline, "waiter never released");
                    std::thread::sleep(Duration::from_millis(2));
                }
                assert!(released.unwrap() > first_lid);
            }
        }
        store.shutdown();
    }

    #[test]
    fn approx_records_tracks_appends() {
        let store = launch();
        let mut client = store.client();
        for i in 0..12 {
            client.append(TagSet::new(), format!("r{i}")).unwrap();
        }
        // Sessions snapshot the approximate count at connect time.
        let fresh = store.client();
        assert_eq!(fresh.approx_records(), 12);
        assert_eq!(store.controller().approx_records(), 12);
        store.shutdown();
    }

    #[test]
    fn refresh_session_recovers_from_stale_topology() {
        let cfg = FLStoreConfig::new()
            .maintainers(1)
            .batch_size(4)
            .gossip_interval(Duration::from_millis(1));
        let mut store = FLStore::launch(DatacenterId(0), cfg).unwrap();
        // A client connected before the expansion…
        let mut old_client = store.client();
        for i in 0..4 {
            old_client.append(TagSet::new(), format!("r{i}")).unwrap();
        }
        store.add_maintainer(LId(8)).unwrap();
        // …fills the rest of epoch 0 and crosses into epoch 1. Reads of
        // epoch-1 positions via the stale journal self-heal by refreshing
        // the session (the paper's "if communication problems occur").
        let mut fresh = store.client();
        let deadline = Instant::now() + Duration::from_secs(5);
        while fresh.head_of_log().unwrap() < LId(10) {
            fresh.append(TagSet::new(), "more").unwrap();
            assert!(Instant::now() < deadline, "HL stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        for l in 0..10 {
            old_client
                .read(LId(l))
                .unwrap_or_else(|e| panic!("stale client failed at L{l}: {e}"));
        }
        store.shutdown();
    }
}
