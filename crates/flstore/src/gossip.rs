//! Head-of-Log (HL) gossip: closing temporary gaps for readers (§5.4).
//!
//! "A Log maintainer receiving more records advances in the log ahead of
//! others", leaving *temporary gaps*. Readers must never observe a record at
//! position `i` while a gap exists at some `j < i`. Each maintainer
//! therefore gossips its **frontier** — the smallest global `LId` it owns
//! that is still unfilled; every owned position below the frontier is
//! filled. The minimum frontier across all maintainers is the **Head of the
//! Log**: every position strictly below it is guaranteed readable.
//!
//! The gossip is a fixed-size vector, so its cost is independent of append
//! throughput — the property the paper relies on for scalability.

use chariots_types::{LId, MaintainerId};

/// One maintainer's view of every maintainer's frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HlVector {
    frontiers: Vec<LId>,
}

impl HlVector {
    /// An all-zero vector for `num_maintainers` maintainers ("initially the
    /// vector is initialized to all zeros").
    pub fn new(num_maintainers: usize) -> Self {
        assert!(num_maintainers > 0);
        HlVector {
            frontiers: vec![LId::ZERO; num_maintainers],
        }
    }

    /// Number of maintainers covered.
    pub fn len(&self) -> usize {
        self.frontiers.len()
    }

    /// Never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.frontiers.is_empty()
    }

    /// Records maintainer `m`'s advertised frontier. Frontiers only move
    /// forward; stale gossip (smaller values) is ignored.
    pub fn update(&mut self, m: MaintainerId, frontier: LId) {
        if m.index() >= self.frontiers.len() {
            self.frontiers.resize(m.index() + 1, LId::ZERO);
        }
        if frontier > self.frontiers[m.index()] {
            self.frontiers[m.index()] = frontier;
        }
    }

    /// The frontier last heard from maintainer `m`.
    pub fn get(&self, m: MaintainerId) -> LId {
        self.frontiers.get(m.index()).copied().unwrap_or(LId::ZERO)
    }

    /// The Head of the Log: every position strictly below this is filled at
    /// its owner ("the HL value is equal to the vector entry with the
    /// smallest value").
    pub fn head_of_log(&self) -> LId {
        self.frontiers.iter().copied().min().unwrap_or(LId::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_head_is_zero() {
        let v = HlVector::new(3);
        assert_eq!(v.head_of_log(), LId::ZERO);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn head_is_minimum_frontier() {
        let mut v = HlVector::new(3);
        v.update(MaintainerId(0), LId(3000));
        v.update(MaintainerId(1), LId(1900));
        v.update(MaintainerId(2), LId(2500));
        assert_eq!(v.head_of_log(), LId(1900));
    }

    #[test]
    fn stale_gossip_is_ignored() {
        let mut v = HlVector::new(2);
        v.update(MaintainerId(0), LId(100));
        v.update(MaintainerId(0), LId(50)); // reordered, stale
        assert_eq!(v.get(MaintainerId(0)), LId(100));
    }

    #[test]
    fn update_grows_for_new_maintainers() {
        let mut v = HlVector::new(1);
        v.update(MaintainerId(2), LId(10));
        assert_eq!(v.len(), 3);
        // The new maintainer at index 1 has frontier 0, so HL stays 0.
        assert_eq!(v.head_of_log(), LId::ZERO);
    }

    #[test]
    fn head_advances_only_when_slowest_advances() {
        let mut v = HlVector::new(2);
        v.update(MaintainerId(0), LId(1000));
        assert_eq!(v.head_of_log(), LId::ZERO);
        v.update(MaintainerId(1), LId(400));
        assert_eq!(v.head_of_log(), LId(400));
        v.update(MaintainerId(0), LId(2000));
        assert_eq!(v.head_of_log(), LId(400), "bounded by the slowest");
        v.update(MaintainerId(1), LId(2000));
        assert_eq!(v.head_of_log(), LId(2000));
    }
}
