//! The epoch journal: future reassignment of log ranges for live elasticity
//! (§6.3).
//!
//! Expanding the maintainer fleet changes who champions which `LId`s.
//! Rather than migrating old records, FLStore uses *future reassignment*: a
//! change is announced to take effect at a future log position, and the
//! **epoch journal** records, for every range of the log, the round-robin
//! assignment that was in force when it was written. "These can be used by
//! readers to figure out which log maintainer to ask for an old record."
//!
//! Within epoch *e* starting at position `start_e`, ownership follows the
//! epoch's [`RangeMap`] applied to the *epoch-relative* position
//! `lid − start_e`, so every epoch begins a fresh round-robin pattern at
//! maintainer 0.

use chariots_types::{Epoch, LId, MaintainerId};

use crate::range::RangeMap;

/// One epoch's assignment: from `start` (inclusive) until the next epoch's
/// start, ownership follows `map` on epoch-relative positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochAssignment {
    /// The epoch's sequence number.
    pub epoch: Epoch,
    /// First global position governed by this epoch.
    pub start: LId,
    /// Round-robin striping in force during this epoch.
    pub map: RangeMap,
}

impl EpochAssignment {
    /// Owner of global position `lid` (which must be ≥ `self.start`).
    pub fn owner_of(&self, lid: LId) -> MaintainerId {
        debug_assert!(lid >= self.start);
        self.map.owner_of(LId(lid.0 - self.start.0))
    }

    /// Epoch-relative local index of `lid` at maintainer `m`, if owned.
    pub fn local_index(&self, m: MaintainerId, lid: LId) -> Option<u64> {
        debug_assert!(lid >= self.start);
        self.map.local_index(m, LId(lid.0 - self.start.0))
    }

    /// Global `LId` of maintainer `m`'s `local_index`-th slot in this epoch.
    pub fn lid_for(&self, m: MaintainerId, local_index: u64) -> LId {
        LId(self.start.0 + self.map.lid_for(m, local_index).0)
    }
}

/// The full history of assignments, ordered by starting position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochJournal {
    epochs: Vec<EpochAssignment>,
}

impl EpochJournal {
    /// A journal whose initial epoch covers the log from position 0.
    pub fn new(initial: RangeMap) -> Self {
        EpochJournal {
            epochs: vec![EpochAssignment {
                epoch: Epoch::INITIAL,
                start: LId::ZERO,
                map: initial,
            }],
        }
    }

    /// Announces a future reassignment: from `start` onward, ownership
    /// follows `map`. `start` must lie strictly beyond the previous epoch's
    /// start; the controller chooses it far enough ahead that the
    /// announcement propagates before any position it governs is assigned.
    ///
    /// Returns the new epoch number.
    ///
    /// # Panics
    /// Panics if `start` does not advance past the current epoch's start.
    pub fn announce(&mut self, start: LId, map: RangeMap) -> Epoch {
        let last = self.epochs.last().expect("journal never empty");
        assert!(
            start > last.start,
            "future reassignment must start after {} (got {start})",
            last.start
        );
        let epoch = last.epoch.next();
        self.epochs.push(EpochAssignment { epoch, start, map });
        epoch
    }

    /// The assignment governing position `lid`.
    pub fn assignment_at(&self, lid: LId) -> &EpochAssignment {
        // Epochs are few; linear scan from the back is optimal in practice.
        self.epochs
            .iter()
            .rev()
            .find(|e| e.start <= lid)
            .expect("epoch 0 starts at 0")
    }

    /// The owner of position `lid` under the epoch governing it.
    pub fn owner_of(&self, lid: LId) -> MaintainerId {
        self.assignment_at(lid).owner_of(lid)
    }

    /// The latest (current) assignment.
    pub fn current(&self) -> &EpochAssignment {
        self.epochs.last().expect("journal never empty")
    }

    /// All assignments, oldest first.
    pub fn assignments(&self) -> &[EpochAssignment] {
        &self.epochs
    }

    /// The assignment with sequence number `epoch`, if it exists.
    pub fn by_epoch(&self, epoch: Epoch) -> Option<&EpochAssignment> {
        self.epochs
            .get(epoch.0 as usize)
            .filter(|e| e.epoch == epoch)
    }

    /// Exclusive upper bound of epoch `epoch`'s range (`None` for the
    /// current epoch, which is unbounded).
    pub fn end_of(&self, epoch: Epoch) -> Option<LId> {
        self.epochs.get(epoch.0 as usize + 1).map(|next| next.start)
    }

    /// Number of slots maintainer `m` owns within epoch `epoch`, or `None`
    /// if the epoch is unbounded (the current one).
    pub fn slots_in_epoch(&self, epoch: Epoch, m: MaintainerId) -> Option<u64> {
        let assignment = self.by_epoch(epoch)?;
        let end = self.end_of(epoch)?;
        Some(assignment.map.owned_below(m, end.0 - assignment.start.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_epoch_matches_rangemap() {
        let j = EpochJournal::new(RangeMap::new(3, 10));
        assert_eq!(j.owner_of(LId(0)), MaintainerId(0));
        assert_eq!(j.owner_of(LId(25)), MaintainerId(2));
        assert_eq!(j.current().epoch, Epoch::INITIAL);
    }

    #[test]
    fn announce_reassigns_future_positions_only() {
        let mut j = EpochJournal::new(RangeMap::new(2, 10));
        let e1 = j.announce(LId(100), RangeMap::new(3, 10));
        assert_eq!(e1, Epoch(1));
        // Before the boundary: 2-maintainer striping.
        assert_eq!(j.owner_of(LId(15)), MaintainerId(1));
        assert_eq!(j.owner_of(LId(99)), MaintainerId(1)); // round 9 % 2
                                                          // From the boundary: fresh 3-maintainer striping, relative to 100.
        assert_eq!(j.owner_of(LId(100)), MaintainerId(0));
        assert_eq!(j.owner_of(LId(110)), MaintainerId(1));
        assert_eq!(j.owner_of(LId(120)), MaintainerId(2));
        assert_eq!(j.owner_of(LId(130)), MaintainerId(0));
    }

    #[test]
    fn assignment_lookup_by_epoch() {
        let mut j = EpochJournal::new(RangeMap::new(2, 10));
        j.announce(LId(100), RangeMap::new(3, 10));
        assert_eq!(j.by_epoch(Epoch(0)).unwrap().start, LId::ZERO);
        assert_eq!(j.by_epoch(Epoch(1)).unwrap().start, LId(100));
        assert!(j.by_epoch(Epoch(2)).is_none());
        assert_eq!(j.end_of(Epoch(0)), Some(LId(100)));
        assert_eq!(j.end_of(Epoch(1)), None);
    }

    #[test]
    fn epoch_relative_local_indexes_are_dense() {
        let mut j = EpochJournal::new(RangeMap::new(2, 10));
        j.announce(LId(40), RangeMap::new(3, 5));
        let e1 = j.by_epoch(Epoch(1)).copied().unwrap();
        assert_eq!(e1.lid_for(MaintainerId(0), 0), LId(40));
        assert_eq!(e1.lid_for(MaintainerId(1), 0), LId(45));
        assert_eq!(e1.lid_for(MaintainerId(2), 4), LId(54));
        assert_eq!(e1.lid_for(MaintainerId(0), 5), LId(55));
        assert_eq!(e1.local_index(MaintainerId(1), LId(45)), Some(0));
        assert_eq!(e1.local_index(MaintainerId(0), LId(45)), None);
    }

    #[test]
    fn slots_in_bounded_epoch_counts_partial_cycles() {
        let mut j = EpochJournal::new(RangeMap::new(2, 10));
        j.announce(LId(55), RangeMap::new(3, 10));
        // Epoch 0 spans [0, 55): rounds 0..5 and half of round 5.
        // M0 owns rounds 0,2,4 → 30 slots. M1 owns 1,3 fully (20) plus
        // positions 50..55 of round 5 → 25.
        assert_eq!(j.slots_in_epoch(Epoch(0), MaintainerId(0)), Some(30));
        assert_eq!(j.slots_in_epoch(Epoch(0), MaintainerId(1)), Some(25));
        // Current epoch is unbounded.
        assert_eq!(j.slots_in_epoch(Epoch(1), MaintainerId(0)), None);
    }

    #[test]
    #[should_panic(expected = "future reassignment")]
    fn announce_must_advance() {
        let mut j = EpochJournal::new(RangeMap::new(2, 10));
        j.announce(LId::ZERO, RangeMap::new(3, 10));
    }

    #[test]
    fn multiple_reassignments_stack() {
        let mut j = EpochJournal::new(RangeMap::new(1, 10));
        j.announce(LId(20), RangeMap::new(2, 10));
        j.announce(LId(60), RangeMap::new(3, 10));
        assert_eq!(j.assignments().len(), 3);
        assert_eq!(j.owner_of(LId(5)), MaintainerId(0));
        assert_eq!(j.owner_of(LId(30)), MaintainerId(1)); // epoch1 rel 10
        assert_eq!(j.owner_of(LId(80)), MaintainerId(2)); // epoch2 rel 20
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a journal from `(gap, maintainers, batch)` announcement
    /// specs: each boundary advances by `gap` (so `gap = 1` exercises
    /// back-to-back announcements one position apart).
    fn journal_from(specs: &[(u64, usize, u64)]) -> EpochJournal {
        let mut j = EpochJournal::new(RangeMap::new(2, 8));
        let mut start = 0u64;
        for &(gap, m, b) in specs {
            start += gap;
            j.announce(LId(start), RangeMap::new(m, b));
        }
        j
    }

    proptest! {
        /// Across any multi-epoch history, `owner_of` / `local_index` /
        /// `lid_for` agree: the governing assignment round-trips every
        /// position through exactly one maintainer's dense local index.
        #[test]
        fn owner_local_lid_roundtrip(
            specs in proptest::collection::vec((1u64..300, 1usize..6, 1u64..64), 0..6),
            lids in proptest::collection::vec(0u64..2_000, 1..32),
        ) {
            let j = journal_from(&specs);
            for &lid in &lids {
                let lid = LId(lid);
                let a = j.assignment_at(lid);
                let owner = j.owner_of(lid);
                prop_assert_eq!(a.owner_of(lid), owner);
                let idx = a.local_index(owner, lid);
                prop_assert!(idx.is_some(), "the owner must index its own slot");
                prop_assert_eq!(a.lid_for(owner, idx.unwrap()), lid);
                // No other maintainer of that epoch claims the slot.
                for cand in 0..a.map.num_maintainers() as u16 {
                    let cand = MaintainerId(cand);
                    if cand != owner {
                        prop_assert_eq!(a.local_index(cand, lid), None);
                    }
                }
            }
        }

        /// Epoch starts are strictly increasing and epoch numbers dense,
        /// so `by_epoch` / `end_of` tile the log without gaps or overlap.
        #[test]
        fn history_is_dense_and_monotone(
            specs in proptest::collection::vec((1u64..300, 1usize..6, 1u64..64), 0..6),
        ) {
            let j = journal_from(&specs);
            let epochs = j.assignments();
            prop_assert_eq!(epochs.len(), specs.len() + 1);
            for (i, pair) in epochs.windows(2).enumerate() {
                prop_assert!(pair[0].start < pair[1].start);
                prop_assert_eq!(pair[1].epoch, pair[0].epoch.next());
                prop_assert_eq!(j.end_of(pair[0].epoch), Some(pair[1].start));
                prop_assert_eq!(j.by_epoch(pair[0].epoch), Some(&epochs[i]));
            }
            prop_assert_eq!(j.end_of(j.current().epoch), None);
        }

        /// Announcing at the current frontier (the smallest legal
        /// advance), repeatedly and back-to-back one position apart: the
        /// boundary position starts the new epoch's round-robin at
        /// maintainer 0 and the position just below stays with the old
        /// map's owner.
        #[test]
        fn frontier_and_back_to_back_announcements(
            count in 1usize..8,
            m in 1usize..6,
            b in 1u64..64,
        ) {
            let mut j = EpochJournal::new(RangeMap::new(2, 8));
            for _ in 0..count {
                let frontier = LId(j.current().start.0 + 1);
                let before = j.owner_of(LId(frontier.0 - 1));
                j.announce(frontier, RangeMap::new(m, b));
                // Fresh epoch: relative position 0 is round 0, owner 0.
                prop_assert_eq!(j.owner_of(frontier), MaintainerId(0));
                prop_assert_eq!(
                    j.owner_of(LId(frontier.0 - 1)),
                    before,
                    "positions below the boundary keep their owner"
                );
                prop_assert_eq!(j.current().start, frontier);
            }
            prop_assert_eq!(j.assignments().len(), count + 1);
        }
    }
}
