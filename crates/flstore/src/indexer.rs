//! Distributed tag indexers (§5.3).
//!
//! "Records in Log maintainers are arranged according to their LIds.
//! However, Application clients often desire to access records according to
//! other information" — the tags. Each indexer champions a subset of tag
//! keys (hash partitioning); maintainers post `(tag, LId)` pairs to the
//! responsible indexer as records persist, and clients look up `LId`s by
//! tag name, optionally with a value predicate and a most-recent-`k` bound.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use chariots_types::{LId, Limit, TagValue, ValuePredicate};

/// One tag posting: the value (if any) and the position of the record.
#[derive(Debug, Clone, PartialEq)]
pub struct Posting {
    /// The tag's value at that record, if it had one.
    pub value: Option<TagValue>,
    /// The record copy's position.
    pub lid: LId,
}

/// Selects the indexer championing `key` among `num_indexers`.
pub fn indexer_for(key: &str, num_indexers: usize) -> usize {
    debug_assert!(num_indexers > 0);
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % num_indexers as u64) as usize
}

/// The synchronous state of one indexer.
#[derive(Debug, Default)]
pub struct IndexerCore {
    /// Postings per tag key, kept sorted by `LId`.
    postings: HashMap<String, Vec<Posting>>,
    posted: u64,
    lookups: u64,
}

impl IndexerCore {
    /// An empty indexer.
    pub fn new() -> Self {
        IndexerCore::default()
    }

    /// Ingests one posting. Postings usually arrive in roughly increasing
    /// `LId` order (maintainers post as they persist), so insertion is an
    /// amortized append with a short backward scan when out of order.
    pub fn post(&mut self, key: &str, value: Option<TagValue>, lid: LId) {
        self.posted += 1;
        let list = self.postings.entry(key.to_owned()).or_default();
        let posting = Posting { value, lid };
        match list.last() {
            Some(last) if last.lid > lid => {
                let at = list.partition_point(|p| p.lid < lid);
                list.insert(at, posting);
            }
            _ => list.push(posting),
        }
    }

    /// Looks up positions of records carrying tag `key`, optionally
    /// filtered by a value predicate and an exclusive position bound,
    /// bounded by `limit`.
    ///
    /// `below` is applied *before* the limit, so a client can push down
    /// both its Head-of-Log bound and a rule's `LIdBelow` condition and
    /// still receive exactly the `limit` oldest/most-recent qualifying
    /// positions — no over-fetching with `Limit::All`.
    ///
    /// `MostRecent(n)` results are in descending `LId` order (the §5.3
    /// example: "return the most recent 100 record LIds").
    pub fn lookup(
        &mut self,
        key: &str,
        predicate: Option<&ValuePredicate>,
        below: Option<LId>,
        limit: Limit,
    ) -> Vec<LId> {
        self.lookups += 1;
        let Some(list) = self.postings.get(key) else {
            return Vec::new();
        };
        let matches = |p: &Posting| {
            if let Some(bound) = below {
                if p.lid >= bound {
                    return false;
                }
            }
            match predicate {
                Some(pred) => pred.matches(p.value.as_ref()),
                None => true,
            }
        };
        match limit {
            Limit::All => list.iter().filter(|p| matches(p)).map(|p| p.lid).collect(),
            Limit::Oldest(n) => list
                .iter()
                .filter(|p| matches(p))
                .take(n)
                .map(|p| p.lid)
                .collect(),
            Limit::MostRecent(n) => list
                .iter()
                .rev()
                .filter(|p| matches(p))
                .take(n)
                .map(|p| p.lid)
                .collect(),
        }
    }

    /// Distinct tag keys indexed here.
    pub fn keys(&self) -> usize {
        self.postings.len()
    }

    /// Total postings ingested.
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Drops postings below `bound` (piggybacks on log GC).
    pub fn gc_before(&mut self, bound: LId) {
        for list in self.postings.values_mut() {
            let keep_from = list.partition_point(|p| p.lid < bound);
            list.drain(..keep_from);
        }
        self.postings.retain(|_, list| !list.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioning_is_stable_and_in_range() {
        for key in ["alpha", "beta", "gamma", ""] {
            let a = indexer_for(key, 4);
            assert_eq!(a, indexer_for(key, 4), "stable");
            assert!(a < 4);
        }
        assert_eq!(indexer_for("anything", 1), 0);
    }

    #[test]
    fn post_and_lookup_all() {
        let mut ix = IndexerCore::new();
        ix.post("key", Some(TagValue::Str("x".into())), LId(3));
        ix.post("key", Some(TagValue::Str("y".into())), LId(7));
        ix.post("other", None, LId(5));
        assert_eq!(
            ix.lookup("key", None, None, Limit::All),
            vec![LId(3), LId(7)]
        );
        assert_eq!(
            ix.lookup("missing", None, None, Limit::All),
            Vec::<LId>::new()
        );
        assert_eq!(ix.keys(), 2);
        assert_eq!(ix.posted(), 3);
    }

    #[test]
    fn out_of_order_postings_stay_sorted() {
        let mut ix = IndexerCore::new();
        ix.post("k", None, LId(10));
        ix.post("k", None, LId(4));
        ix.post("k", None, LId(7));
        assert_eq!(
            ix.lookup("k", None, None, Limit::All),
            vec![LId(4), LId(7), LId(10)]
        );
    }

    #[test]
    fn most_recent_is_descending_and_bounded() {
        let mut ix = IndexerCore::new();
        for lid in 0..10 {
            ix.post("k", None, LId(lid));
        }
        assert_eq!(
            ix.lookup("k", None, None, Limit::MostRecent(3)),
            vec![LId(9), LId(8), LId(7)]
        );
        assert_eq!(
            ix.lookup("k", None, None, Limit::Oldest(2)),
            vec![LId(0), LId(1)]
        );
    }

    #[test]
    fn value_predicates_filter_lookups() {
        let mut ix = IndexerCore::new();
        for (lid, v) in [(0, 5i64), (1, 10), (2, 15), (3, 20)] {
            ix.post("seq", Some(TagValue::Int(v)), LId(lid));
        }
        // §5.3: "look up records with a certain tag with values greater
        // than i and return the most recent x records".
        let got = ix.lookup(
            "seq",
            Some(&ValuePredicate::Gt(TagValue::Int(10))),
            None,
            Limit::MostRecent(1),
        );
        assert_eq!(got, vec![LId(3)]);
        let got = ix.lookup(
            "seq",
            Some(&ValuePredicate::Le(TagValue::Int(10))),
            None,
            Limit::All,
        );
        assert_eq!(got, vec![LId(0), LId(1)]);
    }

    #[test]
    fn below_bound_applies_before_the_limit() {
        let mut ix = IndexerCore::new();
        for lid in 0..10 {
            ix.post("k", None, LId(lid));
        }
        // The most recent position *below 6* is 5 — a post-hoc filter over
        // a `MostRecent(1)` lookup would instead see 9 and drop it.
        assert_eq!(
            ix.lookup("k", None, Some(LId(6)), Limit::MostRecent(1)),
            vec![LId(5)]
        );
        assert_eq!(
            ix.lookup("k", None, Some(LId(3)), Limit::All),
            vec![LId(0), LId(1), LId(2)]
        );
        assert_eq!(
            ix.lookup("k", None, Some(LId::ZERO), Limit::All),
            Vec::<LId>::new()
        );
    }

    #[test]
    fn gc_drops_old_postings() {
        let mut ix = IndexerCore::new();
        for lid in 0..6 {
            ix.post("k", None, LId(lid));
        }
        ix.post("gone", None, LId(1));
        ix.gc_before(LId(4));
        assert_eq!(ix.lookup("k", None, None, Limit::All), vec![LId(4), LId(5)]);
        assert_eq!(ix.keys(), 1, "emptied keys are dropped");
    }
}
