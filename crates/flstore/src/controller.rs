//! The Controller: highly-available stateless metadata oracle (§3, §5.1).
//!
//! "Meta servers are a highly-available collection of stateless servers
//! acting as an oracle for application clients to report about the state
//! and locations of the Log maintainers." This reproduction models the
//! collection as a shared, lock-protected registry: any clone of
//! [`Controller`] answers session requests, and none of them sits on the
//! data path.

use std::sync::Arc;
use std::time::Duration;

use chariots_simnet::Counter;
use chariots_types::{ChariotsError, DatacenterId, Epoch, Generation, LId, MaintainerId, Result};
use parking_lot::RwLock;

use crate::client::ReadObs;
use crate::epoch::EpochJournal;
use crate::node::IndexerHandle;
use crate::range::RangeMap;
use crate::replication::ReplicaGroupHandle;

/// Everything a client needs for a session: maintainer and indexer
/// addresses, the epoch journal, and the approximate log size (§5.1:
/// "approximate information about the number of records in the shared
/// log").
#[derive(Clone)]
pub struct Session {
    /// The datacenter this session talks to.
    pub dc: DatacenterId,
    /// Handles to every log maintainer replica group, indexed by
    /// `MaintainerId`. Each handle routes to the group's live primary, so
    /// a failover re-routes existing sessions without a refresh.
    pub maintainers: Vec<ReplicaGroupHandle>,
    /// Handles to every indexer.
    pub indexers: Vec<IndexerHandle>,
    /// Snapshot of the epoch journal at session start.
    pub journal: EpochJournal,
    /// Approximate number of records in the shared log at session start.
    pub approx_records: u64,
    /// Head-of-Log cache TTL clients should use (`ZERO` disables).
    pub hl_cache_ttl: Duration,
    /// Entry-cache capacity clients should use (0 disables).
    pub read_cache_entries: usize,
    /// Deployment-wide read-path instruments clients feed.
    pub read_obs: ReadObs,
}

struct ControllerState {
    dc: DatacenterId,
    maintainers: Vec<ReplicaGroupHandle>,
    indexers: Vec<IndexerHandle>,
    journal: EpochJournal,
    hl_cache_ttl: Duration,
    read_cache_entries: usize,
    read_obs: ReadObs,
}

/// The metadata oracle for one datacenter's FLStore deployment.
#[derive(Clone)]
pub struct Controller {
    state: Arc<RwLock<ControllerState>>,
    appended: Counter,
}

impl Controller {
    /// Creates a controller for a deployment with the given initial
    /// striping.
    pub fn new(dc: DatacenterId, initial: RangeMap) -> Self {
        Controller {
            state: Arc::new(RwLock::new(ControllerState {
                dc,
                maintainers: Vec::new(),
                indexers: Vec::new(),
                journal: EpochJournal::new(initial),
                hl_cache_ttl: Duration::ZERO,
                read_cache_entries: 0,
                read_obs: ReadObs::new(),
            })),
            appended: Counter::new(),
        }
    }

    /// Configures the read-path settings handed out with sessions: the
    /// Head-of-Log cache TTL, the entry-cache capacity, and the shared
    /// read instruments. Raw controllers start with both caches off; the
    /// deployment layer calls this from `FLStoreConfig`.
    pub fn configure_reads(&self, hl_cache_ttl: Duration, read_cache_entries: usize, obs: ReadObs) {
        let mut state = self.state.write();
        state.hl_cache_ttl = hl_cache_ttl;
        state.read_cache_entries = read_cache_entries;
        state.read_obs = obs;
    }

    /// Registers the deployment's maintainer replica groups.
    pub fn register_maintainers(&self, maintainers: Vec<ReplicaGroupHandle>) {
        self.state.write().maintainers = maintainers;
    }

    /// Snapshot of the registered replica groups.
    pub fn groups(&self) -> Vec<ReplicaGroupHandle> {
        self.state.read().maintainers.clone()
    }

    /// Promotes replica `new_primary` of group `group` to primary, bumping
    /// the group's generation so the deposed primary is fenced. This is the
    /// controller half of failover; the failure detector supplies the
    /// suspicion that triggers it.
    pub fn promote(&self, group: MaintainerId, new_primary: usize) -> Result<Generation> {
        let handle = {
            let state = self.state.read();
            state
                .maintainers
                .get(group.index())
                .cloned()
                .ok_or(ChariotsError::NoLivePrimary(group))?
        };
        Ok(handle.state().promote(new_primary))
    }

    /// Registers the deployment's indexer handles.
    pub fn register_indexers(&self, indexers: Vec<IndexerHandle>) {
        self.state.write().indexers = indexers;
    }

    /// The shared append counter maintainers feed (approximate log size).
    pub fn appended_counter(&self) -> Counter {
        self.appended.clone()
    }

    /// Starts a client session: a snapshot of the current topology.
    pub fn session(&self) -> Session {
        let state = self.state.read();
        Session {
            dc: state.dc,
            maintainers: state.maintainers.clone(),
            indexers: state.indexers.clone(),
            journal: state.journal.clone(),
            approx_records: self.approx_records(),
            hl_cache_ttl: state.hl_cache_ttl,
            read_cache_entries: state.read_cache_entries,
            read_obs: state.read_obs.clone(),
        }
    }

    /// Approximate number of records in the shared log.
    pub fn approx_records(&self) -> u64 {
        let maintainers = { self.state.read().maintainers.clone() };
        maintainers.iter().map(|m| m.appended_counter().get()).sum()
    }

    /// Announces a future reassignment (§6.3): records the new epoch in the
    /// journal and broadcasts it to every registered maintainer. The added
    /// maintainer (if any) must already be registered.
    ///
    /// Returns the new epoch.
    pub fn announce_epoch(&self, start: LId, map: RangeMap) -> Result<Epoch> {
        let mut state = self.state.write();
        let epoch = state.journal.announce(start, map);
        for m in &state.maintainers {
            m.announce_epoch(start, map);
        }
        Ok(epoch)
    }

    /// A snapshot of the journal (e.g. for a refreshed session).
    pub fn journal(&self) -> EpochJournal {
        self.state.read().journal.clone()
    }

    /// The datacenter this controller serves.
    pub fn datacenter(&self) -> DatacenterId {
        self.state.read().dc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_snapshots_topology() {
        let c = Controller::new(DatacenterId(0), RangeMap::new(2, 10));
        let s = c.session();
        assert_eq!(s.dc, DatacenterId(0));
        assert!(s.maintainers.is_empty());
        assert_eq!(s.journal.current().epoch, Epoch::INITIAL);
        assert_eq!(s.approx_records, 0);
    }

    #[test]
    fn announce_epoch_updates_journal() {
        let c = Controller::new(DatacenterId(0), RangeMap::new(1, 10));
        let e = c.announce_epoch(LId(100), RangeMap::new(2, 10)).unwrap();
        assert_eq!(e, Epoch(1));
        let j = c.journal();
        assert_eq!(j.assignments().len(), 2);
        assert_eq!(j.current().start, LId(100));
    }

    #[test]
    fn clones_share_state() {
        let c = Controller::new(DatacenterId(1), RangeMap::new(1, 10));
        let c2 = c.clone();
        c.announce_epoch(LId(50), RangeMap::new(2, 10)).unwrap();
        assert_eq!(c2.journal().assignments().len(), 2);
        assert_eq!(c2.datacenter(), DatacenterId(1));
    }
}
