//! Pipelined quorum commit tracking (the f+1 durable-copies rule).
//!
//! Under [`CommitMode::PipelinedQuorum`](chariots_types::CommitMode), the
//! acting primary no longer serializes `fsync → replicate → ack`. It ships
//! the batch's shared `Arc<[Entry]>` to every live backup *first*, pays its
//! own WAL fsync while those RPCs are in flight, and acks the batch as soon
//! as **f+1 replicas report the entries durable** — whichever combination
//! of {primary fsync, backup fsync acks} gets there first. The
//! [`CommitTracker`] is the per-group ledger making that possible: it holds
//! each in-flight batch's waiters, counts durable acks against the quorum,
//! and maintains the per-replica **durable watermark** failover promotes
//! by.
//!
//! The tracker is deliberately a plain data structure: it never talks to
//! the network and never re-checks fencing itself. Its owner —
//! [`GroupState`](crate::replication::GroupState) — wraps every mutation,
//! performs the post-quorum generation re-check, and runs batch completion
//! outside the tracker lock.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use chariots_simnet::{Notify, ReplyTo};
use chariots_types::{ChariotsError, Entry, Generation, LId, MaintainerId, Result, TOId, TraceId};
use parking_lot::Mutex;

use crate::node::{collect_tag_postings, AppendReplySender, Fabric};
use chariots_simnet::Counter;

/// Upper bound on batches a primary may have in flight awaiting quorum.
/// Past it, `serve_batch` blocks until a resolution frees a slot — simple
/// backpressure so a slow backup cannot let the tracker grow without
/// bound.
pub(crate) const MAX_PENDING_COMMITS: usize = 64;

/// The durable acks a batch needs before it may be acked to the client:
/// a majority of the group (`f + 1` of `2f + 1`, and both copies at
/// `rf = 2`), capped at the replicas actually participating — crashed
/// backups are skipped at send time exactly as the serial path skips them,
/// so a degraded group still commits on what is live.
pub(crate) fn quorum_required(replica_count: usize, participants: usize) -> usize {
    (replica_count / 2 + 1).min(participants).max(1)
}

/// One request's stake in a pending batch, parked until the batch resolves.
pub(crate) enum CommitWaiter {
    /// A post-assigned append: the ids to ack on success.
    Append {
        /// Assigned `(TOId, LId)` pairs, in request order.
        ids: Vec<(TOId, LId)>,
        /// Closed-loop reply channel, if anyone is waiting.
        reply: Option<AppendReplySender>,
        /// Records this item contributes to the appended counter.
        count: u64,
    },
    /// An append that failed on its own during the apply pass. It always
    /// receives its *own* error, whatever the batch outcome — serial
    /// parity with [`AppliedItem::AppendFailed`](crate::node).
    FailedAppend {
        /// The item's own application error.
        err: ChariotsError,
        /// Closed-loop reply channel, if anyone is waiting.
        reply: Option<AppendReplySender>,
    },
    /// Pre-routed entries from the queues stage: counted on success,
    /// parked as orphans for re-replication on failure (their positions
    /// are committed upstream and must not be lost).
    Store {
        /// The stored entries.
        entries: Vec<Entry>,
    },
    /// An explicit-order (min-bound) append.
    MinBound {
        /// The assigned id, if the append was not parked.
        id: Option<(TOId, LId)>,
        /// Reply slot (survives a TCP hop as a dial-back token).
        reply: ReplyTo<Result<Option<(TOId, LId)>>>,
    },
}

/// Everything batch completion needs outside the tracker: instruments,
/// counters, and the batch's observability facts. Captured at registration
/// so completion can run on whichever replica's thread reaches quorum.
pub(crate) struct CommitOutcomeCtx {
    /// Deployment fabric (metrics, tag postings, trace stamps).
    pub fabric: Fabric,
    /// Group-level appended counter (bumped only on successful commit).
    pub appended: Counter,
    /// Records in the batch (0 skips batch-size metrics).
    pub total_records: u64,
    /// Summed record-body bytes in the batch.
    pub total_bytes: u64,
    /// Whether the batch carried appends (append-latency histogram).
    pub had_appends: bool,
    /// Whether the batch carried stores (store-latency histogram).
    pub had_stores: bool,
    /// Whether to post the share's tags to the indexers on success.
    pub post_share_tags: bool,
    /// Whether to record commit-path quorum metrics (off for background
    /// drained-waiter flushes, which would pollute the ack-path numbers).
    pub measured: bool,
    /// When the batch's service began (append/store latency baseline).
    pub started: Instant,
}

/// One batch in flight: who must ack, who has, and everything needed to
/// finish it.
pub(crate) struct PendingCommit {
    /// Tracker-assigned sequence number (the ack correlation key).
    pub seq: u64,
    /// Generation the batch was admitted under.
    pub generation: Generation,
    /// Seat index of the registering primary.
    pub primary: usize,
    /// Bitmask of participating replica seats ({primary} ∪ live backups).
    participants: u64,
    /// Bitmask of seats that reported the batch durable.
    acked: u64,
    /// Bitmask of seats that failed (send error, fencing, sync failure).
    failed: u64,
    /// Durable acks required to resolve.
    required: usize,
    /// The batch's shared entries (tag postings + trace stamps on success).
    share: Arc<[Entry]>,
    /// Parked request stakes.
    waiters: Vec<CommitWaiter>,
    /// Drained min-bound entries riding the batch (counted as dropped on
    /// failure — they were acked as *parked*, not committed).
    drained_records: u64,
    /// Completion context.
    ctx: CommitOutcomeCtx,
    /// When the batch entered the tracker (quorum-latency baseline).
    registered: Instant,
    /// When the primary reported its own fsync durable, if it has.
    primary_reported: Option<Instant>,
    /// The primary's fsync duration in µs (overlap accounting).
    primary_fsync_us: u64,
}

impl PendingCommit {
    /// Completes the batch: metrics, tag postings, reply fan-out. Returns
    /// orphaned `Store` entries the caller must park for re-replication.
    /// Runs on whichever thread resolved the quorum — never under the
    /// tracker lock.
    pub(crate) fn complete(self, outcome: Result<()>) -> Vec<Entry> {
        let PendingCommit {
            share,
            waiters,
            drained_records,
            ctx,
            registered,
            primary_reported,
            primary_fsync_us,
            ..
        } = self;
        let obs = ctx.fabric.obs();
        match outcome {
            Ok(()) => {
                let elapsed = ctx.started.elapsed();
                if ctx.total_records > 0 {
                    obs.batch_size.record(ctx.total_records);
                    obs.batch_bytes.record(ctx.total_bytes);
                }
                if ctx.had_appends {
                    obs.append_latency.record_duration(elapsed);
                }
                if ctx.had_stores {
                    obs.store_latency.record_duration(elapsed);
                }
                if ctx.measured {
                    let quorum_us = registered.elapsed().as_micros() as u64;
                    obs.commit_quorum_latency.record(quorum_us);
                    // Time spent waiting on backups *after* the primary's
                    // own durability point — the serial chain's entire
                    // replication leg, now mostly hidden under the fsync.
                    let repl_wait_us = primary_reported
                        .map(|t| t.elapsed().as_micros() as u64)
                        .unwrap_or(0);
                    obs.commit_repl_wait.record(repl_wait_us);
                    // What the overlap bought: a serial chain would have
                    // paid fsync + backup wait back to back.
                    let saved = if primary_reported.is_some() {
                        primary_fsync_us
                    } else {
                        // Quorum reached before the primary's fsync even
                        // returned: the whole wait was hidden.
                        quorum_us
                    };
                    obs.commit_overlap_saved.add(saved);
                }
                let traced: Vec<TraceId> = share.iter().filter_map(|e| e.record.trace).collect();
                ctx.fabric.stamp_store_exits(&traced);
                if ctx.post_share_tags {
                    ctx.fabric.post_tags(collect_tag_postings(&share));
                }
                // Count everything before any reply goes out: a client
                // that observes its ack must also observe the counter.
                let counted: u64 = waiters
                    .iter()
                    .map(|w| match w {
                        CommitWaiter::Append { count, .. } => *count,
                        CommitWaiter::FailedAppend { .. } => 0,
                        CommitWaiter::Store { entries } => entries.len() as u64,
                        CommitWaiter::MinBound { id, .. } => u64::from(id.is_some()),
                    })
                    .sum();
                ctx.appended.add(counted);
                for waiter in waiters {
                    match waiter {
                        CommitWaiter::Append { ids, reply, .. } => {
                            if let Some(reply) = reply {
                                let _ = reply.send(Ok(ids));
                            }
                        }
                        CommitWaiter::FailedAppend { err, reply } => {
                            if let Some(reply) = reply {
                                let _ = reply.send(Err(err));
                            }
                        }
                        CommitWaiter::Store { .. } => {}
                        CommitWaiter::MinBound { id, reply } => {
                            let _ = reply.send(Ok(id));
                        }
                    }
                }
                Vec::new()
            }
            Err(e) => {
                let mut orphans = Vec::new();
                for waiter in waiters {
                    match waiter {
                        // No partial acks: every append waiter sees the
                        // batch failure, whatever its own item did.
                        CommitWaiter::Append { reply, .. } => {
                            if let Some(reply) = reply {
                                let _ = reply.send(Err(e.clone()));
                            }
                        }
                        CommitWaiter::FailedAppend { err, reply } => {
                            if let Some(reply) = reply {
                                let _ = reply.send(Err(err));
                            }
                        }
                        CommitWaiter::Store { entries } => orphans.extend(entries),
                        CommitWaiter::MinBound { reply, .. } => {
                            let _ = reply.send(Err(e.clone()));
                        }
                    }
                }
                obs.replication_dropped.add(drained_records);
                orphans
            }
        }
    }
}

/// A batch plucked out of the tracker with its decided outcome, awaiting
/// completion by the tracker's owner (who re-checks fencing first).
pub(crate) struct ResolvedCommit {
    /// The batch.
    pub batch: PendingCommit,
    /// The tracker's verdict (quorum reached / quorum lost / aborted).
    pub outcome: Result<()>,
}

#[derive(Default)]
struct Inner {
    next_seq: u64,
    pending: VecDeque<PendingCommit>,
    /// Per-replica durable watermarks: the highest contiguous frontier each
    /// seat has reported fsynced. Failover promotes the live seat with the
    /// highest watermark.
    durable: Vec<LId>,
    /// Store entries from failed batches, awaiting re-replication by the
    /// next replica loop turn (completion may run on a backup's thread,
    /// which has no access to the primary loop's pending list).
    orphans: Vec<Entry>,
}

/// Per-group ledger of in-flight pipelined commits and per-replica durable
/// watermarks. See the module docs for the protocol; see
/// [`GroupState`](crate::replication::GroupState) for the wrapper methods
/// that drive it.
pub struct CommitTracker {
    inner: Mutex<Inner>,
    group: MaintainerId,
    /// Signalled whenever a batch leaves the tracker (backpressure wakeup).
    resolved: Notify,
}

impl std::fmt::Debug for CommitTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("CommitTracker")
            .field("group", &self.group)
            .field("pending", &inner.pending.len())
            .field("durable", &inner.durable)
            .finish()
    }
}

impl CommitTracker {
    /// An empty tracker for `group`.
    pub fn new(group: MaintainerId) -> Self {
        CommitTracker {
            inner: Mutex::new(Inner::default()),
            group,
            resolved: Notify::new(),
        }
    }

    /// A wakeup handle signalled on every resolution (each clone has its
    /// own cursor; see [`Notify`]).
    pub fn subscribe(&self) -> Notify {
        self.resolved.clone()
    }

    /// Batches currently awaiting quorum.
    pub fn pending(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Raises replica `replica`'s durable watermark to `frontier` (never
    /// lowers it — watermarks are monotone).
    pub fn note_durable(&self, replica: usize, frontier: LId) {
        let mut inner = self.inner.lock();
        if inner.durable.len() <= replica {
            inner.durable.resize(replica + 1, LId::ZERO);
        }
        if frontier > inner.durable[replica] {
            inner.durable[replica] = frontier;
        }
    }

    /// Replica `replica`'s durable watermark, if it has ever reported one.
    pub fn durable_frontier(&self, replica: usize) -> Option<LId> {
        self.inner.lock().durable.get(replica).copied()
    }

    /// Registers a batch awaiting `required` durable acks from the seats in
    /// the `participants` bitmask. Returns the batch's sequence number —
    /// the correlation key every ack must carry.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn register(
        &self,
        generation: Generation,
        primary: usize,
        participants: u64,
        required: usize,
        share: Arc<[Entry]>,
        waiters: Vec<CommitWaiter>,
        drained_records: u64,
        ctx: CommitOutcomeCtx,
    ) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.pending.push_back(PendingCommit {
            seq,
            generation,
            primary,
            participants,
            acked: 0,
            failed: 0,
            required,
            share,
            waiters,
            drained_records,
            ctx,
            registered: Instant::now(),
            primary_reported: None,
            primary_fsync_us: 0,
        });
        seq
    }

    /// Records a durable ack from seat `replica` for batch `seq`. Returns
    /// the batch if the ack completed its quorum. Acks for unknown
    /// sequence numbers (already resolved, fenced, or aborted) are ignored.
    pub(crate) fn report_ack(&self, replica: usize, seq: u64) -> Option<ResolvedCommit> {
        self.report(replica, seq, true, None)
    }

    /// Records the primary's own fsync completing for batch `seq` — a
    /// durable ack plus the overlap-accounting facts.
    pub(crate) fn report_primary_durable(
        &self,
        replica: usize,
        seq: u64,
        fsync_us: u64,
    ) -> Option<ResolvedCommit> {
        self.report(replica, seq, true, Some(fsync_us))
    }

    /// Records seat `replica` failing batch `seq` (send error, fencing,
    /// or sync failure). Returns the batch resolved as
    /// [`ChariotsError::QuorumLost`] if the remaining live participants can
    /// no longer reach quorum.
    pub(crate) fn report_failure(&self, replica: usize, seq: u64) -> Option<ResolvedCommit> {
        self.report(replica, seq, false, None)
    }

    fn report(
        &self,
        replica: usize,
        seq: u64,
        durable: bool,
        fsync_us: Option<u64>,
    ) -> Option<ResolvedCommit> {
        let resolved = {
            let mut inner = self.inner.lock();
            let pos = inner.pending.iter().position(|b| b.seq == seq)?;
            let batch = &mut inner.pending[pos];
            let bit = 1u64 << replica;
            if batch.participants & bit == 0 {
                return None;
            }
            if durable {
                batch.acked |= bit;
                if let Some(us) = fsync_us {
                    batch.primary_reported = Some(Instant::now());
                    batch.primary_fsync_us = us;
                }
                if (batch.acked.count_ones() as usize) < batch.required {
                    return None;
                }
                let batch = inner.pending.remove(pos).expect("position just found");
                ResolvedCommit {
                    batch,
                    outcome: Ok(()),
                }
            } else {
                batch.failed |= bit;
                let reachable = (batch.participants & !batch.failed).count_ones() as usize;
                if reachable >= batch.required {
                    return None;
                }
                let batch = inner.pending.remove(pos).expect("position just found");
                let durable = batch.acked.count_ones() as usize;
                let required = batch.required;
                ResolvedCommit {
                    outcome: Err(ChariotsError::QuorumLost {
                        group: self.group,
                        required,
                        durable,
                    }),
                    batch,
                }
            }
        };
        self.resolved.notify();
        Some(resolved)
    }

    /// Fails every pending batch registered under a generation older than
    /// `current` (a promotion landed; the deposed primary must not ack).
    pub(crate) fn fence(&self, current: Generation) -> Vec<ResolvedCommit> {
        let fenced: Vec<PendingCommit> = {
            let mut inner = self.inner.lock();
            let (stale, live): (Vec<_>, Vec<_>) = inner
                .pending
                .drain(..)
                .partition(|b| b.generation < current);
            inner.pending = live.into();
            stale
        };
        if fenced.is_empty() {
            return Vec::new();
        }
        self.resolved.notify();
        let group = self.group;
        fenced
            .into_iter()
            .map(|batch| {
                let sent = batch.generation;
                ResolvedCommit {
                    batch,
                    outcome: Err(ChariotsError::Fenced {
                        group,
                        sent,
                        current,
                    }),
                }
            })
            .collect()
    }

    /// Fails every pending batch with `err` (shutdown: nobody is left to
    /// ack, so waiters must not hang).
    pub(crate) fn abort(&self, err: ChariotsError) -> Vec<ResolvedCommit> {
        let drained: Vec<PendingCommit> = {
            let mut inner = self.inner.lock();
            inner.pending.drain(..).collect()
        };
        if drained.is_empty() {
            return Vec::new();
        }
        self.resolved.notify();
        drained
            .into_iter()
            .map(|batch| ResolvedCommit {
                batch,
                outcome: Err(err.clone()),
            })
            .collect()
    }

    /// Parks orphaned store entries from a failed batch for the next
    /// replica loop turn to re-replicate.
    pub(crate) fn park_orphans(&self, entries: Vec<Entry>) {
        self.inner.lock().orphans.extend(entries);
    }

    /// Takes every parked orphan (drained by the replica loops into their
    /// `pending_replication` queues).
    pub fn take_orphans(&self) -> Vec<Entry> {
        std::mem::take(&mut self.inner.lock().orphans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_ctx() -> CommitOutcomeCtx {
        CommitOutcomeCtx {
            fabric: Fabric::new(),
            appended: Counter::new(),
            total_records: 1,
            total_bytes: 8,
            had_appends: true,
            had_stores: false,
            post_share_tags: false,
            measured: true,
            started: Instant::now(),
        }
    }

    fn register(tracker: &CommitTracker, participants: u64, required: usize) -> u64 {
        tracker.register(
            Generation::INITIAL,
            0,
            participants,
            required,
            Vec::new().into(),
            Vec::new(),
            0,
            outcome_ctx(),
        )
    }

    #[test]
    fn quorum_rule_matches_f_plus_one() {
        assert_eq!(quorum_required(1, 1), 1);
        assert_eq!(quorum_required(2, 2), 2);
        assert_eq!(quorum_required(3, 3), 2);
        assert_eq!(quorum_required(5, 5), 3);
        // Crashed backups shrink the participant set, never below one.
        assert_eq!(quorum_required(3, 1), 1);
        assert_eq!(quorum_required(2, 1), 1);
    }

    #[test]
    fn resolves_exactly_at_quorum() {
        let tracker = CommitTracker::new(MaintainerId(0));
        let seq = register(&tracker, 0b111, 2);
        assert!(tracker.report_ack(1, seq).is_none(), "1 of 2");
        let resolved = tracker.report_ack(2, seq).expect("2 of 2 resolves");
        assert!(resolved.outcome.is_ok());
        assert_eq!(tracker.pending(), 0);
        // A late ack for a resolved batch is ignored.
        assert!(tracker.report_ack(0, seq).is_none());
    }

    #[test]
    fn quorum_lost_when_too_many_participants_fail() {
        let tracker = CommitTracker::new(MaintainerId(3));
        let seq = register(&tracker, 0b111, 2);
        assert!(tracker.report_failure(1, seq).is_none(), "still reachable");
        let resolved = tracker.report_failure(2, seq).expect("unreachable now");
        assert!(matches!(
            resolved.outcome,
            Err(ChariotsError::QuorumLost {
                group: MaintainerId(3),
                required: 2,
                durable: 0,
            })
        ));
    }

    #[test]
    fn ack_then_failures_still_commits_at_quorum() {
        let tracker = CommitTracker::new(MaintainerId(0));
        let seq = register(&tracker, 0b111, 2);
        assert!(tracker.report_ack(0, seq).is_none());
        assert!(tracker.report_failure(2, seq).is_none(), "2 seats left ≥ 2");
        let resolved = tracker.report_ack(1, seq).expect("quorum");
        assert!(resolved.outcome.is_ok());
    }

    #[test]
    fn fence_fails_only_older_generations() {
        let tracker = CommitTracker::new(MaintainerId(0));
        let old = register(&tracker, 0b11, 2);
        let next = Generation::INITIAL.next();
        let kept = tracker.register(
            next,
            1,
            0b11,
            2,
            Vec::new().into(),
            Vec::new(),
            0,
            outcome_ctx(),
        );
        let fenced = tracker.fence(next);
        assert_eq!(fenced.len(), 1);
        assert_eq!(fenced[0].batch.seq, old);
        assert!(matches!(
            fenced[0].outcome,
            Err(ChariotsError::Fenced { .. })
        ));
        assert_eq!(tracker.pending(), 1);
        assert!(tracker.report_ack(0, kept).is_none());
    }

    #[test]
    fn watermarks_are_monotone_per_replica() {
        let tracker = CommitTracker::new(MaintainerId(0));
        assert_eq!(tracker.durable_frontier(0), None);
        tracker.note_durable(0, LId(5));
        tracker.note_durable(2, LId(3));
        tracker.note_durable(0, LId(2)); // never lowers
        assert_eq!(tracker.durable_frontier(0), Some(LId(5)));
        assert_eq!(tracker.durable_frontier(1), Some(LId::ZERO));
        assert_eq!(tracker.durable_frontier(2), Some(LId(3)));
    }

    #[test]
    fn abort_drains_everything_and_notifies() {
        let tracker = CommitTracker::new(MaintainerId(0));
        let mut wakeup = tracker.subscribe();
        register(&tracker, 0b11, 2);
        register(&tracker, 0b11, 2);
        let aborted = tracker.abort(ChariotsError::ShutDown);
        assert_eq!(aborted.len(), 2);
        assert_eq!(tracker.pending(), 0);
        assert!(wakeup.try_consume(), "resolution signalled");
    }

    #[test]
    fn acks_from_non_participants_are_ignored() {
        let tracker = CommitTracker::new(MaintainerId(0));
        let seq = register(&tracker, 0b011, 2);
        assert!(tracker.report_ack(2, seq).is_none(), "seat 2 not enrolled");
        assert!(tracker.report_ack(0, seq).is_none());
        assert!(tracker.report_ack(1, seq).is_some());
    }
}
