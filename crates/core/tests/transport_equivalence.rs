//! Transport equivalence: the real-TCP backend must be behaviourally
//! indistinguishable from the simnet oracle.
//!
//! The protocol code is byte-identical on both backends — only the
//! substrate under the stage handles changes (`DESIGN.md` §15). These
//! tests run the same workload under [`TransportMode::Simnet`] and
//! [`TransportMode::Tcp`] and require the acked `(LId, body)` sets and
//! the log invariants (dense LIds, read-back fidelity, no duplicates) to
//! match.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use chariots_core::{ChariotsCluster, StageStations};
use chariots_simnet::LinkConfig;
use chariots_types::{
    ChariotsConfig, DatacenterId, FLStoreConfig, LId, StageCounts, TagSet, TransportMode,
};

fn cfg(mode: TransportMode) -> ChariotsConfig {
    let mut cfg = ChariotsConfig::new().datacenters(1);
    cfg.stages = StageCounts {
        receivers: 1,
        batchers: 2,
        filters: 1,
        queues: 1,
        senders: 1,
    };
    cfg.flstore = FLStoreConfig::new()
        .maintainers(2)
        .batch_size(8)
        .gossip_interval(Duration::from_millis(1));
    cfg.batcher_flush_threshold = 4;
    cfg.batcher_flush_interval = Duration::from_millis(1);
    cfg.transport(mode)
}

fn launch(mode: TransportMode) -> ChariotsCluster {
    ChariotsCluster::launch(cfg(mode), StageStations::default(), LinkConfig::default())
        .expect("launch cluster")
}

/// Blocks until every acked position is below the Head of the Log.
fn wait_readable(cluster: &ChariotsCluster, max_lid: LId) {
    let mut client = cluster.client(DatacenterId(0));
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.head_of_log().map(|hl| hl <= max_lid).unwrap_or(true) {
        assert!(Instant::now() < deadline, "HL never passed {max_lid}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs `n` sequential blocking appends with deterministic bodies and
/// audits the read-back; returns the acked `(LId, body)` sequence.
fn sequential_workload(mode: TransportMode, n: u64) -> Vec<(LId, String)> {
    let cluster = launch(mode);
    let mut client = cluster.client(DatacenterId(0));
    let mut acked = Vec::new();
    for i in 0..n {
        let body = format!("eq.{i:05}");
        let (_toid, lid) = client.append(TagSet::new(), body.clone()).expect("append");
        acked.push((lid, body));
    }
    wait_readable(&cluster, acked.iter().map(|&(l, _)| l).max().unwrap());
    for (lid, body) in &acked {
        let e = client.read(*lid).expect("read back");
        assert_eq!(
            &e.record.body[..],
            body.as_bytes(),
            "{mode:?}: body mismatch at {lid}"
        );
    }
    cluster.shutdown();
    acked
}

/// Sequential blocking appends are fully deterministic — each record is
/// acked before the next is issued — so the two backends must produce the
/// *identical* acked (LId, body) set, not merely equivalent ones.
#[test]
fn sequential_workload_produces_identical_acked_sets() {
    let n = 150u64;
    let simnet = sequential_workload(TransportMode::Simnet, n);
    let tcp = sequential_workload(TransportMode::Tcp, n);
    assert_eq!(
        simnet, tcp,
        "acked (LId, body) sets diverge between backends"
    );
    // Dense, in-order LIds from 0 on both.
    for (i, (lid, _)) in tcp.iter().enumerate() {
        assert_eq!(lid.0 as usize, i, "LIds not dense from 0");
    }
}

/// Concurrent clients race, so LId↔body pairings may differ run to run —
/// but on every backend the acked positions must be dense and unique, the
/// acked body set must equal the generated set, and each acked pair must
/// read back verbatim. The two backends must agree on all of it.
#[test]
fn concurrent_workload_preserves_log_invariants_on_both_backends() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 40;
    for mode in [TransportMode::Simnet, TransportMode::Tcp] {
        let cluster = launch(mode);
        let mut threads = Vec::new();
        for c in 0..CLIENTS {
            let mut client = cluster.client(DatacenterId(0));
            threads.push(std::thread::spawn(move || {
                let mut acked = Vec::new();
                for i in 0..PER_CLIENT {
                    let body = format!("cc.{c}.{i:05}");
                    let (_toid, lid) = client.append(TagSet::new(), body.clone()).expect("append");
                    acked.push((lid, body));
                }
                acked
            }));
        }
        let mut acked: Vec<(LId, String)> = Vec::new();
        for t in threads {
            acked.extend(t.join().expect("join client"));
        }
        let total = (CLIENTS as u64) * PER_CLIENT;
        assert_eq!(
            acked.len() as u64,
            total,
            "{mode:?}: not every append acked"
        );

        // Dense unique LIds 0..total.
        let lids: BTreeSet<u64> = acked.iter().map(|&(lid, _)| lid.0).collect();
        assert_eq!(lids.len() as u64, total, "{mode:?}: duplicate acked LIds");
        assert_eq!(
            lids.iter().next_back().copied(),
            Some(total - 1),
            "{mode:?}: LIds not dense"
        );

        // Every acked pair reads back verbatim.
        wait_readable(&cluster, LId(total - 1));
        let mut reader = cluster.client(DatacenterId(0));
        for (lid, body) in &acked {
            let e = reader.read(*lid).expect("read back");
            assert_eq!(
                &e.record.body[..],
                body.as_bytes(),
                "{mode:?}: body mismatch at {lid}"
            );
        }

        // The TCP backend must actually have crossed the wire.
        if mode == TransportMode::Tcp {
            let snapshot = cluster.metrics();
            let wire_bytes: u64 = snapshot
                .counters
                .iter()
                .filter(|(name, _)| {
                    name.contains(".chariots.transport.") && name.ends_with(".bytes_out")
                })
                .map(|(_, v)| *v)
                .sum();
            assert!(
                wire_bytes > 0,
                "tcp run reported zero socket bytes — the workload never \
                 left the process boundary"
            );
        }
        cluster.shutdown();
    }
}
