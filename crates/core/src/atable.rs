//! The Awareness Table (ATable), inspired by the Replicated Dictionary
//! (§6.1).
//!
//! "The table represents the datacenter's extent of knowledge about other
//! DCs. … The entry `T_A[B,C]` contains a TOId, t, that represents B's
//! knowledge about C's records according to A: A is certain that B knows
//! about all records generated at host DC C up to record t."
//!
//! Row `i` is datacenter `i`'s applied cut (a [`VersionVector`]); the whole
//! table is the transitive-knowledge matrix that drives propagation
//! filtering and garbage collection.

use std::fmt;

use chariots_types::{DatacenterId, TOId, VersionVector};

/// An n×n awareness table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ATable {
    n: usize,
    /// Row-major: `cells[i * n + j] = T[i][j]`.
    cells: Vec<TOId>,
}

impl ATable {
    /// An all-zero table for `n` datacenters ("the ATable entries are set
    /// to zero" at initialization).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one datacenter");
        ATable {
            n,
            cells: vec![TOId::NONE; n * n],
        }
    }

    /// Number of datacenters covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never zero; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn idx(&self, i: DatacenterId, j: DatacenterId) -> usize {
        debug_assert!(i.index() < self.n && j.index() < self.n);
        i.index() * self.n + j.index()
    }

    /// `T[i][j]`: how much of `j`'s history datacenter `i` is known to
    /// have.
    #[inline]
    pub fn get(&self, i: DatacenterId, j: DatacenterId) -> TOId {
        self.cells[self.idx(i, j)]
    }

    /// Raises `T[i][j]` to `t` (never lowers — knowledge is monotone).
    /// Returns whether the cell actually rose.
    pub fn observe(&mut self, i: DatacenterId, j: DatacenterId, t: TOId) -> bool {
        let idx = self.idx(i, j);
        if t > self.cells[idx] {
            self.cells[idx] = t;
            true
        } else {
            false
        }
    }

    /// Replaces row `i` with the pointwise max of itself and `row` —
    /// how a datacenter incorporates a peer's gossiped applied cut.
    /// Returns whether any cell rose (stale gossip merges to `false`), so
    /// callers can propagate knowledge changes — e.g. wake the senders —
    /// without a feedback storm on redundant deliveries.
    pub fn merge_row(&mut self, i: DatacenterId, row: &VersionVector) -> bool {
        let mut rose = false;
        for j in 0..self.n {
            let dc = DatacenterId(j as u16);
            rose |= self.observe(i, dc, row.get(dc));
        }
        rose
    }

    /// Pointwise max with an entire table (full ATable exchange, as in the
    /// abstract solution's *Propagate*).
    pub fn merge(&mut self, other: &ATable) {
        assert_eq!(self.n, other.n, "tables must cover the same deployment");
        for (mine, theirs) in self.cells.iter_mut().zip(other.cells.iter()) {
            if theirs > mine {
                *mine = *theirs;
            }
        }
    }

    /// Row `i` as a version vector (datacenter `i`'s applied cut).
    pub fn row(&self, i: DatacenterId) -> VersionVector {
        let mut v = VersionVector::new(self.n);
        for j in 0..self.n {
            let dc = DatacenterId(j as u16);
            v.set(dc, self.get(i, dc));
        }
        v
    }

    /// Whether, according to this table, datacenter `j` knows record
    /// `(host, toid)`.
    #[inline]
    pub fn knows(&self, j: DatacenterId, host: DatacenterId, toid: TOId) -> bool {
        self.get(j, host) >= toid
    }

    /// The garbage-collection bound for records hosted at `host`: the
    /// largest TOId known by *every* datacenter. A record `r` of `host` may
    /// be collected iff `toid(r) ≤ gc_bound(host)` — "a record can be
    /// garbage collected at i if and only if ∀j (T_i[j, host(r)] ≥ ts(r))".
    pub fn gc_bound(&self, host: DatacenterId) -> TOId {
        (0..self.n)
            .map(|j| self.get(DatacenterId(j as u16), host))
            .min()
            .unwrap_or(TOId::NONE)
    }
}

impl fmt::Display for ATable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}:", DatacenterId(i as u16))?;
            for j in 0..self.n {
                write!(
                    f,
                    " {}",
                    self.get(DatacenterId(i as u16), DatacenterId(j as u16)).0
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: u16) -> DatacenterId {
        DatacenterId(i)
    }

    #[test]
    fn new_table_is_all_zero() {
        let t = ATable::new(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.get(dc(i), dc(j)), TOId::NONE);
            }
        }
    }

    #[test]
    fn observe_is_monotone() {
        let mut t = ATable::new(2);
        t.observe(dc(0), dc(1), TOId(5));
        assert_eq!(t.get(dc(0), dc(1)), TOId(5));
        t.observe(dc(0), dc(1), TOId(3));
        assert_eq!(t.get(dc(0), dc(1)), TOId(5));
    }

    #[test]
    fn merge_row_takes_pointwise_max() {
        let mut t = ATable::new(3);
        t.observe(dc(1), dc(0), TOId(4));
        let row = VersionVector::from_entries(vec![TOId(2), TOId(7), TOId(1)]);
        assert!(t.merge_row(dc(1), &row), "knowledge rose");
        assert_eq!(t.get(dc(1), dc(0)), TOId(4), "kept the larger");
        assert_eq!(t.get(dc(1), dc(1)), TOId(7));
        assert_eq!(t.get(dc(1), dc(2)), TOId(1));
    }

    #[test]
    fn redundant_merges_report_no_rise() {
        let mut t = ATable::new(2);
        let row = VersionVector::from_entries(vec![TOId(3), TOId(5)]);
        assert!(t.merge_row(dc(0), &row));
        // A duplicated delivery of the same cut changes nothing.
        assert!(!t.merge_row(dc(0), &row));
        assert!(!t.observe(dc(0), dc(1), TOId(4)), "stale observe");
        assert!(t.observe(dc(0), dc(1), TOId(6)));
    }

    #[test]
    fn merge_tables() {
        let mut a = ATable::new(2);
        let mut b = ATable::new(2);
        a.observe(dc(0), dc(0), TOId(3));
        b.observe(dc(0), dc(0), TOId(1));
        b.observe(dc(1), dc(0), TOId(9));
        a.merge(&b);
        assert_eq!(a.get(dc(0), dc(0)), TOId(3));
        assert_eq!(a.get(dc(1), dc(0)), TOId(9));
    }

    #[test]
    fn knows_checks_cell() {
        let mut t = ATable::new(2);
        t.observe(dc(1), dc(0), TOId(5));
        assert!(t.knows(dc(1), dc(0), TOId(5)));
        assert!(t.knows(dc(1), dc(0), TOId(1)));
        assert!(!t.knows(dc(1), dc(0), TOId(6)));
    }

    #[test]
    fn gc_bound_is_min_over_replicas() {
        let mut t = ATable::new(3);
        // Everyone's knowledge of host 0's records: 5, 3, 7.
        t.observe(dc(0), dc(0), TOId(5));
        t.observe(dc(1), dc(0), TOId(3));
        t.observe(dc(2), dc(0), TOId(7));
        assert_eq!(t.gc_bound(dc(0)), TOId(3));
        // Host 1 unknown anywhere: bound is NONE (collect nothing).
        assert_eq!(t.gc_bound(dc(1)), TOId::NONE);
    }

    #[test]
    fn row_roundtrip() {
        let mut t = ATable::new(3);
        t.observe(dc(2), dc(0), TOId(1));
        t.observe(dc(2), dc(2), TOId(4));
        let row = t.row(dc(2));
        assert_eq!(
            row,
            VersionVector::from_entries(vec![TOId(1), TOId::NONE, TOId(4)])
        );
    }
}
