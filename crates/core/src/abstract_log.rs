//! The abstract replication solution (§6.1): Chariots on "a totally ordered
//! thread of control at the datacenter".
//!
//! This module implements the paper's abstract algorithms *verbatim*:
//! Initialization, Append, Read, Propagate, and Reception, over a log and
//! an [`ATable`]. The distributed pipeline (§6.2) must be behaviourally
//! equivalent to this model, so it doubles as the **test oracle**: property
//! tests drive both with the same workload and compare the outcomes
//! (see the crate-level tests and `tests/model_equivalence.rs`).

use std::collections::BTreeMap;

use bytes::Bytes;
use chariots_types::{
    ChariotsError, DatacenterId, Entry, LId, Record, RecordId, Result, TOId, TagSet, VersionVector,
};

use crate::atable::ATable;

/// A snapshot sent from one abstract datacenter to another (*Propagate*):
/// "a subset of the records in the log that are not already known by j"
/// plus the sender's ATable.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The sending datacenter.
    pub from: DatacenterId,
    /// Records the sender believes the receiver lacks.
    pub records: Vec<Record>,
    /// The sender's awareness table at snapshot time.
    pub atable: ATable,
}

/// One datacenter of the abstract solution.
#[derive(Debug)]
pub struct AbstractDc {
    dc: DatacenterId,
    n: usize,
    /// The shared log; index = `LId`.
    log: Vec<Entry>,
    atable: ATable,
    /// Applied cut: for each host, the highest TOId whose record is in the
    /// log. Mirrors row `dc` of the ATable.
    applied: VersionVector,
    /// The priority queue of records with unsatisfied dependencies, keyed
    /// by `(host, toid)` so duplicates collapse ("ordered according to
    /// causal relations" — per-host TOId order is exactly the causal order
    /// of a single host's records).
    pending: BTreeMap<RecordId, Record>,
    /// Next TOId for locally appended records.
    next_toid: TOId,
}

impl AbstractDc {
    /// *Initialization*: empty log, all-zero ATable, first local record
    /// will carry TOId 1.
    pub fn new(dc: DatacenterId, n: usize) -> Self {
        assert!(dc.index() < n);
        AbstractDc {
            dc,
            n,
            log: Vec::new(),
            atable: ATable::new(n),
            applied: VersionVector::new(n),
            pending: BTreeMap::new(),
            next_toid: TOId::FIRST,
        }
    }

    /// This datacenter's id.
    pub fn id(&self) -> DatacenterId {
        self.dc
    }

    /// *Append*: construct the record (host id, TOId, causality, tags),
    /// update `T[I][I]`, add to the log. Returns the assigned
    /// `(TOId, LId)`.
    pub fn append(&mut self, tags: TagSet, body: impl Into<Bytes>) -> (TOId, LId) {
        let toid = self.next_toid;
        self.next_toid = toid.next();
        // The record's causal cut is everything this datacenter has
        // incorporated so far (local total order is implied by TOId but
        // carrying it in deps is harmless and keeps the rule uniform).
        let deps = self.applied.clone();
        let record = Record::new(RecordId::new(self.dc, toid), deps, tags, body.into());
        let lid = LId(self.log.len() as u64);
        self.applied.set(self.dc, toid);
        self.atable.observe(self.dc, self.dc, toid);
        self.log.push(Entry::new(lid, record));
        (toid, lid)
    }

    /// *Read*: the record with the specified LId.
    pub fn read(&self, lid: LId) -> Result<&Entry> {
        self.log
            .get(lid.0 as usize)
            .ok_or(ChariotsError::NotYetAvailable(lid))
    }

    /// The number of records in the log.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The whole log in `LId` order.
    pub fn log(&self) -> &[Entry] {
        &self.log
    }

    /// The applied cut.
    pub fn applied(&self) -> &VersionVector {
        &self.applied
    }

    /// The awareness table.
    pub fn atable(&self) -> &ATable {
        &self.atable
    }

    /// Records parked with unsatisfied dependencies.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// *Propagate*: a snapshot for datacenter `to` containing every record
    /// not already known by it — "whether a record r is known to j can be
    /// verified using `T_i[j, I]` and comparing it to TOId(r)".
    pub fn propagate_to(&self, to: DatacenterId) -> Snapshot {
        let records = self
            .log
            .iter()
            .map(|e| &e.record)
            .filter(|r| !self.atable.knows(to, r.host(), r.toid()))
            .cloned()
            .collect();
        Snapshot {
            from: self.dc,
            records,
            atable: self.atable.clone(),
        }
    }

    /// *Reception*: stage incoming records, incorporate the ready ones in
    /// causal order, park the rest in the priority queue, merge the ATable.
    pub fn receive(&mut self, snapshot: Snapshot) {
        // Step 1: staging buffer → pending queue (duplicates collapse; the
        // ones already applied are dropped immediately).
        for record in snapshot.records {
            if self.applied.covers(record.host(), record.toid()) {
                continue; // already incorporated
            }
            self.pending.entry(record.id).or_insert(record);
        }
        // ATable merge: everything the sender knew, we now know it knew.
        self.atable.merge(&snapshot.atable);
        // Steps 2–3: repeatedly move records whose dependencies are
        // satisfied from the queue into the log.
        self.drain_pending();
        // Our own row reflects the newly incorporated records.
        self.atable.merge_row(self.dc, &self.applied.clone());
    }

    /// Transfers every pending record whose dependencies are satisfied to
    /// the log, looping until a fixed point ("Chariots checks the priority
    /// queue frequently to transfer any records that have their
    /// dependencies satisfied").
    fn drain_pending(&mut self) {
        loop {
            let ready: Vec<RecordId> = self
                .pending
                .values()
                .filter(|r| self.can_apply(r))
                .map(|r| r.id)
                .collect();
            if ready.is_empty() {
                return;
            }
            for id in ready {
                // Re-check: applying one record may have satisfied — or, by
                // per-host ordering, *revealed as premature* — another.
                let Some(record) = self.pending.get(&id) else {
                    continue;
                };
                if !self.can_apply(record) {
                    continue;
                }
                let record = self.pending.remove(&id).expect("present");
                let lid = LId(self.log.len() as u64);
                self.applied.set(record.host(), record.toid());
                self.atable.observe(self.dc, record.host(), record.toid());
                self.log.push(Entry::new(lid, record));
            }
        }
    }

    /// A record can be incorporated when (a) it is the next record of its
    /// host's total order, and (b) its causal cut is contained in ours.
    fn can_apply(&self, record: &Record) -> bool {
        record.toid() == self.applied.get(record.host()).next()
            && self.applied.dominates(&record.deps)
    }

    /// *Garbage collection*: drops the longest log prefix in which every
    /// record is known by all replicas (`∀j: T[j][host(r)] ≥ toid(r)`).
    /// Returns how many records were collected. (The abstract model drops
    /// prefixes to mirror the distributed GC's LId bound.)
    pub fn gc(&mut self) -> usize {
        let collectible = self
            .log
            .iter()
            .take_while(|e| {
                let r = &e.record;
                self.atable.gc_bound(r.host()) >= r.toid()
            })
            .count();
        // Keep LIds stable: the abstract model remembers the offset.
        // For simplicity we only report what *could* be collected; the
        // distributed system performs the actual reclamation (its segments
        // support offsets natively).
        collectible
    }

    /// The n in this deployment.
    pub fn num_datacenters(&self) -> usize {
        self.n
    }
}

/// A convenience harness: `n` abstract datacenters with all-pairs
/// propagation, used by tests and the model-equivalence oracle.
#[derive(Debug)]
pub struct AbstractCluster {
    dcs: Vec<AbstractDc>,
}

impl AbstractCluster {
    /// `n` fresh datacenters.
    pub fn new(n: usize) -> Self {
        AbstractCluster {
            dcs: (0..n)
                .map(|i| AbstractDc::new(DatacenterId(i as u16), n))
                .collect(),
        }
    }

    /// Access one datacenter.
    pub fn dc(&self, i: DatacenterId) -> &AbstractDc {
        &self.dcs[i.index()]
    }

    /// Mutable access to one datacenter.
    pub fn dc_mut(&mut self, i: DatacenterId) -> &mut AbstractDc {
        &mut self.dcs[i.index()]
    }

    /// Number of datacenters.
    pub fn len(&self) -> usize {
        self.dcs.len()
    }

    /// Never empty in practice.
    pub fn is_empty(&self) -> bool {
        self.dcs.is_empty()
    }

    /// One propagation step from `from` to `to`.
    pub fn propagate(&mut self, from: DatacenterId, to: DatacenterId) {
        let snapshot = self.dcs[from.index()].propagate_to(to);
        self.dcs[to.index()].receive(snapshot);
    }

    /// Rounds of all-pairs propagation until every log stops growing
    /// (quiescence).
    pub fn settle(&mut self) {
        loop {
            let before: usize = self.dcs.iter().map(|d| d.len()).sum();
            let n = self.dcs.len();
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        self.propagate(DatacenterId(i as u16), DatacenterId(j as u16));
                    }
                }
            }
            let after: usize = self.dcs.iter().map(|d| d.len()).sum();
            if after == before {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_types::Tag;

    fn dc(i: u16) -> DatacenterId {
        DatacenterId(i)
    }

    #[test]
    fn first_record_has_toid_one() {
        let mut a = AbstractDc::new(dc(0), 2);
        let (toid, lid) = a.append(TagSet::new(), "x");
        assert_eq!(toid, TOId::FIRST);
        assert_eq!(lid, LId(0));
        assert_eq!(a.atable().get(dc(0), dc(0)), TOId(1));
    }

    #[test]
    fn propagation_replicates_records() {
        let mut cluster = AbstractCluster::new(2);
        cluster.dc_mut(dc(0)).append(TagSet::new(), "from A");
        cluster.propagate(dc(0), dc(1));
        let b = cluster.dc(dc(1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.log()[0].record.host(), dc(0));
        assert_eq!(&b.log()[0].record.body[..], b"from A");
    }

    #[test]
    fn propagation_is_idempotent() {
        let mut cluster = AbstractCluster::new(2);
        cluster.dc_mut(dc(0)).append(TagSet::new(), "x");
        cluster.propagate(dc(0), dc(1));
        cluster.propagate(dc(0), dc(1));
        cluster.propagate(dc(0), dc(1));
        assert_eq!(cluster.dc(dc(1)).len(), 1, "duplicates never re-applied");
    }

    #[test]
    fn atable_filters_known_records() {
        let mut cluster = AbstractCluster::new(2);
        cluster.dc_mut(dc(0)).append(TagSet::new(), "x");
        cluster.propagate(dc(0), dc(1));
        // B tells A it knows A's record (by propagating back).
        cluster.propagate(dc(1), dc(0));
        let snapshot = cluster.dc(dc(0)).propagate_to(dc(1));
        assert!(snapshot.records.is_empty(), "A knows B knows everything");
    }

    #[test]
    fn per_host_total_order_is_preserved() {
        let mut cluster = AbstractCluster::new(2);
        for i in 0..5 {
            cluster.dc_mut(dc(0)).append(TagSet::new(), format!("r{i}"));
        }
        cluster.propagate(dc(0), dc(1));
        let toids: Vec<TOId> = cluster
            .dc(dc(1))
            .log()
            .iter()
            .map(|e| e.record.toid())
            .collect();
        assert_eq!(toids, (1..=5).map(TOId).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_order_snapshot_parks_in_pending() {
        let mut a = AbstractDc::new(dc(0), 2);
        let mut b = AbstractDc::new(dc(1), 2);
        a.append(TagSet::new(), "r1");
        a.append(TagSet::new(), "r2");
        // Deliver only r2: it must wait for r1.
        let full = a.propagate_to(dc(1));
        let only_r2 = Snapshot {
            from: full.from,
            records: vec![full.records[1].clone()],
            atable: full.atable.clone(),
        };
        b.receive(only_r2);
        assert_eq!(b.len(), 0);
        assert_eq!(b.pending(), 1);
        // Now the full snapshot arrives: both apply, in order.
        b.receive(full);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.log()[0].record.toid(), TOId(1));
        assert_eq!(b.log()[1].record.toid(), TOId(2));
    }

    #[test]
    fn causal_dependency_across_hosts_is_honored() {
        // A writes x. B reads it (via propagation), then writes y.
        // A third DC must never apply y before x.
        let mut cluster = AbstractCluster::new(3);
        cluster
            .dc_mut(dc(0))
            .append(TagSet::new().with(Tag::with_value("key", "x")), "x=10");
        cluster.propagate(dc(0), dc(1));
        cluster
            .dc_mut(dc(1))
            .append(TagSet::new().with(Tag::with_value("key", "y")), "y=x+1");
        // Deliver B's record to C *without* A's: it must park.
        let b_snapshot = cluster.dc(dc(1)).propagate_to(dc(2));
        let only_y = Snapshot {
            from: dc(1),
            records: b_snapshot
                .records
                .iter()
                .filter(|r| r.host() == dc(1))
                .cloned()
                .collect(),
            atable: ATable::new(3), // hide the sender's knowledge
        };
        cluster.dc_mut(dc(2)).receive(only_y);
        assert_eq!(cluster.dc(dc(2)).len(), 0, "y applied before its cause");
        // Full propagation settles everything, in causal order.
        cluster.settle();
        let c_log = cluster.dc(dc(2)).log();
        assert_eq!(c_log.len(), 2);
        assert_eq!(c_log[0].record.host(), dc(0), "cause precedes effect");
        assert_eq!(c_log[1].record.host(), dc(1));
    }

    #[test]
    fn concurrent_records_may_order_differently_per_replica() {
        // The Hyksos Fig. 2 scenario: A and B concurrently put x.
        let mut cluster = AbstractCluster::new(2);
        cluster.dc_mut(dc(0)).append(TagSet::new(), "x=30 (A)");
        cluster.dc_mut(dc(1)).append(TagSet::new(), "x=10 (B)");
        cluster.settle();
        let a_order: Vec<DatacenterId> = cluster
            .dc(dc(0))
            .log()
            .iter()
            .map(|e| e.record.host())
            .collect();
        let b_order: Vec<DatacenterId> = cluster
            .dc(dc(1))
            .log()
            .iter()
            .map(|e| e.record.host())
            .collect();
        // Each datacenter put its own record first — "this is permissible
        // if no causal dependencies exist between them".
        assert_eq!(a_order, vec![dc(0), dc(1)]);
        assert_eq!(b_order, vec![dc(1), dc(0)]);
    }

    #[test]
    fn settle_reaches_identical_record_sets() {
        let mut cluster = AbstractCluster::new(3);
        for round in 0..4 {
            for i in 0..3 {
                cluster
                    .dc_mut(dc(i))
                    .append(TagSet::new(), format!("dc{i} r{round}"));
            }
            // Partial propagation between rounds.
            cluster.propagate(dc(0), dc(1));
            cluster.propagate(dc(2), dc(0));
        }
        cluster.settle();
        let mut sets: Vec<Vec<RecordId>> = (0..3)
            .map(|i| {
                let mut ids: Vec<RecordId> =
                    cluster.dc(dc(i)).log().iter().map(|e| e.id()).collect();
                ids.sort();
                ids
            })
            .collect();
        let first = sets.remove(0);
        assert_eq!(first.len(), 12);
        for other in sets {
            assert_eq!(first, other);
        }
    }

    #[test]
    fn gc_counts_fully_replicated_prefix() {
        let mut cluster = AbstractCluster::new(2);
        cluster.dc_mut(dc(0)).append(TagSet::new(), "x");
        cluster.dc_mut(dc(0)).append(TagSet::new(), "y");
        assert_eq!(cluster.dc_mut(dc(0)).gc(), 0, "B knows nothing yet");
        cluster.settle();
        // After settle, B's knowledge of A's records flows back to A.
        assert_eq!(cluster.dc_mut(dc(0)).gc(), 2);
    }
}
