//! The queue token (§6.2): the circulating capability to assign `LId`s.
//!
//! "Queues ensure causality of LId assignments by the use of a token. The
//! token consists of the current maximum TOId of each datacenter in the
//! local log, the LId of the most recent record, and the deferred records
//! with unsatisfied dependencies. … The token is sent to the next
//! [queue] in a round-robin fashion."

use std::collections::BTreeMap;

use chariots_types::{DatacenterId, LId, Record, RecordId, TOId, VersionVector};

use crate::message::LocalAppend;

/// The token circulating among the queues stage.
#[derive(Debug)]
pub struct Token {
    /// "The current maximum TOId of each datacenter in the local log."
    pub applied: VersionVector,
    /// The next `LId` to assign (successor of "the LId of the most recent
    /// record").
    pub next_lid: LId,
    /// External records whose dependencies are not yet satisfied, keyed by
    /// identity so redeliveries collapse. Carried with the token when the
    /// deployment's `token_carries_deferred` policy is on.
    pub deferred: BTreeMap<RecordId, Record>,
    /// Local appends whose client context is not yet satisfied.
    pub deferred_local: Vec<LocalAppend>,
    /// How many times the token has been passed (diagnostics).
    pub passes: u64,
}

impl Token {
    /// The initial token for a deployment of `num_datacenters`.
    pub fn new(num_datacenters: usize) -> Self {
        Token {
            applied: VersionVector::new(num_datacenters),
            next_lid: LId::ZERO,
            deferred: BTreeMap::new(),
            deferred_local: Vec::new(),
            passes: 0,
        }
    }

    /// Whether an external record is ready for `LId` assignment: it must be
    /// the next record of its host's total order, and its causal cut must
    /// be contained in the applied cut.
    pub fn can_apply(&self, record: &Record) -> bool {
        record.toid() == self.applied.get(record.host()).next()
            && self.applied.dominates(&record.deps)
    }

    /// Whether an external record is a duplicate of one already in the log.
    pub fn is_duplicate(&self, record: &Record) -> bool {
        self.applied.covers(record.host(), record.toid())
    }

    /// Assigns the next `LId` to an applicable external record, updating
    /// the applied cut. Caller must have checked [`can_apply`](Self::can_apply).
    pub fn assign_external(&mut self, record: &Record) -> LId {
        debug_assert!(self.can_apply(record));
        let lid = self.next_lid;
        self.next_lid = lid.next();
        self.applied.set(record.host(), record.toid());
        lid
    }

    /// Assigns the next `(TOId, LId)` to a local append for datacenter
    /// `dc`, updating the applied cut.
    pub fn assign_local(&mut self, dc: DatacenterId) -> (TOId, LId) {
        let toid = self.applied.get(dc).next();
        let lid = self.next_lid;
        self.next_lid = lid.next();
        self.applied.set(dc, toid);
        (toid, lid)
    }

    /// Total records parked on the token.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len() + self.deferred_local.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chariots_types::TagSet;

    fn record(host: u16, toid: u64, deps: Vec<u64>) -> Record {
        Record::new(
            RecordId::new(DatacenterId(host), TOId(toid)),
            VersionVector::from_entries(deps.into_iter().map(TOId).collect()),
            TagSet::new(),
            Bytes::new(),
        )
    }

    #[test]
    fn fresh_token_applies_first_records_only() {
        let t = Token::new(2);
        assert!(t.can_apply(&record(0, 1, vec![0, 0])));
        assert!(t.can_apply(&record(1, 1, vec![0, 0])));
        assert!(!t.can_apply(&record(0, 2, vec![0, 0])), "gap in host order");
        assert!(
            !t.can_apply(&record(1, 1, vec![1, 0])),
            "dependency not in log"
        );
    }

    #[test]
    fn assign_external_advances_cut_and_lid() {
        let mut t = Token::new(2);
        let r1 = record(0, 1, vec![0, 0]);
        assert_eq!(t.assign_external(&r1), LId(0));
        assert_eq!(t.applied.get(DatacenterId(0)), TOId(1));
        let r2 = record(0, 2, vec![1, 0]);
        assert!(t.can_apply(&r2));
        assert_eq!(t.assign_external(&r2), LId(1));
        assert_eq!(t.next_lid, LId(2));
    }

    #[test]
    fn assign_local_interleaves_with_external() {
        let mut t = Token::new(2);
        let (toid, lid) = t.assign_local(DatacenterId(0));
        assert_eq!((toid, lid), (TOId(1), LId(0)));
        let ext = record(1, 1, vec![0, 0]);
        assert_eq!(t.assign_external(&ext), LId(1));
        let (toid, lid) = t.assign_local(DatacenterId(0));
        assert_eq!((toid, lid), (TOId(2), LId(2)));
    }

    #[test]
    fn duplicates_are_detected() {
        let mut t = Token::new(2);
        let r = record(1, 1, vec![0, 0]);
        t.assign_external(&r);
        assert!(t.is_duplicate(&r));
        assert!(!t.is_duplicate(&record(1, 2, vec![0, 1])));
    }

    #[test]
    fn deferred_dedupes_by_identity() {
        let mut t = Token::new(2);
        let r = record(1, 2, vec![0, 1]); // not applicable yet
        t.deferred.insert(r.id, r.clone());
        t.deferred.insert(r.id, r);
        assert_eq!(t.deferred_len(), 1);
    }
}
