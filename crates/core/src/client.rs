//! The Chariots application-client library (§3): append/read with causal
//! session context.
//!
//! Each client tracks the causal cut of everything it has observed (its own
//! appends plus every record it has read). Appends carry that cut as their
//! dependency vector, so "happened-before relations between read and append
//! operations" (§3) are honored at every replica.

use bytes::Bytes;
use chariots_simnet::PipelineTracer;
use chariots_types::{
    ChariotsError, Entry, LId, ReadRule, Result, TOId, TagSet, TraceId, VersionVector,
};
use crossbeam::channel::bounded;
use parking_lot::RwLock;
use std::sync::Arc;

use chariots_flstore::FLStoreClient;

use crate::atable::ATable;
use crate::datacenter::ChariotsDc;
use crate::message::{Incoming, LocalAppend};
use crate::stages::batcher::BatcherHandle;

/// A client session against one Chariots datacenter.
pub struct ChariotsClient {
    dc: chariots_types::DatacenterId,
    batchers: Arc<RwLock<Vec<BatcherHandle>>>,
    store: FLStoreClient,
    atable: Arc<RwLock<ATable>>,
    /// The causal cut this client has observed.
    context: VersionVector,
    rr: usize,
    tracer: PipelineTracer,
    /// The trace id stamped on this client's most recent sampled append.
    last_trace: Option<TraceId>,
}

impl ChariotsClient {
    /// Opens a session (called via [`ChariotsDc::client`]).
    pub(crate) fn connect(dc: &ChariotsDc) -> Self {
        ChariotsClient {
            dc: dc.id(),
            batchers: dc.batchers(),
            store: dc.flstore().client(),
            atable: dc.atable(),
            context: VersionVector::new(dc.config().num_datacenters),
            rr: 0,
            tracer: dc.tracer().clone(),
            last_trace: None,
        }
    }

    /// Adopts a causal session token exported by another client (e.g. a
    /// user's session moving between frontends): subsequent appends are
    /// ordered after everything the token covers, and
    /// [`wait_for`](Self::wait_for) can block until the local replica has
    /// caught up to it.
    pub fn with_context(mut self, token: VersionVector) -> Self {
        self.context.merge(&token);
        self
    }

    /// The local replica's applied cut: the highest TOId of each
    /// datacenter whose records are in this datacenter's log.
    pub fn applied_cut(&self) -> VersionVector {
        self.atable.read().row(self.dc)
    }

    /// Session guarantee: blocks until the local replica has incorporated
    /// every record in `cut` **and made it readable** (below the Head of
    /// the Log), so a session handed over between frontends sees its own
    /// writes. Returns whether the cut was reached before `timeout`.
    pub fn wait_for(&mut self, cut: &VersionVector, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        'retry: loop {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if !self.applied_cut().dominates(cut) {
                std::thread::sleep(std::time::Duration::from_millis(2));
                continue;
            }
            // Applied is necessary but not sufficient: the records must
            // also sit below the Head of the Log to be readable. Verify
            // the frontier record of each datacenter in the cut.
            for (dc, toid) in cut.iter() {
                if toid.is_none() {
                    continue;
                }
                let rule =
                    ReadRule::where_(chariots_types::Condition::TOIdEq(dc, toid)).most_recent(1);
                match self.store.read_rule(&rule) {
                    Ok(hits) if !hits.is_empty() => {}
                    _ => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        continue 'retry;
                    }
                }
            }
            return true;
        }
    }

    /// Session guarantee: blocks until this client's *own* observations
    /// (its causal context — reads and writes) are readable locally.
    pub fn wait_for_self(&mut self, timeout: std::time::Duration) -> bool {
        let cut = self.context.clone();
        self.wait_for(&cut, timeout)
    }

    /// The client's current causal context.
    pub fn context(&self) -> &VersionVector {
        &self.context
    }

    fn send_to_batcher(&mut self, incoming: Incoming) -> Result<()> {
        let batchers = self.batchers.read();
        if batchers.is_empty() {
            return Err(ChariotsError::Unavailable("no batchers".into()));
        }
        self.rr = (self.rr + 1) % batchers.len();
        if batchers[self.rr].send(incoming) {
            Ok(())
        } else {
            Err(ChariotsError::ShutDown)
        }
    }

    /// `Append(in: record, tags)` — §3. Blocks until the pipeline assigns
    /// the `(TOId, LId)` and returns them.
    pub fn append(&mut self, tags: TagSet, body: impl Into<Bytes>) -> Result<(TOId, LId)> {
        let (reply_tx, reply_rx) = bounded(1);
        let trace = self.tracer.sample();
        self.last_trace = trace;
        self.send_to_batcher(Incoming::Local(LocalAppend {
            tags,
            body: body.into(),
            deps: self.context.clone(),
            reply: Some(chariots_simnet::ReplyTo::local(reply_tx)),
            trace,
        }))?;
        let (toid, lid) = reply_rx.recv().map_err(|_| ChariotsError::ShutDown)?;
        // Our own append is something we have observed.
        self.context.observe(self.dc, toid);
        Ok((toid, lid))
    }

    /// Fire-and-forget append (open-loop load generation).
    pub fn append_async(&mut self, tags: TagSet, body: impl Into<Bytes>) -> Result<()> {
        let trace = self.tracer.sample();
        self.last_trace = trace;
        self.send_to_batcher(Incoming::Local(LocalAppend {
            tags,
            body: body.into(),
            deps: self.context.clone(),
            reply: None,
            trace,
        }))
    }

    /// The trace id of this client's most recent sampled append (`None` if
    /// the last append was not sampled or tracing is disabled). Feed it to
    /// [`PipelineTracer::stage_latencies`] for a per-stage breakdown.
    pub fn last_trace(&self) -> Option<TraceId> {
        self.last_trace
    }

    /// `Read` by position. Reads below the Head of the Log only (no
    /// observable gaps), and folds the record into the causal context.
    pub fn read(&mut self, lid: LId) -> Result<Entry> {
        let entry = self.store.read(lid)?;
        self.observe_entry(&entry);
        Ok(entry)
    }

    /// Batched `Read` by position: one scatter-gather round trip per
    /// owning maintainer group instead of one RPC per record. Results come
    /// back in input order; every successfully read record is folded into
    /// the causal context.
    pub fn read_many(&mut self, lids: &[LId]) -> Vec<Result<Entry>> {
        let results = self.store.read_many(lids);
        for entry in results.iter().flatten() {
            self.observe_entry(entry);
        }
        results
    }

    /// `Read(in: rules, out: records)` — §3.
    pub fn read_rule(&mut self, rule: &ReadRule) -> Result<Vec<Entry>> {
        let entries = self.store.read_rule(rule)?;
        for e in &entries {
            self.observe_entry(e);
        }
        Ok(entries)
    }

    /// The Head of the Log (Hyksos polls this for get-transaction
    /// snapshots).
    pub fn head_of_log(&mut self) -> Result<LId> {
        self.store.head_of_log()
    }

    /// Approximate records in the local shared log.
    pub fn approx_records(&self) -> u64 {
        self.store.approx_records()
    }

    fn observe_entry(&mut self, entry: &Entry) {
        let r = &entry.record;
        self.context.observe(r.host(), r.toid());
        self.context.merge(&r.deps);
    }
}
