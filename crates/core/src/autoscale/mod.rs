//! The autoscaling control plane: metrics-driven elasticity over the
//! §6.2 pipeline and the §6.3 reconfiguration machinery.
//!
//! Chariots makes every stage elastically growable online — batchers,
//! queues, and filters via the shared routing structures, maintainers via
//! epoch-based future reassignment — but the paper leaves *when* to grow
//! to the operator. This module closes the loop:
//!
//! * [`signals`] scrapes the deployment's [`LiveView`] into smoothed
//!   per-stage signals (queue depth, occupancy, stage p99, maintainer
//!   batch size),
//! * [`policy`] folds them through a target-tracking policy with
//!   hysteresis, sustain counts, per-stage cooldowns, and min/max bounds,
//! * [`actuator`] maps verdicts onto the live cluster — `add_*` and
//!   epoch announcements outward, **drain-and-retire** inward (the
//!   genuinely new mechanism: stop admitting, flush in-flight, unsplice
//!   from the routing plan / token ring, join the thread), and
//! * [`controller`] runs it all on a background thread, journaling every
//!   decision as a typed `ScaleOut` / `ScaleIn` event with the triggering
//!   signal and exporting `chariots.autoscale.*` counters and per-stage
//!   machine-count gauges through the same collector it reads from.
//!
//! [`LiveView`]: chariots_simnet::LiveView

pub mod actuator;
pub mod controller;
pub mod policy;
pub mod signals;

pub use actuator::Actuator;
pub use controller::{
    AutoscaleConfig, AutoscaleOutcome, AutoscaleSummary, Autoscaler, AutoscalerHandle, ScaleAction,
    AUTOSCALE_REGISTRY,
};
pub use policy::{ScaleDecision, StageGovernor, StagePolicy, Verdict};
pub use signals::{extract, ScaleStage, SignalSmoother, StageSignal};
