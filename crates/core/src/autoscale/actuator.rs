//! Turning verdicts into cluster mutations.
//!
//! One thin, synchronous layer between the policy and the deployment:
//! scale-out maps onto the live-elasticity entry points (§6.3 —
//! `add_batcher` / `add_queue` / `add_filter`, and epoch-based range
//! reassignment for maintainers), scale-in onto the drain-and-retire
//! paths. Every call returns the stage's resulting machine count so the
//! controller can gauge it without re-locking the cluster.

use std::time::Duration;

use chariots_types::{ChariotsError, LId, Result};

use super::policy::ScaleDecision;
use super::signals::ScaleStage;
use crate::datacenter::ChariotsDc;

/// Actuation knobs: drain deadlines and reassignment margins.
#[derive(Debug, Clone)]
pub struct Actuator {
    /// How long a retiring queue gets to drain before the retire is
    /// cancelled and the node restored.
    pub queue_drain_timeout: Duration,
    /// TOId margin past the highest known TOId for a filter routing
    /// boundary (must outrun records in flight to batchers).
    pub filter_margin: u64,
    /// LId margin past the current head of log for a maintainer epoch
    /// boundary (must outrun records in flight to the queues: records
    /// assigned *before* the announcement but *above* the boundary would
    /// land on the old owner while readers ask the new one).
    pub maintainer_margin: u64,
}

impl Default for Actuator {
    fn default() -> Self {
        Actuator {
            queue_drain_timeout: Duration::from_secs(10),
            filter_margin: 5_000,
            maintainer_margin: 200_000,
        }
    }
}

impl Actuator {
    /// Applies one decision to one datacenter and returns the stage's
    /// machine count afterwards. Errors (drain timeout, floor reached,
    /// unsupported direction) leave the deployment as it was.
    pub fn apply(
        &self,
        dc: &mut ChariotsDc,
        stage: ScaleStage,
        decision: ScaleDecision,
    ) -> Result<usize> {
        match (stage, decision) {
            (ScaleStage::Batcher, ScaleDecision::Out) => {
                dc.add_batcher();
                Ok(dc.batcher_count())
            }
            (ScaleStage::Batcher, ScaleDecision::In) => {
                dc.retire_batcher()?;
                Ok(dc.batcher_count())
            }
            (ScaleStage::Queue, ScaleDecision::Out) => {
                dc.add_queue();
                Ok(dc.queue_count())
            }
            (ScaleStage::Queue, ScaleDecision::In) => {
                dc.retire_queue(self.queue_drain_timeout)?;
                Ok(dc.queue_count())
            }
            (ScaleStage::Filter, ScaleDecision::Out) => {
                dc.add_filter(self.filter_margin);
                Ok(dc.filter_count())
            }
            (ScaleStage::Maintainer, ScaleDecision::Out) => {
                let hl = dc.flstore().client().head_of_log()?;
                dc.flstore_add_maintainer(LId(hl.0 + self.maintainer_margin))?;
                Ok(dc.maintainer_count())
            }
            (ScaleStage::Filter | ScaleStage::Maintainer, ScaleDecision::In) => {
                Err(ChariotsError::InvalidConfig(format!(
                    "{stage} scale-in is not supported: its routing history only grows"
                )))
            }
        }
    }
}
