//! Per-stage load signals scraped from the collector's [`LiveView`].
//!
//! The sensor side of the control loop: raw extraction pulls the queue
//! depth / occupancy gauges, stage latency quantiles, and the FLStore
//! batch-size histogram out of a live view by key, and a
//! [`SignalSmoother`] EWMA-filters them so one noisy scrape window can't
//! flap a scale decision.

use std::collections::HashMap;

use chariots_simnet::LiveView;

/// The four elastic stages the autoscaler governs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleStage {
    /// Ingress buffering machines.
    Batcher,
    /// Token-ring LId-assignment machines.
    Queue,
    /// Exactly-once championing machines.
    Filter,
    /// FLStore log-maintainer groups.
    Maintainer,
}

impl ScaleStage {
    /// Every governed stage, in evaluation order.
    pub const ALL: [ScaleStage; 4] = [
        ScaleStage::Batcher,
        ScaleStage::Queue,
        ScaleStage::Filter,
        ScaleStage::Maintainer,
    ];

    /// The stage's name in journal events and autoscaler gauges.
    pub fn name(&self) -> &'static str {
        match self {
            ScaleStage::Batcher => "batcher",
            ScaleStage::Queue => "queue",
            ScaleStage::Filter => "filter",
            ScaleStage::Maintainer => "maintainer",
        }
    }

    /// The stage's name in pipeline metric keys (maintainers surface as
    /// the `store` stage there).
    fn metric_stage(&self) -> &'static str {
        match self {
            ScaleStage::Maintainer => "store",
            other => other.name(),
        }
    }
}

impl std::fmt::Display for ScaleStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One stage's load signals (raw or smoothed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSignal {
    /// Records waiting at the stage — channel depth plus records held
    /// (buffered / staged / parked) — summed over its machines.
    pub backlog: f64,
    /// The stage's p99 latency over the live window, microseconds.
    pub p99_us: f64,
    /// Median FLStore maintainer batch size over the live window
    /// (maintainers only: batches pinned at the configured cap mean the
    /// stripe is saturating).
    pub batch_p50: f64,
}

/// Strips `prefix` + a non-empty machine index off `key`, returning what
/// follows the digits (`"dc0.batcher12.queue.depth"` with prefix
/// `"dc0.batcher"` → `".queue.depth"`).
fn machine_suffix<'a>(key: &'a str, prefix: &str) -> Option<&'a str> {
    let rest = key.strip_prefix(prefix)?;
    let suffix = rest.trim_start_matches(|c: char| c.is_ascii_digit());
    if suffix.len() == rest.len() {
        return None; // no machine index: a different stage's key
    }
    Some(suffix)
}

/// Extracts one stage's raw (unsmoothed) signals from a live view.
/// Missing keys read as zero — a deployment without the corresponding
/// instrumentation simply never trips that watermark.
pub fn extract(view: &LiveView, dc: u16, stage: ScaleStage) -> StageSignal {
    let health_prefix = format!("dc{dc}.{}", stage.metric_stage());
    let backlog: f64 = view
        .gauges
        .iter()
        .filter(|(key, _)| {
            matches!(
                machine_suffix(key, &health_prefix),
                Some(".queue.depth") | Some(".occupancy")
            )
        })
        .map(|(_, v)| (*v).max(0) as f64)
        .sum();
    let latency_key = format!("dc{dc}.{}.latency_us", stage.metric_stage());
    let p99_us = view
        .quantiles
        .iter()
        .find(|(key, _)| key == &latency_key)
        .map(|(_, summary)| summary.percentile(0.99) as f64)
        .unwrap_or(0.0);
    let batch_p50 = if stage == ScaleStage::Maintainer {
        let batch_key = format!("dc{dc}.flstore.batch.size");
        view.quantiles
            .iter()
            .find(|(key, _)| key == &batch_key)
            .map(|(_, summary)| summary.percentile(0.5) as f64)
            .unwrap_or(0.0)
    } else {
        0.0
    };
    StageSignal {
        backlog,
        p99_us,
        batch_p50,
    }
}

/// EWMA filter over per-`(dc, stage)` signals: `s ← α·raw + (1−α)·s`.
/// The first observation seeds the state directly.
#[derive(Debug)]
pub struct SignalSmoother {
    alpha: f64,
    state: HashMap<(u16, ScaleStage), StageSignal>,
}

impl SignalSmoother {
    /// A smoother with weight `alpha` on the newest observation (clamped
    /// to `(0, 1]`; `1.0` disables smoothing).
    pub fn new(alpha: f64) -> Self {
        SignalSmoother {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            state: HashMap::new(),
        }
    }

    /// Extracts `stage`'s raw signals from `view`, folds them into the
    /// smoothed state, and returns the smoothed value.
    pub fn observe(&mut self, view: &LiveView, dc: u16, stage: ScaleStage) -> StageSignal {
        let raw = extract(view, dc, stage);
        let smoothed = match self.state.get(&(dc, stage)) {
            None => raw,
            Some(prev) => {
                let a = self.alpha;
                StageSignal {
                    backlog: a * raw.backlog + (1.0 - a) * prev.backlog,
                    p99_us: a * raw.p99_us + (1.0 - a) * prev.p99_us,
                    batch_p50: a * raw.batch_p50 + (1.0 - a) * prev.batch_p50,
                }
            }
        };
        self.state.insert((dc, stage), smoothed);
        smoothed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_simnet::{Histogram, WindowSummary};
    use std::time::Duration;

    fn summary_of(values: &[u64]) -> WindowSummary {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        WindowSummary::from_histogram(&h)
    }

    fn view() -> LiveView {
        LiveView {
            elapsed: Duration::from_secs(1),
            interval: Duration::from_millis(100),
            ticks: 10,
            rates: vec![("dc0.batcher0.in".into(), 100.0)],
            gauges: vec![
                ("dc0.batcher0.queue.depth".into(), 40),
                ("dc0.batcher0.occupancy".into(), 10),
                ("dc0.batcher1.queue.depth".into(), 50),
                ("dc0.queue0.queue.depth".into(), 7),
                ("dc0.flstore.hl".into(), 1000),
                ("dc1.batcher0.queue.depth".into(), 999),
            ],
            quantiles: vec![
                (
                    "dc0.batcher.latency_us".into(),
                    summary_of(&[100, 200, 300]),
                ),
                ("dc0.flstore.batch.size".into(), summary_of(&[8, 8, 8, 8])),
            ],
            events: Vec::new(),
        }
    }

    #[test]
    fn extract_sums_health_gauges_for_the_right_dc_and_stage() {
        let sig = extract(&view(), 0, ScaleStage::Batcher);
        assert_eq!(sig.backlog, 100.0);
        assert!(sig.p99_us >= 200.0, "p99 from the stage histogram");
        assert_eq!(sig.batch_p50, 0.0, "batch size is maintainer-only");
        let queue = extract(&view(), 0, ScaleStage::Queue);
        assert_eq!(queue.backlog, 7.0);
    }

    #[test]
    fn extract_reads_maintainer_batch_size() {
        let sig = extract(&view(), 0, ScaleStage::Maintainer);
        assert!(sig.batch_p50 >= 8.0);
        assert_eq!(sig.backlog, 0.0, "hl gauge is not a health gauge");
    }

    #[test]
    fn missing_keys_read_as_zero() {
        let sig = extract(&view(), 3, ScaleStage::Filter);
        assert_eq!(sig, StageSignal::default());
    }

    #[test]
    fn smoother_converges_toward_the_raw_signal() {
        let mut s = SignalSmoother::new(0.5);
        let v = view();
        let first = s.observe(&v, 0, ScaleStage::Batcher);
        assert_eq!(first.backlog, 100.0, "first observation seeds directly");
        // A quiet view: the smoothed value decays, not snaps, to zero.
        let quiet = LiveView {
            gauges: Vec::new(),
            quantiles: Vec::new(),
            ..v
        };
        let second = s.observe(&quiet, 0, ScaleStage::Batcher);
        assert_eq!(second.backlog, 50.0);
        let third = s.observe(&quiet, 0, ScaleStage::Batcher);
        assert_eq!(third.backlog, 25.0);
    }
}
