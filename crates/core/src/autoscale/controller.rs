//! The background control loop tying sensors, policy, and actuation
//! together, plus its launch/stop lifecycle.
//!
//! [`Autoscaler::launch`] takes ownership of a running
//! [`ChariotsCluster`], spawns a telemetry [`Collector`] over its
//! registries, and starts one controller thread that — every `interval` —
//! scrapes a [`LiveView`], smooths per-stage signals, runs each stage's
//! [`StageGovernor`], and actuates the verdicts. Every action is journaled
//! as a typed [`EventKind::ScaleOut`] / [`EventKind::ScaleIn`] event
//! carrying the triggering signal, counted under
//! `chariots.autoscale.{scaleout,scalein,blocked}.count`, and reflected in
//! the per-stage `chariots.autoscale.dc{N}.{stage}.machines` gauges — all
//! of which flow through the same collector, so dashboards and timelines
//! see the control plane next to the data plane.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chariots_simnet::{
    Collector, CollectorConfig, CollectorHandle, Counter, EventKind, Gauge, LiveView,
    MetricsRegistry, Shutdown, Timeline,
};
use chariots_types::DatacenterId;

use super::actuator::Actuator;
use super::policy::{ScaleDecision, StageGovernor, StagePolicy, Verdict};
use super::signals::{ScaleStage, SignalSmoother};
use crate::cluster::ChariotsCluster;

/// The registry (and metric-name prefix) the autoscaler publishes under.
pub const AUTOSCALE_REGISTRY: &str = "chariots.autoscale";

/// Full controller configuration.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Evaluation period.
    pub interval: Duration,
    /// Collector ticks per live window (signal averaging horizon).
    pub window_ticks: usize,
    /// EWMA weight on the newest observation.
    pub alpha: f64,
    /// Batcher-stage policy.
    pub batcher: StagePolicy,
    /// Queue-stage policy.
    pub queue: StagePolicy,
    /// Filter-stage policy (scale-out only).
    pub filter: StagePolicy,
    /// Maintainer-fleet policy (scale-out only, epoch-based).
    pub maintainer: StagePolicy,
    /// Actuation knobs (drain deadline, reassignment margins).
    pub actuator: Actuator,
    /// Telemetry collector configuration (scrape interval, windows).
    pub collector: CollectorConfig,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            interval: Duration::from_millis(100),
            window_ticks: 5,
            alpha: 0.5,
            batcher: StagePolicy {
                min: 1,
                max: 8,
                high_backlog: 500.0,
                high_p99_us: 0.0,
                high_batch: 0.0,
                low_frac: 0.2,
                sustain: 3,
                cooldown: Duration::from_secs(2),
                scale_in: true,
            },
            queue: StagePolicy {
                min: 1,
                max: 8,
                high_backlog: 500.0,
                high_p99_us: 0.0,
                high_batch: 0.0,
                low_frac: 0.2,
                sustain: 3,
                cooldown: Duration::from_secs(2),
                scale_in: true,
            },
            filter: StagePolicy {
                min: 1,
                max: 4,
                high_backlog: 2_000.0,
                high_p99_us: 0.0,
                high_batch: 0.0,
                low_frac: 0.0,
                sustain: 5,
                cooldown: Duration::from_secs(5),
                scale_in: false,
            },
            maintainer: StagePolicy {
                min: 1,
                max: 4,
                high_backlog: 0.0,
                high_p99_us: 0.0,
                high_batch: 0.0, // disabled by default: opt in per deployment
                low_frac: 0.0,
                sustain: 5,
                cooldown: Duration::from_secs(5),
                scale_in: false,
            },
            actuator: Actuator::default(),
            collector: CollectorConfig::default(),
        }
    }
}

impl AutoscaleConfig {
    fn policy_for(&self, stage: ScaleStage) -> &StagePolicy {
        match stage {
            ScaleStage::Batcher => &self.batcher,
            ScaleStage::Queue => &self.queue,
            ScaleStage::Filter => &self.filter,
            ScaleStage::Maintainer => &self.maintainer,
        }
    }
}

/// One actuated reconfiguration, as recorded in the run summary.
#[derive(Debug, Clone)]
pub struct ScaleAction {
    /// Time since the autoscaler launched.
    pub at: Duration,
    /// Datacenter acted on.
    pub dc: u16,
    /// Stage acted on.
    pub stage: ScaleStage,
    /// Direction.
    pub decision: ScaleDecision,
    /// The normalized signal that triggered the action.
    pub signal: f64,
    /// Machines in the stage after the action.
    pub machines: usize,
}

/// What the control loop did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct AutoscaleSummary {
    /// Evaluation rounds completed.
    pub evals: u64,
    /// Every actuated action, in order.
    pub actions: Vec<ScaleAction>,
    /// Would-be actions denied by bounds or cooldown.
    pub blocked: u64,
}

impl AutoscaleSummary {
    /// Actuated scale-outs.
    pub fn scale_outs(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| a.decision == ScaleDecision::Out)
            .count()
    }

    /// Actuated scale-ins.
    pub fn scale_ins(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| a.decision == ScaleDecision::In)
            .count()
    }
}

/// Everything handed back when the autoscaler stops: the cluster (still
/// running), the full telemetry timeline, and the action summary.
pub struct AutoscaleOutcome {
    /// The cluster, ownership returned to the caller.
    pub cluster: ChariotsCluster,
    /// The collector's complete windowed timeline (includes the
    /// autoscaler's own events and gauges).
    pub timeline: Timeline,
    /// The control loop's action record.
    pub summary: AutoscaleSummary,
}

/// The autoscaling control plane. See [`Autoscaler::launch`].
pub struct Autoscaler;

struct ControlContext {
    cluster: Arc<parking_lot::Mutex<ChariotsCluster>>,
    collector: Arc<CollectorHandle>,
    registry: MetricsRegistry,
    cfg: AutoscaleConfig,
    shutdown: Shutdown,
}

impl Autoscaler {
    /// Takes ownership of a running cluster and closes the loop over it.
    ///
    /// Client handles opened *before* launch stay valid — they hold their
    /// own references into the pipeline — so the usual shape is: launch
    /// the cluster, open clients, then hand the cluster to the autoscaler
    /// and drive load. [`AutoscalerHandle::stop`] returns the cluster.
    pub fn launch(cluster: ChariotsCluster, cfg: AutoscaleConfig) -> AutoscalerHandle {
        let collector = Collector::spawn(cluster.registries(), cfg.collector.clone());
        let registry = MetricsRegistry::new(AUTOSCALE_REGISTRY);
        // Pre-create the counters and gauges so they exist (at zero) from
        // the first scrape, then attach the registry to the collector:
        // the control plane's own telemetry rides the same timeline.
        registry.counter(&format!("{AUTOSCALE_REGISTRY}.scaleout.count"));
        registry.counter(&format!("{AUTOSCALE_REGISTRY}.scalein.count"));
        registry.counter(&format!("{AUTOSCALE_REGISTRY}.blocked.count"));
        for dcn in 0..cluster.len() as u16 {
            let dc = cluster.dc(DatacenterId(dcn));
            for stage in ScaleStage::ALL {
                let count = stage_count(dc, stage);
                machines_gauge(&registry, dcn, stage).set(count as i64);
            }
        }
        collector.attach(&registry);

        let shutdown = Shutdown::new();
        let ctx = ControlContext {
            cluster: Arc::new(parking_lot::Mutex::new(cluster)),
            collector: Arc::new(collector),
            registry: registry.clone(),
            cfg,
            shutdown: shutdown.clone(),
        };
        let cluster = Arc::clone(&ctx.cluster);
        let collector = Arc::clone(&ctx.collector);
        let thread = std::thread::Builder::new()
            .name("autoscaler".into())
            .spawn(move || control_loop(ctx))
            .expect("spawn autoscaler thread");
        AutoscalerHandle {
            cluster,
            collector,
            registry,
            shutdown,
            thread: Some(thread),
        }
    }
}

/// Handle to a running autoscaler.
pub struct AutoscalerHandle {
    cluster: Arc<parking_lot::Mutex<ChariotsCluster>>,
    collector: Arc<CollectorHandle>,
    registry: MetricsRegistry,
    shutdown: Shutdown,
    thread: Option<JoinHandle<AutoscaleSummary>>,
}

impl AutoscalerHandle {
    /// A non-destructive live view over the whole deployment *plus* the
    /// autoscaler's own counters, gauges, and scale events.
    pub fn live(&self, window_ticks: usize, recent_events: usize) -> LiveView {
        self.collector.live(window_ticks, recent_events)
    }

    /// The autoscaler's own registry (`chariots.autoscale.*`).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Runs `f` against the cluster under the control-plane lock. Keep it
    /// short: the control loop shares this lock and cannot evaluate while
    /// `f` runs.
    pub fn with_cluster<R>(&self, f: impl FnOnce(&ChariotsCluster) -> R) -> R {
        f(&self.cluster.lock())
    }

    /// Stops the control loop and the collector, returning the cluster,
    /// the full timeline, and the action summary.
    pub fn stop(mut self) -> AutoscaleOutcome {
        self.shutdown.signal();
        let summary = self
            .thread
            .take()
            .expect("stop called once")
            .join()
            .expect("autoscaler thread panicked");
        let AutoscalerHandle {
            cluster, collector, ..
        } = self;
        let collector = Arc::try_unwrap(collector)
            .ok()
            .expect("control thread joined: last collector ref");
        let timeline = collector.stop();
        let cluster = Arc::try_unwrap(cluster)
            .ok()
            .expect("control thread joined: last cluster ref")
            .into_inner();
        AutoscaleOutcome {
            cluster,
            timeline,
            summary,
        }
    }
}

fn machines_gauge(registry: &MetricsRegistry, dc: u16, stage: ScaleStage) -> Gauge {
    registry.gauge(&format!("{AUTOSCALE_REGISTRY}.dc{dc}.{stage}.machines"))
}

fn stage_count(dc: &crate::datacenter::ChariotsDc, stage: ScaleStage) -> usize {
    match stage {
        ScaleStage::Batcher => dc.batcher_count(),
        ScaleStage::Queue => dc.queue_count(),
        ScaleStage::Filter => dc.filter_count(),
        ScaleStage::Maintainer => dc.maintainer_count(),
    }
}

fn control_loop(ctx: ControlContext) -> AutoscaleSummary {
    let start = Instant::now();
    let mut summary = AutoscaleSummary::default();
    let mut smoother = SignalSmoother::new(ctx.cfg.alpha);
    let mut governors: HashMap<(u16, ScaleStage), StageGovernor> = HashMap::new();
    let scaleout = ctx
        .registry
        .counter(&format!("{AUTOSCALE_REGISTRY}.scaleout.count"));
    let scalein = ctx
        .registry
        .counter(&format!("{AUTOSCALE_REGISTRY}.scalein.count"));
    let blocked = ctx
        .registry
        .counter(&format!("{AUTOSCALE_REGISTRY}.blocked.count"));

    while !ctx.shutdown.is_signaled() {
        std::thread::sleep(ctx.cfg.interval);
        if ctx.shutdown.is_signaled() {
            break;
        }
        let view = ctx.collector.live(ctx.cfg.window_ticks, 0);
        let now = Instant::now();
        let mut cluster = ctx.cluster.lock();
        let num_dcs = cluster.len() as u16;
        for dcn in 0..num_dcs {
            for stage in ScaleStage::ALL {
                let machines = stage_count(cluster.dc(DatacenterId(dcn)), stage);
                let sig = smoother.observe(&view, dcn, stage);
                let governor = governors
                    .entry((dcn, stage))
                    .or_insert_with(|| StageGovernor::new(ctx.cfg.policy_for(stage).clone()));
                match governor.decide(now, &sig, machines) {
                    Verdict::Hold => {}
                    Verdict::Blocked { .. } => blocked.add(1),
                    Verdict::Act { decision, signal } => {
                        let dc = cluster.dc_mut(DatacenterId(dcn));
                        match ctx.cfg.actuator.apply(dc, stage, decision) {
                            Err(_) => blocked.add(1),
                            Ok(count) => {
                                record_action(
                                    &ctx.registry,
                                    &mut summary,
                                    start,
                                    dcn,
                                    stage,
                                    decision,
                                    signal,
                                    count,
                                );
                                match decision {
                                    ScaleDecision::Out => scaleout.add(1),
                                    ScaleDecision::In => scalein.add(1),
                                }
                                machines_gauge(&ctx.registry, dcn, stage).set(count as i64);
                            }
                        }
                    }
                }
            }
        }
        drop(cluster);
        summary.evals += 1;
    }
    summary.blocked = blocked.get();
    summary
}

#[allow(clippy::too_many_arguments)]
fn record_action(
    registry: &MetricsRegistry,
    summary: &mut AutoscaleSummary,
    start: Instant,
    dcn: u16,
    stage: ScaleStage,
    decision: ScaleDecision,
    signal: f64,
    machines: usize,
) {
    let signal_milli = (signal * 1000.0).round().max(0.0) as u64;
    let kind = match decision {
        ScaleDecision::Out => EventKind::ScaleOut {
            stage: stage.name().to_string(),
            machines: machines as u64,
            signal_milli,
        },
        ScaleDecision::In => EventKind::ScaleIn {
            stage: stage.name().to_string(),
            machines: machines as u64,
            signal_milli,
        },
    };
    registry
        .journal()
        .publish(&format!("autoscale.dc{dcn}"), None, kind);
    summary.actions.push(ScaleAction {
        at: start.elapsed(),
        dc: dcn,
        stage,
        decision,
        signal,
        machines,
    });
}
