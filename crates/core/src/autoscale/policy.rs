//! The target-tracking scale policy: watermarks, hysteresis, sustain
//! counts, cooldowns, and min/max bounds.
//!
//! Each stage's smoothed signals collapse into one normalized scalar —
//! the worst ratio of observed load to its watermark, so `1.0` means
//! "exactly at the scale-out line". Scale out when the scalar holds above
//! `1.0` for `sustain` consecutive evaluations; scale in when it holds
//! below `low_frac` (the hysteresis band between the two thresholds
//! absorbs oscillation). Cooldowns and bounds turn would-be actions into
//! [`Verdict::Blocked`] so the controller can count them honestly.

use std::time::{Duration, Instant};

use super::signals::StageSignal;

/// Per-stage policy knobs.
#[derive(Debug, Clone)]
pub struct StagePolicy {
    /// Never drop below this many machines.
    pub min: usize,
    /// Never exceed this many machines.
    pub max: usize,
    /// Backlog-per-machine watermark (`0` disables the backlog term).
    pub high_backlog: f64,
    /// Stage p99 watermark in microseconds (`0` disables the p99 term).
    pub high_p99_us: f64,
    /// Maintainer median-batch-size watermark (`0` disables the term).
    pub high_batch: f64,
    /// Scale in when the normalized signal stays below this fraction of
    /// the scale-out line. The gap between `low_frac` and `1.0` is the
    /// hysteresis band.
    pub low_frac: f64,
    /// Consecutive evaluations a signal must hold before acting.
    pub sustain: u32,
    /// Minimum time between actions on this stage.
    pub cooldown: Duration,
    /// Whether this stage supports drain-and-retire. Filters and
    /// maintainers only grow (their routing is an append-only history of
    /// future reassignments), so they run with this off.
    pub scale_in: bool,
}

impl StagePolicy {
    /// A policy that never acts (watermarks disabled, bounds pinned at
    /// `machines`). Useful to freeze a stage in benches.
    pub fn frozen(machines: usize) -> Self {
        StagePolicy {
            min: machines,
            max: machines,
            high_backlog: 0.0,
            high_p99_us: 0.0,
            high_batch: 0.0,
            low_frac: 0.0,
            sustain: u32::MAX,
            cooldown: Duration::from_secs(3600),
            scale_in: false,
        }
    }
}

/// Which direction an action moves the stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Add a machine.
    Out,
    /// Drain and retire a machine.
    In,
}

/// One evaluation's outcome for a stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Signal inside the band (or not yet sustained): do nothing.
    Hold,
    /// Act now. `signal` is the normalized scalar that triggered it.
    Act {
        /// The direction to move.
        decision: ScaleDecision,
        /// The triggering normalized signal.
        signal: f64,
    },
    /// The policy wanted to act but bounds or cooldown forbade it.
    Blocked {
        /// The direction that was blocked.
        decision: ScaleDecision,
        /// The normalized signal at the time.
        signal: f64,
    },
}

/// Per-stage decision state: streak counters plus the last action time.
#[derive(Debug)]
pub struct StageGovernor {
    policy: StagePolicy,
    high_streak: u32,
    low_streak: u32,
    last_action: Option<Instant>,
}

impl StageGovernor {
    /// A governor enforcing `policy`, starting with clear streaks and no
    /// cooldown in effect.
    pub fn new(policy: StagePolicy) -> Self {
        StageGovernor {
            policy,
            high_streak: 0,
            low_streak: 0,
            last_action: None,
        }
    }

    /// The policy being enforced.
    pub fn policy(&self) -> &StagePolicy {
        &self.policy
    }

    /// Collapses a stage's smoothed signals into the normalized scalar:
    /// the worst enabled ratio of observed value to watermark.
    pub fn signal(&self, sig: &StageSignal, machines: usize) -> f64 {
        let mut worst: f64 = 0.0;
        if self.policy.high_backlog > 0.0 {
            let per_machine = sig.backlog / machines.max(1) as f64;
            worst = worst.max(per_machine / self.policy.high_backlog);
        }
        if self.policy.high_p99_us > 0.0 {
            worst = worst.max(sig.p99_us / self.policy.high_p99_us);
        }
        if self.policy.high_batch > 0.0 {
            worst = worst.max(sig.batch_p50 / self.policy.high_batch);
        }
        worst
    }

    fn cooled_down(&self, now: Instant) -> bool {
        self.last_action
            .is_none_or(|t| now.duration_since(t) >= self.policy.cooldown)
    }

    /// One evaluation: folds the signal into the streak counters and
    /// returns what to do. An `Act` verdict starts the cooldown; a
    /// `Blocked` verdict resets the streak so the same pressure must
    /// re-sustain before the next attempt.
    pub fn decide(&mut self, now: Instant, sig: &StageSignal, machines: usize) -> Verdict {
        let signal = self.signal(sig, machines);
        if signal > 1.0 {
            self.low_streak = 0;
            self.high_streak = self.high_streak.saturating_add(1);
            if self.high_streak >= self.policy.sustain {
                self.high_streak = 0;
                if machines >= self.policy.max || !self.cooled_down(now) {
                    return Verdict::Blocked {
                        decision: ScaleDecision::Out,
                        signal,
                    };
                }
                self.last_action = Some(now);
                return Verdict::Act {
                    decision: ScaleDecision::Out,
                    signal,
                };
            }
        } else if signal < self.policy.low_frac {
            self.high_streak = 0;
            if !self.policy.scale_in {
                return Verdict::Hold;
            }
            self.low_streak = self.low_streak.saturating_add(1);
            if self.low_streak >= self.policy.sustain {
                self.low_streak = 0;
                if machines <= self.policy.min || !self.cooled_down(now) {
                    return Verdict::Blocked {
                        decision: ScaleDecision::In,
                        signal,
                    };
                }
                self.last_action = Some(now);
                return Verdict::Act {
                    decision: ScaleDecision::In,
                    signal,
                };
            }
        } else {
            // Inside the hysteresis band: both streaks die.
            self.high_streak = 0;
            self.low_streak = 0;
        }
        Verdict::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> StagePolicy {
        StagePolicy {
            min: 1,
            max: 4,
            high_backlog: 100.0,
            high_p99_us: 0.0,
            high_batch: 0.0,
            low_frac: 0.3,
            sustain: 3,
            cooldown: Duration::from_secs(10),
            scale_in: true,
        }
    }

    fn loaded(backlog: f64) -> StageSignal {
        StageSignal {
            backlog,
            p99_us: 0.0,
            batch_p50: 0.0,
        }
    }

    #[test]
    fn scale_out_requires_sustained_pressure() {
        let mut g = StageGovernor::new(policy());
        let t0 = Instant::now();
        let hot = loaded(300.0); // 150/machine at 2 machines → signal 1.5
        assert_eq!(g.decide(t0, &hot, 2), Verdict::Hold);
        assert_eq!(g.decide(t0, &hot, 2), Verdict::Hold);
        assert_eq!(
            g.decide(t0, &hot, 2),
            Verdict::Act {
                decision: ScaleDecision::Out,
                signal: 1.5
            }
        );
    }

    #[test]
    fn a_dip_inside_the_band_resets_the_streak() {
        let mut g = StageGovernor::new(policy());
        let t0 = Instant::now();
        let hot = loaded(300.0);
        g.decide(t0, &hot, 2);
        g.decide(t0, &hot, 2);
        // Signal falls into the band: streak dies, no action on re-press.
        g.decide(t0, &loaded(120.0), 2);
        assert_eq!(g.decide(t0, &hot, 2), Verdict::Hold);
    }

    #[test]
    fn cooldown_blocks_back_to_back_actions() {
        let mut g = StageGovernor::new(policy());
        let t0 = Instant::now();
        let hot = loaded(300.0);
        for _ in 0..3 {
            g.decide(t0, &hot, 2);
        }
        // Still within cooldown: the next sustained press is blocked.
        let t1 = t0 + Duration::from_secs(1);
        for _ in 0..2 {
            assert_eq!(g.decide(t1, &hot, 3), Verdict::Hold);
        }
        assert!(matches!(
            g.decide(t1, &hot, 3),
            Verdict::Blocked {
                decision: ScaleDecision::Out,
                ..
            }
        ));
        // After the cooldown, it acts again.
        let t2 = t0 + Duration::from_secs(11);
        for _ in 0..2 {
            g.decide(t2, &hot, 3);
        }
        assert!(matches!(
            g.decide(t2, &hot, 3),
            Verdict::Act {
                decision: ScaleDecision::Out,
                ..
            }
        ));
    }

    #[test]
    fn max_bound_blocks_scale_out() {
        let mut g = StageGovernor::new(policy());
        let t0 = Instant::now();
        let hot = loaded(1000.0);
        for _ in 0..2 {
            g.decide(t0, &hot, 4);
        }
        assert!(matches!(
            g.decide(t0, &hot, 4),
            Verdict::Blocked {
                decision: ScaleDecision::Out,
                ..
            }
        ));
    }

    #[test]
    fn quiet_signal_scales_in_after_sustain_and_respects_min() {
        let mut g = StageGovernor::new(policy());
        let t0 = Instant::now();
        let quiet = loaded(10.0); // 5/machine → signal 0.05 < 0.3
        for _ in 0..2 {
            assert_eq!(g.decide(t0, &quiet, 2), Verdict::Hold);
        }
        assert!(matches!(
            g.decide(t0, &quiet, 2),
            Verdict::Act {
                decision: ScaleDecision::In,
                ..
            }
        ));
        // At the floor (and freshly cooled-down-reset), In is blocked.
        let t1 = t0 + Duration::from_secs(20);
        for _ in 0..2 {
            g.decide(t1, &quiet, 1);
        }
        assert!(matches!(
            g.decide(t1, &quiet, 1),
            Verdict::Blocked {
                decision: ScaleDecision::In,
                ..
            }
        ));
    }

    #[test]
    fn scale_in_disabled_stays_quietly_held() {
        let mut g = StageGovernor::new(StagePolicy {
            scale_in: false,
            ..policy()
        });
        let t0 = Instant::now();
        for _ in 0..10 {
            assert_eq!(g.decide(t0, &loaded(0.0), 2), Verdict::Hold);
        }
    }

    #[test]
    fn normalized_signal_takes_the_worst_ratio() {
        let g = StageGovernor::new(StagePolicy {
            high_backlog: 100.0,
            high_p99_us: 1000.0,
            ..policy()
        });
        let sig = StageSignal {
            backlog: 50.0,  // 0.25 at 2 machines
            p99_us: 2000.0, // 2.0 — the worst term
            batch_p50: 0.0,
        };
        assert_eq!(g.signal(&sig, 2), 2.0);
    }
}
