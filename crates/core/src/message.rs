//! Messages flowing through the Chariots pipeline (§6.2) and between
//! datacenters.

use std::sync::Arc;

use bytes::Bytes;
use chariots_simnet::ReplyTo;
use chariots_types::{
    DatacenterId, LId, Record, TOId, TagSet, TraceId, VersionVector, Wire, WireReader,
};

/// A locally originated append, not yet assigned a `TOId`.
///
/// The total order of a datacenter's records is decided where the log order
/// is decided — at the queues stage, under the token. Until then a local
/// append carries only what the client supplied: tags, body, and the
/// client's causal context.
#[derive(Debug)]
pub struct LocalAppend {
    /// System-visible tags.
    pub tags: TagSet,
    /// Opaque body.
    pub body: Bytes,
    /// The client's causal context: every record it has observed. The
    /// assigned record is ordered after all of them.
    pub deps: VersionVector,
    /// Where to deliver the assigned `(TOId, LId)` ("the assigned TOId and
    /// LId will be sent back to the Application client", §3). `None` for
    /// open-loop load generation. A [`ReplyTo`] so the slot survives a TCP
    /// hop: serialized, it becomes a dial-back token the queue answers
    /// across the wire.
    pub reply: Option<ReplyTo<(TOId, LId)>>,
    /// Observability: set on a sampled subset of appends so the pipeline
    /// stages stamp per-stage enter/exit times for this record.
    pub trace: Option<TraceId>,
}

/// One record entering the pipeline: either a fresh local append or a fully
/// formed external record received from another datacenter.
#[derive(Debug)]
pub enum Incoming {
    /// A local append awaiting `TOId` and `LId` assignment.
    Local(LocalAppend),
    /// A replica copy of a record created elsewhere.
    External(Record),
}

impl Wire for LocalAppend {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.tags.encode(buf);
        self.body.encode(buf);
        self.deps.encode(buf);
        self.reply.encode(buf);
        self.trace.encode(buf);
    }

    fn decode(r: &mut WireReader) -> Option<Self> {
        Some(LocalAppend {
            tags: TagSet::decode(r)?,
            body: Bytes::decode(r)?,
            deps: VersionVector::decode(r)?,
            reply: Option::<ReplyTo<(TOId, LId)>>::decode(r)?,
            trace: Option::<TraceId>::decode(r)?,
        })
    }
}

impl Wire for Incoming {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Incoming::Local(l) => {
                buf.push(0);
                l.encode(buf);
            }
            Incoming::External(record) => {
                buf.push(1);
                record.encode(buf);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Option<Self> {
        match r.u8()? {
            0 => Some(Incoming::Local(LocalAppend::decode(r)?)),
            1 => Some(Incoming::External(Record::decode(r)?)),
            _ => None,
        }
    }
}

impl Incoming {
    /// Approximate wire/memory size, for bandwidth-modelled links and
    /// batching decisions.
    pub fn wire_size(&self) -> usize {
        match self {
            Incoming::Local(l) => 16 + l.body.len() + l.deps.len() * 8,
            Incoming::External(r) => r.wire_size(),
        }
    }

    /// The record's trace id, if this record is sampled for tracing.
    #[inline]
    pub fn trace(&self) -> Option<TraceId> {
        match self {
            Incoming::Local(l) => l.trace,
            Incoming::External(r) => r.trace,
        }
    }
}

/// A propagation message between datacenters: "the local log and ATable are
/// continuously being propagated to other DCs" (§6.1). In the distributed
/// design each **sender** machine ships the local records it is responsible
/// for (§6.2), together with the sending datacenter's applied cut — the
/// ATable row other datacenters need for propagation filtering and garbage
/// collection.
#[derive(Debug, Clone)]
pub struct PropagationMsg {
    /// The sending datacenter.
    pub from: DatacenterId,
    /// Local records of `from`, in `TOId` order (within this sender's
    /// subset of the log). Shared, not owned: a sender builds each chunk
    /// once and fans the same allocation out to every peer that needs the
    /// range, so cloning the message (links duplicate, receivers share a
    /// channel) never deep-copies the payload.
    pub records: Arc<[Record]>,
    /// `from`'s applied cut (row `from` of its ATable).
    pub applied: VersionVector,
}

impl PropagationMsg {
    /// Approximate wire size for bandwidth-modelled WAN links.
    pub fn wire_size(&self) -> usize {
        8 + self.applied.len() * 8 + self.records.iter().map(Record::wire_size).sum::<usize>()
    }
}

/// A batch of incoming records forwarded from one pipeline stage to the
/// next.
#[derive(Debug)]
pub struct Batch {
    /// The records.
    pub records: Vec<Incoming>,
}

/// The reply side of a client append.
pub type AppendReply = (TOId, LId);

/// Placeholder re-export so stage modules share one vocabulary.
pub type AssignedId = (TOId, LId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Incoming::Local(LocalAppend {
            tags: TagSet::new(),
            body: Bytes::from_static(b"x"),
            deps: VersionVector::new(2),
            reply: None,
            trace: None,
        });
        let big = Incoming::Local(LocalAppend {
            tags: TagSet::new(),
            body: Bytes::from(vec![0u8; 512]),
            deps: VersionVector::new(2),
            reply: None,
            trace: None,
        });
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn propagation_msg_size_counts_records() {
        use chariots_types::RecordId;
        let record = Record::new(
            RecordId::new(DatacenterId(0), TOId(1)),
            VersionVector::new(2),
            TagSet::new(),
            Bytes::from(vec![0u8; 100]),
        );
        let empty = PropagationMsg {
            from: DatacenterId(0),
            records: Arc::from(vec![]),
            applied: VersionVector::new(2),
        };
        let one = PropagationMsg {
            from: DatacenterId(0),
            records: Arc::from(vec![record]),
            applied: VersionVector::new(2),
        };
        assert!(one.wire_size() >= empty.wire_size() + 100);
    }
}
