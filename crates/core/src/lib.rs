//! # chariots-core
//!
//! **Chariots** — a geo-replicated, causally ordered shared log built as an
//! elastic multi-stage pipeline over FLStore (Section 6 of *Chariots*,
//! EDBT 2015).
//!
//! Each datacenter runs the six-stage pipeline of Fig. 6: application
//! clients and [`stages::receiver`]s feed [`stages::batcher`]s →
//! [`stages::filter`]s (exactly-once) → [`stages::queue`]s (causal `LId`
//! assignment under the circulating [`token::Token`]) → FLStore log
//! maintainers; [`stages::sender`]s propagate local records to every peer,
//! with the [`atable::ATable`] driving propagation filtering and garbage
//! collection.
//!
//! [`abstract_log`] implements the paper's §6.1 single-threaded abstract
//! solution verbatim; the distributed pipeline is tested for behavioural
//! equivalence against it.
//!
//! ```no_run
//! use chariots_core::{ChariotsCluster, StageStations};
//! use chariots_simnet::LinkConfig;
//! use chariots_types::{ChariotsConfig, DatacenterId, TagSet};
//!
//! let cluster = ChariotsCluster::launch(
//!     ChariotsConfig::new().datacenters(2),
//!     StageStations::default(),
//!     LinkConfig::wan(),
//! ).unwrap();
//! let mut client = cluster.client(DatacenterId(0));
//! let (toid, lid) = client.append(TagSet::new(), "hello, both coasts").unwrap();
//! println!("appended as TOId {toid}, LId {lid}");
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod abstract_log;
pub mod atable;
pub mod autoscale;
pub mod client;
pub mod cluster;
pub mod datacenter;
pub mod message;
pub mod routing_plan;
pub mod stages;
pub mod token;

pub use abstract_log::{AbstractCluster, AbstractDc, Snapshot};
pub use atable::ATable;
pub use autoscale::{
    Actuator, AutoscaleConfig, AutoscaleOutcome, AutoscaleSummary, Autoscaler, AutoscalerHandle,
    ScaleDecision, ScaleStage, StagePolicy,
};
pub use client::ChariotsClient;
pub use cluster::ChariotsCluster;
pub use datacenter::{ChariotsDc, StageStations};
pub use message::{Incoming, LocalAppend, PropagationMsg};
pub use routing_plan::{RoutingEpoch, RoutingPlan};
pub use token::Token;

#[cfg(test)]
mod cluster_tests {
    use super::*;
    use chariots_simnet::LinkConfig;
    use chariots_types::{ChariotsConfig, DatacenterId, LId, StageCounts, TOId, Tag, TagSet};
    use std::time::{Duration, Instant};

    fn fast_cfg(n: usize) -> ChariotsConfig {
        let mut cfg = ChariotsConfig::new().datacenters(n);
        cfg.flstore = chariots_types::FLStoreConfig::new()
            .maintainers(2)
            .batch_size(8)
            .gossip_interval(Duration::from_millis(1));
        cfg.batcher_flush_threshold = 4;
        cfg.batcher_flush_interval = Duration::from_millis(1);
        cfg.propagation_interval = Duration::from_millis(2);
        cfg
    }

    fn fast_wan() -> LinkConfig {
        LinkConfig::with_latency(Duration::from_millis(2))
    }

    #[test]
    fn single_dc_append_and_read() {
        let cluster =
            ChariotsCluster::launch(fast_cfg(1), StageStations::default(), LinkConfig::default())
                .unwrap();
        let mut client = cluster.client(DatacenterId(0));
        let (toid, _lid) = client.append(TagSet::new(), "first").unwrap();
        assert_eq!(toid, TOId(1));
        let (toid2, _) = client.append(TagSet::new(), "second").unwrap();
        assert_eq!(toid2, TOId(2));
        // Readable once the HL passes them.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if client.head_of_log().unwrap() >= LId(2) {
                break;
            }
            assert!(Instant::now() < deadline, "HL never reached 2");
            std::thread::sleep(Duration::from_millis(2));
        }
        let e0 = client.read(LId(0)).unwrap();
        assert_eq!(&e0.record.body[..], b"first");
        let e1 = client.read(LId(1)).unwrap();
        assert_eq!(&e1.record.body[..], b"second");
        cluster.shutdown();
    }

    #[test]
    fn records_replicate_across_datacenters() {
        let cluster =
            ChariotsCluster::launch(fast_cfg(2), StageStations::default(), fast_wan()).unwrap();
        let mut a = cluster.client(DatacenterId(0));
        let mut b = cluster.client(DatacenterId(1));
        a.append(TagSet::new().with(Tag::key("from-a")), "hello B")
            .unwrap();
        b.append(TagSet::new().with(Tag::key("from-b")), "hello A")
            .unwrap();
        assert!(
            cluster.wait_for_replication(2, Duration::from_secs(10)),
            "replication never converged"
        );
        // Each datacenter's log contains both records.
        for dc in [DatacenterId(0), DatacenterId(1)] {
            let mut c = cluster.client(dc);
            let hosts: Vec<_> = (0..2)
                .map(|l| c.read(LId(l)).unwrap().record.host())
                .collect();
            let mut sorted = hosts.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 2, "{dc}: both hosts present, got {hosts:?}");
        }
        cluster.shutdown();
    }

    #[test]
    fn per_host_total_order_holds_at_every_replica() {
        let cluster =
            ChariotsCluster::launch(fast_cfg(2), StageStations::default(), fast_wan()).unwrap();
        let mut a = cluster.client(DatacenterId(0));
        for i in 0..10 {
            a.append(TagSet::new(), format!("a{i}")).unwrap();
        }
        assert!(cluster.wait_for_replication(10, Duration::from_secs(10)));
        let mut b = cluster.client(DatacenterId(1));
        let mut last = TOId::NONE;
        for l in 0..10 {
            let e = b.read(LId(l)).unwrap();
            assert_eq!(e.record.host(), DatacenterId(0));
            assert!(e.record.toid() > last, "TOId order violated");
            last = e.record.toid();
        }
        cluster.shutdown();
    }

    #[test]
    fn causality_read_then_append_orders_across_dcs() {
        let cluster =
            ChariotsCluster::launch(fast_cfg(3), StageStations::default(), fast_wan()).unwrap();
        // A writes x.
        let mut a = cluster.client(DatacenterId(0));
        a.append(TagSet::new().with(Tag::with_value("key", "x")), "x=1")
            .unwrap();
        assert!(cluster.wait_for_replication(1, Duration::from_secs(10)));
        // B reads x, then writes y (causally after x).
        let mut b = cluster.client(DatacenterId(1));
        let x = b.read(LId(0)).unwrap();
        assert_eq!(x.record.host(), DatacenterId(0));
        b.append(TagSet::new().with(Tag::with_value("key", "y")), "y=2")
            .unwrap();
        assert!(cluster.wait_for_replication(2, Duration::from_secs(10)));
        // At every datacenter, x precedes y in the log.
        for dc in 0..3 {
            let mut c = cluster.client(DatacenterId(dc));
            let mut x_pos = None;
            let mut y_pos = None;
            for l in 0..2 {
                let e = c.read(LId(l)).unwrap();
                match e.record.host() {
                    DatacenterId(0) => x_pos = Some(l),
                    DatacenterId(1) => y_pos = Some(l),
                    _ => {}
                }
            }
            assert!(
                x_pos.unwrap() < y_pos.unwrap(),
                "DC {dc}: effect before cause"
            );
        }
        cluster.shutdown();
    }

    #[test]
    fn partition_heals_and_replication_resumes() {
        let cluster =
            ChariotsCluster::launch(fast_cfg(2), StageStations::default(), fast_wan()).unwrap();
        cluster.partition(DatacenterId(0), DatacenterId(1));
        let mut a = cluster.client(DatacenterId(0));
        a.append(TagSet::new(), "during partition").unwrap();
        // The record must NOT reach B while partitioned (availability: A
        // kept accepting writes).
        std::thread::sleep(Duration::from_millis(100));
        let mut b_store = cluster.dc(DatacenterId(1)).flstore().client();
        assert_eq!(b_store.head_of_log().unwrap(), LId(0));
        cluster.heal(DatacenterId(0), DatacenterId(1));
        assert!(
            cluster.wait_for_replication(1, Duration::from_secs(10)),
            "replication did not resume after heal"
        );
        cluster.shutdown();
    }

    #[test]
    fn duplicated_wan_messages_do_not_duplicate_records() {
        let mut wan = fast_wan();
        wan.duplicate_prob = 1.0; // every message delivered twice
        let cluster = ChariotsCluster::launch(fast_cfg(2), StageStations::default(), wan).unwrap();
        let mut a = cluster.client(DatacenterId(0));
        for i in 0..5 {
            a.append(TagSet::new(), format!("r{i}")).unwrap();
        }
        assert!(cluster.wait_for_replication(5, Duration::from_secs(10)));
        // Give duplicates time to arrive and (incorrectly) apply.
        std::thread::sleep(Duration::from_millis(100));
        let mut b = cluster.client(DatacenterId(1));
        let hl = b.head_of_log().unwrap();
        assert_eq!(hl, LId(5), "duplicates must not extend the log");
        let mut toids: Vec<TOId> = (0..5)
            .map(|l| b.read(LId(l)).unwrap().record.toid())
            .collect();
        toids.sort();
        toids.dedup();
        assert_eq!(toids.len(), 5, "exactly-once violated");
        cluster.shutdown();
    }

    #[test]
    fn multi_machine_stages_work() {
        let mut cfg = fast_cfg(2);
        cfg.stages = StageCounts::uniform(2);
        let cluster = ChariotsCluster::launch(cfg, StageStations::default(), fast_wan()).unwrap();
        let mut a = cluster.client(DatacenterId(0));
        let mut b = cluster.client(DatacenterId(1));
        for i in 0..20 {
            a.append(TagSet::new(), format!("a{i}")).unwrap();
            b.append(TagSet::new(), format!("b{i}")).unwrap();
        }
        assert!(cluster.wait_for_replication(40, Duration::from_secs(15)));
        cluster.shutdown();
    }

    #[test]
    fn gc_collects_fully_replicated_prefix() {
        let mut cfg = fast_cfg(2);
        cfg.gc_keep_records = None;
        let cluster = ChariotsCluster::launch(cfg, StageStations::default(), fast_wan()).unwrap();
        let mut a = cluster.client(DatacenterId(0));
        for i in 0..6 {
            a.append(TagSet::new(), format!("r{i}")).unwrap();
        }
        assert!(cluster.wait_for_replication(6, Duration::from_secs(10)));
        // Let B's applied cut gossip back to A.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let bound = cluster.dc(DatacenterId(0)).run_gc().unwrap();
            if bound >= LId(6) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "GC bound never advanced: {bound}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut a2 = cluster.dc(DatacenterId(0)).flstore().client();
        assert!(matches!(
            a2.read(LId(0)),
            Err(chariots_types::ChariotsError::GarbageCollected(_))
        ));
        cluster.shutdown();
    }

    #[test]
    fn elastic_batcher_addition_is_transparent() {
        let mut cluster =
            ChariotsCluster::launch(fast_cfg(1), StageStations::default(), LinkConfig::default())
                .unwrap();
        let mut client = cluster.client(DatacenterId(0));
        client.append(TagSet::new(), "before").unwrap();
        let idx = cluster.dc_mut(DatacenterId(0)).add_batcher();
        assert_eq!(idx, 1);
        // New clients round-robin over both batchers; everything works.
        let mut client2 = cluster.client(DatacenterId(0));
        for i in 0..4 {
            client2.append(TagSet::new(), format!("after{i}")).unwrap();
        }
        cluster.shutdown();
    }
}

#[cfg(test)]
mod abstract_proptests {
    use super::*;
    use chariots_types::{DatacenterId, RecordId, TOId, TagSet, VersionVector};
    use proptest::prelude::*;

    /// One step of a random schedule for the abstract model.
    #[derive(Debug, Clone)]
    enum Op {
        Append(u16),
        Propagate(u16, u16),
    }

    fn arb_ops(n: u16, len: usize) -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                2 => (0..n).prop_map(Op::Append),
                3 => (0..n, 0..n).prop_map(|(a, b)| Op::Propagate(a, b)),
            ],
            1..len,
        )
    }

    proptest! {
        /// Under ANY schedule of appends and (possibly partial, repeated)
        /// propagations, every abstract log satisfies the causal-log
        /// invariants, and after settle() all replicas agree.
        #[test]
        fn abstract_model_invariants_under_random_schedules(
            ops in arb_ops(3, 40),
        ) {
            let n = 3usize;
            let mut cluster = AbstractCluster::new(n);
            for op in &ops {
                match op {
                    Op::Append(dc) => {
                        cluster
                            .dc_mut(DatacenterId(*dc))
                            .append(TagSet::new(), "x");
                    }
                    Op::Propagate(from, to) if from != to => {
                        cluster.propagate(DatacenterId(*from), DatacenterId(*to));
                    }
                    Op::Propagate(..) => {}
                }
                // Invariants hold at EVERY intermediate state.
                for i in 0..n {
                    let dc = cluster.dc(DatacenterId(i as u16));
                    let mut applied = VersionVector::new(n);
                    for (pos, e) in dc.log().iter().enumerate() {
                        let r = &e.record;
                        prop_assert_eq!(e.lid.0 as usize, pos, "dense LIds");
                        prop_assert_eq!(
                            r.toid(),
                            applied.get(r.host()).next(),
                            "per-host total order"
                        );
                        prop_assert!(
                            applied.dominates(&r.deps),
                            "causal deps precede"
                        );
                        applied.set(r.host(), r.toid());
                    }
                }
            }
            // Quiescence: identical record sets everywhere.
            cluster.settle();
            let mut sets: Vec<Vec<RecordId>> = (0..n)
                .map(|i| {
                    let mut ids: Vec<RecordId> = cluster
                        .dc(DatacenterId(i as u16))
                        .log()
                        .iter()
                        .map(|e| e.id())
                        .collect();
                    ids.sort();
                    ids
                })
                .collect();
            let first = sets.remove(0);
            for s in sets {
                prop_assert_eq!(&first, &s);
            }
            // GC safety: the collectible prefix never exceeds what every
            // replica knows.
            for i in 0..n {
                let dc = DatacenterId(i as u16);
                let collectible = {
                    let d = cluster.dc_mut(dc);
                    d.gc()
                };
                let d = cluster.dc(dc);
                for e in d.log().iter().take(collectible) {
                    let r = &e.record;
                    prop_assert!(
                        d.atable().gc_bound(r.host()) >= r.toid(),
                        "GC'd a record some replica might still need"
                    );
                }
            }
        }

        /// The token's assignment rule agrees with the abstract model's
        /// reception rule: feeding the same records (in any order, with
        /// duplicates) produces the same applied cut.
        #[test]
        fn token_agrees_with_abstract_reception(
            mut order in proptest::collection::vec(0usize..12, 1..30),
        ) {
            use bytes::Bytes;
            use chariots_types::Record;
            // A fixed chain of 6 records from host 1 with linear deps,
            // delivered in arbitrary order with duplicates.
            let records: Vec<Record> = (1..=6u64)
                .map(|t| {
                    Record::new(
                        RecordId::new(DatacenterId(1), TOId(t)),
                        VersionVector::from_entries(vec![TOId(0), TOId(t - 1)]),
                        TagSet::new(),
                        Bytes::new(),
                    )
                })
                .collect();
            order.iter_mut().for_each(|i| *i %= records.len());

            // Token path.
            let mut queue = stages::queue::QueueCore::new(DatacenterId(0), true);
            let mut token = Token::new(2);
            for &i in &order {
                queue.stage(vec![Incoming::External(records[i].clone())]);
                queue.process(&mut token);
            }

            // Abstract path.
            let mut model = AbstractDc::new(DatacenterId(0), 2);
            for &i in &order {
                model.receive(Snapshot {
                    from: DatacenterId(1),
                    records: vec![records[i].clone()],
                    atable: ATable::new(2),
                });
            }
            prop_assert_eq!(
                token.applied.get(DatacenterId(1)),
                model.applied().get(DatacenterId(1)),
                "token and abstract model disagree on the applied cut"
            );
        }
    }
}
