//! Multi-datacenter deployment: `n` Chariots instances joined by simulated
//! WAN links, with partition injection.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use chariots_simnet::{Link, LinkConfig, LinkHandle, MetricsRegistry, MetricsSnapshot};
use chariots_types::{ChariotsConfig, ChariotsError, DatacenterId, Result};
use crossbeam::channel::unbounded;

use crate::datacenter::{ChariotsDc, StageStations};
use crate::message::PropagationMsg;

/// A running multi-datacenter Chariots deployment.
pub struct ChariotsCluster {
    dcs: Vec<ChariotsDc>,
    /// Fault-injection handles per directed link `(from, to)`.
    links: HashMap<(DatacenterId, DatacenterId), LinkHandle>,
}

impl ChariotsCluster {
    /// Launches `cfg.num_datacenters` datacenters joined pairwise by links
    /// configured from `wan`.
    pub fn launch(cfg: ChariotsConfig, stations: StageStations, wan: LinkConfig) -> Result<Self> {
        cfg.validate().map_err(ChariotsError::InvalidConfig)?;
        let n = cfg.num_datacenters;

        // One ingress channel per datacenter; every inbound link delivers
        // into it (its receivers share the channel).
        let ingress: Vec<_> = (0..n).map(|_| unbounded::<PropagationMsg>()).collect();

        // One directed link per ordered pair, forwarding into the
        // destination's ingress.
        let mut links = HashMap::new();
        let mut egress: Vec<Vec<(DatacenterId, chariots_simnet::LinkSender<PropagationMsg>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let mut link_cfg = wan.clone();
                // Decorrelate the RNGs of different links.
                link_cfg.seed = wan.seed.wrapping_add((from * n + to) as u64);
                let (tx, rx, handle) = Link::spawn(link_cfg, |m: &PropagationMsg| m.wire_size());
                // Pump the link's egress into the destination ingress.
                let dst = ingress[to].0.clone();
                std::thread::Builder::new()
                    .name(format!("wan-{from}->{to}"))
                    .spawn(move || {
                        for msg in rx {
                            if dst.send(msg).is_err() {
                                return;
                            }
                        }
                    })
                    .expect("spawn wan pump");
                links.insert((DatacenterId(from as u16), DatacenterId(to as u16)), handle);
                egress[from].push((DatacenterId(to as u16), tx));
            }
        }

        let mut dcs = Vec::with_capacity(n);
        for (i, peers) in egress.into_iter().enumerate() {
            let dc = DatacenterId(i as u16);
            dcs.push(ChariotsDc::launch(
                dc,
                cfg.clone(),
                stations.clone(),
                ingress[i].1.clone(),
                peers,
            )?);
        }
        Ok(ChariotsCluster { dcs, links })
    }

    /// Number of datacenters.
    pub fn len(&self) -> usize {
        self.dcs.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        self.dcs.is_empty()
    }

    /// Access one datacenter.
    pub fn dc(&self, i: DatacenterId) -> &ChariotsDc {
        &self.dcs[i.index()]
    }

    /// Mutable access to one datacenter (elasticity operations).
    pub fn dc_mut(&mut self, i: DatacenterId) -> &mut ChariotsDc {
        &mut self.dcs[i.index()]
    }

    /// Opens a client session at datacenter `i`.
    pub fn client(&self, i: DatacenterId) -> crate::client::ChariotsClient {
        self.dcs[i.index()].client()
    }

    /// Cuts both directions between two datacenters.
    pub fn partition(&self, a: DatacenterId, b: DatacenterId) {
        if let Some(l) = self.links.get(&(a, b)) {
            l.partition();
        }
        if let Some(l) = self.links.get(&(b, a)) {
            l.partition();
        }
    }

    /// Heals both directions between two datacenters.
    pub fn heal(&self, a: DatacenterId, b: DatacenterId) {
        if let Some(l) = self.links.get(&(a, b)) {
            l.heal();
        }
        if let Some(l) = self.links.get(&(b, a)) {
            l.heal();
        }
    }

    /// Fault-injection handle for the directed link `from → to`.
    pub fn link(&self, from: DatacenterId, to: DatacenterId) -> Option<&LinkHandle> {
        self.links.get(&(from, to))
    }

    /// Every live metrics registry in the deployment — each datacenter's
    /// pipeline registry followed by its FLStore registry — in the form a
    /// telemetry [`Collector`](chariots_simnet::Collector) attaches.
    pub fn registries(&self) -> Vec<MetricsRegistry> {
        let mut out = Vec::with_capacity(self.dcs.len() * 2);
        for dc in &self.dcs {
            out.push(dc.registry().clone());
            out.push(dc.flstore().registry().clone());
        }
        out
    }

    /// A snapshot of every datacenter's metrics (pipeline and FLStore
    /// registries), merged. Metric names stay disjoint thanks to their
    /// `dc{N}.` prefixes, so nothing collides.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::empty("cluster");
        for dc in &self.dcs {
            snap.merge(&dc.metrics());
        }
        snap
    }

    /// Blocks until every datacenter's log contains at least `n` records,
    /// or the deadline passes. Returns whether the goal was reached.
    /// (Convergence helper for tests and examples.)
    pub fn wait_for_replication(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let all = self.dcs.iter().all(|dc| {
                let mut client = dc.flstore().client();
                client.head_of_log().map(|hl| hl.0 >= n).unwrap_or(false)
            });
            if all {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Shuts down every datacenter.
    pub fn shutdown(self) {
        for dc in self.dcs {
            dc.shutdown();
        }
    }
}
