//! Future reassignment of filter championing (§6.3).
//!
//! "A future reassignment for filters begins by marking future TOIds that
//! are championed by the original filter. These future TOIds mark
//! transition of championing a subset of the records to the new filter.
//! … This future reassignment should allow enough time to propagate this
//! information to batchers."
//!
//! A [`RoutingPlan`] is the filter-stage analogue of FLStore's epoch
//! journal: a sequence of `(boundary TOId, FilterRouting)` epochs. Records
//! with `TOId < boundary` route under the old striping; records at or
//! beyond it under the new one. Because routing is a pure function of
//! `(host, TOId)`, batchers and filters that share the plan always agree —
//! no coordination, exactly like FLStore's position ownership.

use chariots_types::{DatacenterId, TOId};

use crate::stages::filter::FilterRouting;

/// One filter-routing epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingEpoch {
    /// Records with `TOId ≥ boundary` (from any host) use this epoch.
    pub boundary: TOId,
    /// The striping in force.
    pub routing: FilterRouting,
}

/// The full history of filter-routing assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingPlan {
    epochs: Vec<RoutingEpoch>,
}

impl RoutingPlan {
    /// A plan whose initial epoch covers every record.
    pub fn new(initial: FilterRouting) -> Self {
        RoutingPlan {
            epochs: vec![RoutingEpoch {
                boundary: TOId::NONE,
                routing: initial,
            }],
        }
    }

    /// Announces a future reassignment from `boundary` onward. The caller
    /// picks `boundary` beyond every TOId that may already be in flight
    /// (see [`ChariotsDc::add_filter`](crate::datacenter::ChariotsDc::add_filter)).
    ///
    /// Returns the new epoch's index.
    ///
    /// # Panics
    /// Panics if `boundary` does not advance past the current epoch's.
    pub fn announce(&mut self, boundary: TOId, routing: FilterRouting) -> usize {
        let last = self.epochs.last().expect("plan never empty");
        assert!(
            boundary > last.boundary,
            "filter reassignment must start after {:?}",
            last.boundary
        );
        self.epochs.push(RoutingEpoch { boundary, routing });
        self.epochs.len() - 1
    }

    /// The epoch index governing a record with this `TOId`.
    pub fn epoch_for(&self, toid: TOId) -> usize {
        self.epochs
            .iter()
            .rposition(|e| e.boundary <= toid)
            .expect("epoch 0 covers everything")
    }

    /// The epoch at `index`.
    pub fn epoch(&self, index: usize) -> &RoutingEpoch {
        &self.epochs[index]
    }

    /// The current (latest) epoch.
    pub fn current(&self) -> &RoutingEpoch {
        self.epochs.last().expect("plan never empty")
    }

    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The filter championing `(host, toid)` under the governing epoch.
    pub fn filter_for(&self, host: DatacenterId, toid: TOId) -> usize {
        self.epochs[self.epoch_for(toid)]
            .routing
            .filter_for(host, toid)
    }

    /// The `(stride, first_toid)` of `filter`'s championed subsequence of
    /// `host` within epoch `epoch_idx`, clipped to start at the epoch
    /// boundary. `None` if the filter champions nothing of that host there.
    pub fn stride_in_epoch(
        &self,
        epoch_idx: usize,
        filter: usize,
        host: DatacenterId,
    ) -> Option<(u64, u64)> {
        let e = &self.epochs[epoch_idx];
        let (stride, first) = e.routing.stride_for(filter, host)?;
        let b = e.boundary.0.max(1);
        let first = if b <= first {
            first
        } else {
            // Smallest member of {first, first+stride, …} that is ≥ b.
            first + (b - first).div_ceil(stride) * stride
        };
        Some((stride, first))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: u16) -> DatacenterId {
        DatacenterId(i)
    }

    #[test]
    fn single_epoch_matches_routing() {
        let plan = RoutingPlan::new(FilterRouting::new(2, 2));
        assert_eq!(plan.filter_for(dc(0), TOId(5)), 0);
        assert_eq!(plan.filter_for(dc(1), TOId(5)), 1);
        assert_eq!(plan.epoch_for(TOId(1_000_000)), 0);
    }

    #[test]
    fn announce_splits_by_boundary() {
        let mut plan = RoutingPlan::new(FilterRouting::new(1, 1));
        plan.announce(TOId(100), FilterRouting::new(2, 1));
        // Below the boundary: the lone old filter.
        assert_eq!(plan.filter_for(dc(0), TOId(99)), 0);
        assert_eq!(plan.epoch_for(TOId(99)), 0);
        // At and beyond: split between filters 0 and 1 by TOId.
        assert_eq!(plan.epoch_for(TOId(100)), 1);
        let f100 = plan.filter_for(dc(0), TOId(100));
        let f101 = plan.filter_for(dc(0), TOId(101));
        assert_ne!(f100, f101, "consecutive TOIds alternate");
    }

    #[test]
    fn stride_in_epoch_clips_to_boundary() {
        let mut plan = RoutingPlan::new(FilterRouting::new(1, 1));
        plan.announce(TOId(100), FilterRouting::new(2, 1));
        // Epoch 0: the old filter expects 1, 2, 3, … (stride 1).
        assert_eq!(plan.stride_in_epoch(0, 0, dc(0)), Some((1, 1)));
        // Epoch 1: each filter expects its parity class starting ≥ 100.
        let (s0, f0) = plan.stride_in_epoch(1, 0, dc(0)).unwrap();
        let (s1, f1) = plan.stride_in_epoch(1, 1, dc(0)).unwrap();
        assert_eq!((s0, s1), (2, 2));
        assert!(f0 >= 100 && f1 >= 100);
        assert_ne!(f0 % 2, f1 % 2, "the classes partition the TOIds");
        // Together the two filters cover every TOId ≥ 100.
        for t in 100u64..120 {
            let covered = (t >= f0 && (t - f0) % s0 == 0) || (t >= f1 && (t - f1) % s1 == 0);
            assert!(covered, "TOId {t} championed by nobody");
        }
    }

    #[test]
    fn every_routed_record_is_championed_across_epochs() {
        let mut plan = RoutingPlan::new(FilterRouting::new(2, 2));
        plan.announce(TOId(50), FilterRouting::new(3, 2));
        plan.announce(TOId(120), FilterRouting::new(4, 2));
        for host in 0..2u16 {
            for toid in 1u64..200 {
                let epoch = plan.epoch_for(TOId(toid));
                let target = plan.filter_for(dc(host), TOId(toid));
                let (stride, first) = plan
                    .stride_in_epoch(epoch, target, dc(host))
                    .expect("routed filter champions the host in its epoch");
                assert!(
                    toid >= first && (toid - first) % stride == 0,
                    "host {host} toid {toid}: routed to {target} but its \
                     sequence is {first}+{stride}k"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "must start after")]
    fn announce_must_advance() {
        let mut plan = RoutingPlan::new(FilterRouting::new(1, 1));
        plan.announce(TOId::NONE, FilterRouting::new(2, 1));
    }
}
