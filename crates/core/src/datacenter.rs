//! One Chariots datacenter: the full §6.2 pipeline wired together.
//!
//! ```text
//! clients ─┐
//!          ├─► batchers ─► filters ─► queues ─► log maintainers (FLStore)
//! receivers┘     ▲                      │(token ring)      │
//!     ▲          └──────────────────────┘                  ▼
//!     └──────────────── WAN ◄──────────────────────── senders
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chariots_simnet::{
    Counter, LinkSender, MetricsRegistry, MetricsSnapshot, Notify, PipelineTracer, ServiceStation,
    Shutdown, StationConfig, TransportMetrics,
};
use chariots_types::{ChariotsConfig, ChariotsError, DatacenterId, LId, Result, TransportMode};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use chariots_flstore::FLStore;

use crate::atable::ATable;
use crate::message::PropagationMsg;
use crate::routing_plan::RoutingPlan;
use crate::stages::batcher::{spawn_batcher, BatcherHandle};
use crate::stages::filter::{spawn_filter, FilterCore, FilterHandle, FilterIngress, FilterRouting};
use crate::stages::queue::{spawn_queue, QueueHandle, QueueIngress, QueueNodeConfig};
use crate::stages::receiver::spawn_receiver;
use crate::stages::sender::{spawn_sender, SenderHealth, SenderMetrics, SenderNode};
use crate::stages::{StageHealth, STAGE_NAMES};
use crate::token::Token;

/// Per-stage capacity models for the simulated machines (see `DESIGN.md`
/// §3 for the substitution rationale). Default: uncapped (correctness
/// mode); the bench harness caps them to reproduce the paper's tables.
#[derive(Debug, Clone)]
pub struct StageStations {
    /// Batcher machines.
    pub batcher: StationConfig,
    /// Filter machines.
    pub filter: StationConfig,
    /// Queue machines.
    pub queue: StationConfig,
    /// Log-maintainer (store) machines.
    pub store: StationConfig,
    /// Sender machines.
    pub sender: StationConfig,
    /// Receiver machines.
    pub receiver: StationConfig,
}

impl Default for StageStations {
    fn default() -> Self {
        StageStations {
            batcher: StationConfig::uncapped(),
            filter: StationConfig::uncapped(),
            queue: StationConfig::uncapped(),
            store: StationConfig::uncapped(),
            sender: StationConfig::uncapped(),
            receiver: StationConfig::uncapped(),
        }
    }
}

impl StageStations {
    /// Every stage machine capped at the same rate — the paper's
    /// homogeneous clusters.
    pub fn uniform(rate: f64) -> Self {
        StageStations {
            batcher: StationConfig::with_rate(rate),
            filter: StationConfig::with_rate(rate),
            queue: StationConfig::with_rate(rate),
            store: StationConfig::with_rate(rate),
            sender: StationConfig::with_rate(rate),
            receiver: StationConfig::with_rate(rate),
        }
    }
}

/// A running Chariots datacenter.
pub struct ChariotsDc {
    dc: DatacenterId,
    cfg: ChariotsConfig,
    flstore: FLStore,
    maintainer_registry: Arc<RwLock<Vec<chariots_flstore::ReplicaGroupHandle>>>,
    atable: Arc<RwLock<ATable>>,
    batchers: Arc<RwLock<Vec<BatcherHandle>>>,
    filters: Vec<FilterHandle>,
    filter_ingresses: Arc<RwLock<Vec<FilterIngress>>>,
    queues: Vec<QueueHandle>,
    queue_ingresses: Arc<RwLock<Vec<QueueIngress>>>,
    plan: Arc<RwLock<RoutingPlan>>,
    stations: StageStations,
    /// The producer-side sender wakeup handed to late-added queues (a
    /// detached signal when delta shipping is off, so the baseline stays
    /// interval-driven).
    producer_wakeup: Notify,
    registry: MetricsRegistry,
    tracer: PipelineTracer,
    gc_floor: AtomicU64,
    shutdown: Shutdown,
    /// Lifetime spawn counts per elastic stage. Node names and metric keys
    /// are derived from these, never from list positions, so a retired
    /// node's name is never reused (reusing it would silently alias
    /// registry entries and stale collector windows).
    spawned_batchers: usize,
    spawned_queues: usize,
    /// Worker threads for the retireable stages, index-aligned with the
    /// corresponding handle lists so retire can join exactly one thread.
    batcher_threads: Vec<JoinHandle<()>>,
    queue_threads: Vec<JoinHandle<()>>,
    threads: Vec<JoinHandle<()>>,
}

impl ChariotsDc {
    /// Launches a datacenter.
    ///
    /// * `wan_rx` — ingress channel carrying [`PropagationMsg`]s from every
    ///   peer (the cluster wires the links; a lone datacenter passes an
    ///   idle channel).
    /// * `peers` — egress link senders, one per peer datacenter.
    pub fn launch(
        dc: DatacenterId,
        cfg: ChariotsConfig,
        stations: StageStations,
        wan_rx: Receiver<PropagationMsg>,
        peers: Vec<(DatacenterId, LinkSender<PropagationMsg>)>,
    ) -> Result<Self> {
        cfg.validate().map_err(ChariotsError::InvalidConfig)?;
        let shutdown = Shutdown::new();
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        let mut batcher_threads: Vec<JoinHandle<()>> = Vec::new();
        let mut queue_threads: Vec<JoinHandle<()>> = Vec::new();

        // Observability: the per-DC metrics registry and the sampled
        // record tracer all six stages stamp into (see DESIGN.md
        // "Observability" for the naming scheme).
        let prefix = format!("dc{}", dc.0);
        let registry = MetricsRegistry::new(prefix.clone());
        let tracer = PipelineTracer::new(&STAGE_NAMES, cfg.trace_sample_every, &registry, &prefix);

        // Log maintainers (FLStore) — §5, reused as the persistence stage.
        let flstore = FLStore::launch_with(dc, cfg.flstore.clone(), stations.store.clone(), None)?;
        flstore.set_store_tracer(tracer.stage("store"));
        let controller = flstore.controller().clone();
        let maintainers: Arc<RwLock<Vec<chariots_flstore::ReplicaGroupHandle>>> =
            Arc::new(RwLock::new(flstore.maintainers().to_vec()));
        for (i, m) in flstore.maintainers().iter().enumerate() {
            registry.register_counter(format!("{prefix}.store{i}.in"), m.appended_counter());
        }

        let atable = Arc::new(RwLock::new(ATable::new(cfg.num_datacenters)));

        // The senders' wakeup: queues signal it when new local records are
        // routed, receivers when gossip raises the ATable. With delta
        // shipping off (the bench baseline, matching the original design),
        // producers get a *detached* signal so senders stay purely
        // interval-driven.
        let sender_wakeup = Notify::new();
        let producer_wakeup = if cfg.sender_delta_shipping {
            sender_wakeup.clone()
        } else {
            Notify::new()
        };

        // Queues: pre-create the token ring, then spawn.
        let n_q = cfg.stages.queues;
        let token_channels: Vec<(Sender<Token>, Receiver<Token>)> =
            (0..n_q).map(|_| unbounded()).collect();
        let mut queues = Vec::with_capacity(n_q);
        for i in 0..n_q {
            let next = Arc::new(Mutex::new(token_channels[(i + 1) % n_q].0.clone()));
            let station = Arc::new(ServiceStation::new(
                format!("{dc}-queue-{i}"),
                stations.queue.clone(),
            ));
            let (handle, thread) = spawn_queue(
                QueueNodeConfig {
                    dc,
                    carries_deferred: cfg.token_carries_deferred,
                    controller: controller.clone(),
                    maintainers: Arc::clone(&maintainers),
                    atable: Arc::clone(&atable),
                    next_queue: next,
                    idle_pause: std::time::Duration::from_micros(200),
                    tracer: tracer.stage("queue"),
                    store_tracer: tracer.stage("store"),
                    sender_wakeup: producer_wakeup.clone(),
                    health: StageHealth::registered(&registry, &prefix, &format!("queue{i}")),
                },
                token_channels[i].clone(),
                station,
                shutdown.clone(),
                format!("{dc}-queue-{i}"),
            );
            registry.register_counter(format!("{prefix}.queue{i}.in"), handle.processed_counter());
            queues.push(handle);
            queue_threads.push(thread);
        }
        // Exactly one token exists; it starts at queue 0.
        queues[0].inject_token(Token::new(cfg.num_datacenters));
        // Under the TCP transport every intra-DC hop crosses a real
        // loopback socket: the ingress handles handed to the upstream
        // stage carry a reconnecting `TcpSender` instead of the channel.
        let mut ingresses = Vec::with_capacity(queues.len());
        for (i, q) in queues.iter().enumerate() {
            ingresses.push(wire_stage(
                &cfg,
                q.ingress(),
                &registry,
                &format!("queue{i}"),
                &shutdown,
                |ing, name, sd, m| ing.via_tcp(name, sd, m),
            )?);
        }
        let queue_ingresses = Arc::new(RwLock::new(ingresses));

        // Filters, governed by the shared routing plan (future
        // reassignment support, §6.3).
        let plan = Arc::new(RwLock::new(RoutingPlan::new(FilterRouting::new(
            cfg.stages.filters,
            cfg.num_datacenters,
        ))));
        let mut filters = Vec::with_capacity(cfg.stages.filters);
        for i in 0..cfg.stages.filters {
            let station = Arc::new(ServiceStation::new(
                format!("{dc}-filter-{i}"),
                stations.filter.clone(),
            ));
            let (handle, thread) = spawn_filter(
                FilterCore::new(i, Arc::clone(&plan)),
                Arc::clone(&queue_ingresses),
                station,
                shutdown.clone(),
                format!("{dc}-filter-{i}"),
                tracer.stage("filter"),
                StageHealth::registered(&registry, &prefix, &format!("filter{i}")),
            );
            registry.register_counter(format!("{prefix}.filter{i}.in"), handle.processed_counter());
            registry.register_counter(
                format!("{prefix}.filter{i}.dups"),
                handle.duplicates_counter(),
            );
            filters.push(handle);
            threads.push(thread);
        }
        let mut f_ingresses = Vec::with_capacity(filters.len());
        for (i, f) in filters.iter().enumerate() {
            f_ingresses.push(wire_stage(
                &cfg,
                f.ingress(),
                &registry,
                &format!("filter{i}"),
                &shutdown,
                |ing, name, sd, m| ing.via_tcp(name, sd, m),
            )?);
        }
        let filter_ingresses = Arc::new(RwLock::new(f_ingresses));

        // Batchers.
        let n_b = cfg.stages.batchers;
        let mut batcher_handles = Vec::with_capacity(n_b);
        for i in 0..n_b {
            let station = Arc::new(ServiceStation::new(
                format!("{dc}-batcher-{i}"),
                stations.batcher.clone(),
            ));
            let (handle, thread) = spawn_batcher(
                Arc::clone(&plan),
                cfg.batcher_flush_threshold,
                cfg.batcher_flush_interval,
                Arc::clone(&filter_ingresses),
                station,
                shutdown.clone(),
                format!("{dc}-batcher-{i}"),
                tracer.stage("batcher"),
                StageHealth::registered(&registry, &prefix, &format!("batcher{i}")),
            );
            registry.register_counter(
                format!("{prefix}.batcher{i}.in"),
                handle.processed_counter(),
            );
            let handle = wire_stage(
                &cfg,
                handle,
                &registry,
                &format!("batcher{i}"),
                &shutdown,
                |h, name, sd, m| h.via_tcp(name, sd, m),
            )?;
            batcher_handles.push(handle);
            batcher_threads.push(thread);
        }
        let batchers = Arc::new(RwLock::new(batcher_handles));

        // Receivers and senders (multi-datacenter only).
        if cfg.num_datacenters > 1 {
            for i in 0..cfg.stages.receivers {
                let station = Arc::new(ServiceStation::new(
                    format!("{dc}-receiver-{i}"),
                    stations.receiver.clone(),
                ));
                let (counter, thread) = spawn_receiver(
                    wan_rx.clone(),
                    Arc::clone(&batchers),
                    Arc::clone(&atable),
                    producer_wakeup.clone(),
                    station,
                    shutdown.clone(),
                    format!("{dc}-receiver-{i}"),
                    tracer.clone(),
                    StageHealth::registered(&registry, &prefix, &format!("receiver{i}")),
                );
                registry.register_counter(format!("{prefix}.receiver{i}.in"), counter);
                threads.push(thread);
            }
            let wan_metrics = SenderMetrics::registered(&registry, &prefix);
            let peer_ids: Vec<DatacenterId> = peers.iter().map(|(p, _)| *p).collect();
            for i in 0..cfg.stages.senders {
                // Sender i is responsible for maintainers i, i+S, i+2S, …
                let node = SenderNode::new(
                    dc,
                    Arc::clone(&maintainers),
                    i,
                    cfg.stages.senders,
                    Arc::clone(&atable),
                    peers.clone(),
                )
                .with_policy(cfg.sender_delta_shipping)
                .with_retransmit_timeout(cfg.retransmit_timeout)
                .with_max_chunk_bytes(cfg.max_propagation_bytes)
                .with_cache_cap(cfg.sender_cache_max_records)
                .with_metrics(wan_metrics.clone())
                .with_health(SenderHealth::registered(
                    &registry,
                    &prefix,
                    &format!("sender{i}"),
                    &peer_ids,
                ));
                let station = Arc::new(ServiceStation::new(
                    format!("{dc}-sender-{i}"),
                    stations.sender.clone(),
                ));
                let (counter, thread) = spawn_sender(
                    node,
                    cfg.propagation_interval,
                    sender_wakeup.clone(),
                    station,
                    shutdown.clone(),
                    format!("{dc}-sender-{i}"),
                    tracer.stage("sender"),
                );
                registry.register_counter(format!("{prefix}.sender{i}.in"), counter);
                threads.push(thread);
            }
        }

        Ok(ChariotsDc {
            dc,
            cfg,
            flstore,
            maintainer_registry: maintainers,
            atable,
            batchers,
            filters,
            filter_ingresses,
            queues,
            queue_ingresses,
            plan,
            stations,
            producer_wakeup,
            registry,
            tracer,
            gc_floor: AtomicU64::new(0),
            shutdown,
            spawned_batchers: n_b,
            spawned_queues: n_q,
            batcher_threads,
            queue_threads,
            threads,
        })
    }

    /// This datacenter's id.
    pub fn id(&self) -> DatacenterId {
        self.dc
    }

    /// The deployment configuration.
    pub fn config(&self) -> &ChariotsConfig {
        &self.cfg
    }

    /// The FLStore backing the log-maintainers stage.
    pub fn flstore(&self) -> &FLStore {
        &self.flstore
    }

    /// The shared awareness table.
    pub fn atable(&self) -> Arc<RwLock<ATable>> {
        Arc::clone(&self.atable)
    }

    /// The batcher nodes' handles (bench harness drives them directly to
    /// model client machines with their own pacing and backpressure).
    pub fn batcher_handles(&self) -> Vec<crate::stages::batcher::BatcherHandle> {
        self.batchers.read().clone()
    }

    /// Shared access to the batcher list (client handles).
    pub(crate) fn batchers(&self) -> Arc<RwLock<Vec<BatcherHandle>>> {
        Arc::clone(&self.batchers)
    }

    /// Opens an application-client session.
    pub fn client(&self) -> crate::client::ChariotsClient {
        crate::client::ChariotsClient::connect(self)
    }

    /// Live elasticity (§6.3): adds a batcher. "A new batcher need[s] to
    /// inform local receivers of its existence" — here, it registers in the
    /// shared list both receivers and clients consult.
    pub fn add_batcher(&mut self) -> usize {
        let idx = self.spawned_batchers;
        self.spawned_batchers += 1;
        let station = Arc::new(ServiceStation::new(
            format!("{}-batcher-{idx}", self.dc),
            self.stations.batcher.clone(),
        ));
        let (handle, thread) = spawn_batcher(
            Arc::clone(&self.plan),
            self.cfg.batcher_flush_threshold,
            self.cfg.batcher_flush_interval,
            Arc::clone(&self.filter_ingresses),
            station,
            self.shutdown.clone(),
            format!("{}-batcher-{idx}", self.dc),
            self.tracer.stage("batcher"),
            StageHealth::registered(
                &self.registry,
                &format!("dc{}", self.dc.0),
                &format!("batcher{idx}"),
            ),
        );
        self.registry.register_counter(
            format!("dc{}.batcher{idx}.in", self.dc.0),
            handle.processed_counter(),
        );
        let handle = self.wire_elastic(handle, &format!("batcher{idx}"), |h, name, sd, m| {
            h.via_tcp(name, sd, m)
        });
        self.batchers.write().push(handle);
        self.batcher_threads.push(thread);
        idx
    }

    /// Scale-in (drain-and-retire): removes the most recently added
    /// batcher. Popping the handle from the shared list under its write
    /// lock is the admission barrier — clients and receivers hold the read
    /// lock for the duration of each send, so once the lock is released no
    /// new record can reach the victim. The node then serves and flushes
    /// everything already admitted before its thread exits, so nothing is
    /// lost. Errors if only one batcher remains.
    pub fn retire_batcher(&mut self) -> Result<()> {
        let victim = {
            let mut batchers = self.batchers.write();
            if batchers.len() <= 1 {
                return Err(ChariotsError::InvalidConfig(
                    "cannot retire the last batcher".into(),
                ));
            }
            batchers.pop().expect("non-empty")
        };
        victim.begin_retire();
        if let Some(t) = self.batcher_threads.pop() {
            let _ = t.join();
        }
        Ok(())
    }

    /// Live elasticity (§6.3): adds a queue to the token ring. The new
    /// queue is spliced between the last queue and queue 0, and registered
    /// with the filters — which needs no coordination "because a queue can
    /// receive any record".
    pub fn add_queue(&mut self) -> usize {
        let idx = self.spawned_queues;
        self.spawned_queues += 1;
        let (token_tx, token_rx) = unbounded::<Token>();
        // The new queue forwards to queue 0 (closing the ring).
        let next = Arc::new(Mutex::new(self.queues[0].token_sender()));
        let station = Arc::new(ServiceStation::new(
            format!("{}-queue-{idx}", self.dc),
            self.stations.queue.clone(),
        ));
        let (handle, thread) = spawn_queue(
            QueueNodeConfig {
                dc: self.dc,
                carries_deferred: self.cfg.token_carries_deferred,
                controller: self.flstore.controller().clone(),
                maintainers: Arc::clone(&self.maintainer_registry),
                atable: Arc::clone(&self.atable),
                next_queue: next,
                idle_pause: std::time::Duration::from_micros(200),
                tracer: self.tracer.stage("queue"),
                store_tracer: self.tracer.stage("store"),
                sender_wakeup: self.producer_wakeup.clone(),
                health: StageHealth::registered(
                    &self.registry,
                    &format!("dc{}", self.dc.0),
                    &format!("queue{idx}"),
                ),
            },
            (token_tx, token_rx),
            station,
            self.shutdown.clone(),
            format!("{}-queue-{idx}", self.dc),
        );
        self.registry.register_counter(
            format!("dc{}.queue{idx}.in", self.dc.0),
            handle.processed_counter(),
        );
        // Splice into the ring: the previous last queue now forwards to
        // the new one.
        self.queues
            .last()
            .expect("at least one queue")
            .set_next(handle.token_sender());
        let ingress = self.wire_elastic(
            handle.ingress(),
            &format!("queue{idx}"),
            |h, name, sd, m| h.via_tcp(name, sd, m),
        );
        self.queue_ingresses.write().push(ingress);
        self.queues.push(handle);
        self.queue_threads.push(thread);
        idx
    }

    /// Scale-in (drain-and-retire): removes the most recently added queue
    /// from the token ring. Steps, in order:
    ///
    /// 1. Pop the victim's ingress under the shared list's write lock —
    ///    filters hold the read lock for the duration of each send, so
    ///    after this no new record reaches the victim.
    /// 2. Signal the drain; the victim evicts parked records onto the
    ///    token and confirms — while holding the token — that its channel,
    ///    staged set, and parked set are empty.
    /// 3. Unsplice the ring: the predecessor forwards straight to queue 0
    ///    (the victim, being last, already forwards there itself, so the
    ///    ring stays closed throughout).
    /// 4. Stop the node; its loop forwards any straggler token before
    ///    exiting, preserving the deployment's single token.
    ///
    /// If the drain misses `drain_timeout`, the retire is cancelled, the
    /// ingress restored, and `Unavailable` returned — the ring is left
    /// exactly as it was. Errors with `InvalidConfig` if only one queue
    /// remains.
    pub fn retire_queue(&mut self, drain_timeout: Duration) -> Result<()> {
        if self.queues.len() <= 1 {
            return Err(ChariotsError::InvalidConfig(
                "cannot retire the last queue".into(),
            ));
        }
        // Admission barrier (step 1).
        self.queue_ingresses.write().pop();
        let victim = self.queues.last().expect("non-empty").clone();
        victim.begin_retire();
        let deadline = Instant::now() + drain_timeout;
        while !victim.is_drained() {
            if Instant::now() >= deadline {
                victim.cancel_retire();
                self.queue_ingresses.write().push(victim.ingress());
                return Err(ChariotsError::Unavailable(
                    "queue drain timed out; retire cancelled".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Unsplice (step 3), then stop and join (step 4).
        let n = self.queues.len();
        self.queues[n - 2].set_next(self.queues[0].token_sender());
        victim.finish_retire();
        self.queues.pop();
        if let Some(t) = self.queue_threads.pop() {
            let _ = t.join();
        }
        Ok(())
    }

    /// Live batcher machines (the autoscaler's per-stage gauge source).
    pub fn batcher_count(&self) -> usize {
        self.batchers.read().len()
    }

    /// Live queue machines.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Live filter machines.
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Live maintainer groups.
    pub fn maintainer_count(&self) -> usize {
        self.maintainer_registry.read().len()
    }

    /// Live elasticity (§6.3): adds a filter via *future reassignment*.
    ///
    /// The championing switch takes effect at a TOId boundary chosen far
    /// beyond anything currently in flight (`margin` past the highest TOId
    /// this datacenter knows of), giving the announcement "enough time to
    /// propagate … to batchers". Returns the new filter's index.
    pub fn add_filter(&mut self, margin: u64) -> usize {
        let idx = self.filters.len();
        let new_routing = FilterRouting::new(idx + 1, self.cfg.num_datacenters);
        // Boundary: beyond every TOId any host is known to have produced.
        let max_known = {
            let atable = self.atable.read();
            (0..self.cfg.num_datacenters)
                .map(|h| {
                    let h = DatacenterId(h as u16);
                    (0..self.cfg.num_datacenters)
                        .map(|i| atable.get(DatacenterId(i as u16), h).0)
                        .max()
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0)
        };
        let boundary = chariots_types::TOId(max_known + margin.max(1));
        // Spawn the filter before activating the epoch so it exists when
        // the first post-boundary record routes to it.
        let station = Arc::new(ServiceStation::new(
            format!("{}-filter-{idx}", self.dc),
            self.stations.filter.clone(),
        ));
        let (handle, thread) = spawn_filter(
            FilterCore::new(idx, Arc::clone(&self.plan)),
            Arc::clone(&self.queue_ingresses),
            station,
            self.shutdown.clone(),
            format!("{}-filter-{idx}", self.dc),
            self.tracer.stage("filter"),
            StageHealth::registered(
                &self.registry,
                &format!("dc{}", self.dc.0),
                &format!("filter{idx}"),
            ),
        );
        self.registry.register_counter(
            format!("dc{}.filter{idx}.in", self.dc.0),
            handle.processed_counter(),
        );
        self.registry.register_counter(
            format!("dc{}.filter{idx}.dups", self.dc.0),
            handle.duplicates_counter(),
        );
        let ingress = self.wire_elastic(
            handle.ingress(),
            &format!("filter{idx}"),
            |h, name, sd, m| h.via_tcp(name, sd, m),
        );
        self.filter_ingresses.write().push(ingress);
        self.filters.push(handle);
        self.threads.push(thread);
        self.plan.write().announce(boundary, new_routing);
        idx
    }

    /// The queue nodes' handles (fault injection and diagnostics).
    pub fn queue_handles(&self) -> &[QueueHandle] {
        &self.queues
    }

    /// The shared filter-routing plan (diagnostics).
    pub fn routing_plan(&self) -> Arc<RwLock<RoutingPlan>> {
        Arc::clone(&self.plan)
    }

    /// Live elasticity (§6.3): expands the FLStore maintainer fleet via a
    /// future reassignment at `boundary`, and registers the new maintainer
    /// with the queues (routing) and senders (propagation scanning).
    pub fn flstore_add_maintainer(
        &mut self,
        boundary: LId,
    ) -> Result<chariots_types::MaintainerId> {
        let id = self.flstore.add_maintainer(boundary)?;
        *self.maintainer_registry.write() = self.flstore.maintainers().to_vec();
        for (i, m) in self.flstore.maintainers().iter().enumerate() {
            self.registry
                .register_counter(format!("dc{}.store{i}.in", self.dc.0), m.appended_counter());
        }
        Ok(id)
    }

    /// The datacenter's metrics registry. Stage throughput counters are
    /// registered as `dc{N}.{stage}{i}.in`; the tracer keeps one
    /// `dc{N}.{stage}.latency_us` histogram per pipeline stage.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The sampled record tracer stamping per-stage spans.
    pub fn tracer(&self) -> &PipelineTracer {
        &self.tracer
    }

    /// A point-in-time snapshot of every metric this datacenter owns:
    /// the pipeline registry merged with the FLStore registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.merge(&self.flstore.metrics());
        snap
    }

    /// Per-stage throughput counters: `(machine name, counter)` pairs for
    /// the bench harness (Tables 2–5, Fig. 9).
    ///
    /// A thin shim over [`registry`](Self::registry): each
    /// `dc{N}.{stage}{i}.in` counter is reported under its legacy
    /// `{stage}-{i}` name.
    pub fn stage_counters(&self) -> Vec<(String, Counter)> {
        let prefix = format!("dc{}.", self.dc.0);
        let mut out = Vec::new();
        for (name, counter) in self.registry.counters() {
            let Some(machine) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(".in"))
            else {
                continue;
            };
            let split = machine
                .find(|c: char| c.is_ascii_digit())
                .unwrap_or(machine.len());
            let (stage, idx) = machine.split_at(split);
            out.push((format!("{stage}-{idx}"), counter));
        }
        out
    }

    /// Garbage collection (§6.1): collects the longest log prefix in which
    /// every record is known by all replicas, additionally honoring the
    /// `gc_keep_records` spatial rule. Returns the new exclusive bound.
    pub fn run_gc(&self) -> Result<LId> {
        let mut client = self.flstore.client();
        let hl = client.head_of_log()?;
        let atable = self.atable.read();
        let floor = self.gc_floor.load(Ordering::Acquire);
        let mut bound = LId(floor);
        while bound < hl {
            match client.read_with_hl(bound, true) {
                Ok(entry) => {
                    let r = &entry.record;
                    if atable.gc_bound(r.host()) >= r.toid() {
                        bound = bound.next();
                    } else {
                        break;
                    }
                }
                Err(ChariotsError::GarbageCollected(_)) => {
                    bound = bound.next();
                }
                Err(_) => break,
            }
        }
        drop(atable);
        // Spatial rule: keep at least the most recent `keep` records.
        if let Some(keep) = self.cfg.gc_keep_records {
            let cap = LId(hl.0.saturating_sub(keep));
            if bound > cap {
                bound = cap;
            }
        }
        if bound.0 > floor {
            self.flstore.gc_before(bound);
            self.gc_floor.store(bound.0, Ordering::Release);
            self.registry.journal().publish(
                &format!("dc{}.gc", self.dc.0),
                None,
                chariots_simnet::EventKind::GcSweep {
                    bound: bound.0,
                    collected: bound.0 - floor,
                },
            );
        }
        Ok(bound)
    }

    /// TCP-wraps a late-added stage handle under the configured transport.
    /// Elastic adds cannot fail, so a loopback bind error (fd exhaustion)
    /// degrades that one node to the in-process channel instead of
    /// panicking mid-scale-out.
    fn wire_elastic<T>(
        &self,
        handle: T,
        endpoint: &str,
        via: impl FnOnce(&T, &str, Shutdown, TransportMetrics) -> std::io::Result<T>,
    ) -> T {
        if self.cfg.transport != TransportMode::Tcp {
            return handle;
        }
        let metrics = TransportMetrics::registered(&self.registry, endpoint);
        match via(&handle, endpoint, self.shutdown.clone(), metrics) {
            Ok(wired) => wired,
            Err(_) => handle,
        }
    }

    fn join_all(&mut self) {
        self.shutdown.signal();
        for t in self
            .threads
            .drain(..)
            .chain(self.batcher_threads.drain(..))
            .chain(self.queue_threads.drain(..))
        {
            let _ = t.join();
        }
    }

    /// Stops every stage and joins the worker threads.
    pub fn shutdown(mut self) {
        self.join_all();
    }
}

impl Drop for ChariotsDc {
    fn drop(&mut self) {
        self.join_all();
    }
}

/// TCP-wraps a stage handle when the configured transport is
/// [`TransportMode::Tcp`]: spawns the stage's loopback listener, registers
/// per-endpoint `chariots.transport.*` metrics, and returns a handle whose
/// sends cross the socket. Under the default simnet transport the handle
/// passes through untouched.
fn wire_stage<T>(
    cfg: &ChariotsConfig,
    handle: T,
    registry: &MetricsRegistry,
    endpoint: &str,
    shutdown: &Shutdown,
    via: impl FnOnce(&T, &str, Shutdown, TransportMetrics) -> std::io::Result<T>,
) -> Result<T> {
    if cfg.transport != TransportMode::Tcp {
        return Ok(handle);
    }
    let metrics = TransportMetrics::registered(registry, endpoint);
    via(&handle, endpoint, shutdown.clone(), metrics)
        .map_err(|e| ChariotsError::Transport(e.to_string()))
}
