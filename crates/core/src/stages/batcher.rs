//! The batchers stage (§6.2).
//!
//! "The Batchers buffer records that are received locally or from external
//! sources. Batchers are completely independent from each other … Each
//! Batcher has a number of buffers equal to the number of Filters. Each
//! record is mapped to a specific Filter … Once a buffer size exceeds a
//! threshold, the records are sent to the designated Filter."
//!
//! Batchers consult the shared [`RoutingPlan`] on every record, so filter
//! reassignments (§6.3) reach them without coordination — routing is a pure
//! function of `(host, TOId)`.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chariots_simnet::{
    spawn_wire_listener, Counter, ServiceStation, Shutdown, StageTracer, TcpSender,
    TransportMetrics,
};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;

use crate::message::Incoming;
use crate::routing_plan::RoutingPlan;
use crate::stages::filter::FilterIngress;
use crate::stages::StageHealth;

/// The synchronous state of one batcher: per-filter buffers.
#[derive(Debug)]
pub struct BatcherCore {
    buffers: Vec<Vec<Incoming>>,
    threshold: usize,
    plan: Arc<RwLock<RoutingPlan>>,
    local_spread: usize,
}

impl BatcherCore {
    /// A batcher flushing at `threshold` records per buffer, routing by
    /// the shared plan.
    pub fn new(plan: Arc<RwLock<RoutingPlan>>, threshold: usize) -> Self {
        let n = plan.read().current().routing.num_filters();
        BatcherCore {
            buffers: (0..n).map(|_| Vec::new()).collect(),
            threshold,
            plan,
            local_spread: 0,
        }
    }

    fn buffer_mut(&mut self, idx: usize) -> &mut Vec<Incoming> {
        if idx >= self.buffers.len() {
            self.buffers.resize_with(idx + 1, Vec::new);
        }
        &mut self.buffers[idx]
    }

    /// Buffers one record; returns a `(filter_index, batch)` flush if the
    /// destination buffer crossed the threshold.
    pub fn ingest(&mut self, record: Incoming) -> Option<(usize, Vec<Incoming>)> {
        let idx = match &record {
            Incoming::External(r) => self.plan.read().filter_for(r.host(), r.toid()),
            Incoming::Local(_) => {
                // Local records have no champion (no dedup needed); spread
                // them round-robin over the current filter fleet.
                let n = self.plan.read().current().routing.num_filters();
                self.local_spread = (self.local_spread + 1) % n;
                self.local_spread
            }
        };
        let threshold = self.threshold;
        let buffer = self.buffer_mut(idx);
        buffer.push(record);
        if buffer.len() >= threshold {
            Some((idx, std::mem::take(buffer)))
        } else {
            None
        }
    }

    /// Flushes every non-empty buffer (time-based flush at low load).
    pub fn flush_all(&mut self) -> Vec<(usize, Vec<Incoming>)> {
        self.buffers
            .iter_mut()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| (i, std::mem::take(b)))
            .collect()
    }

    /// Records currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }
}

/// Handle to a batcher node.
#[derive(Clone)]
pub struct BatcherHandle {
    tx: Sender<Incoming>,
    station: Arc<ServiceStation>,
    processed: Counter,
    tracer: StageTracer,
    retire: Shutdown,
    /// When set, `send` serializes the record and ships it over TCP to
    /// this node's loopback listener instead of the channel. Everything
    /// else (station, counters, tracer) is shared with the local handle.
    wire: Option<Arc<TcpSender>>,
}

impl BatcherHandle {
    /// Feeds one record into the batcher. A traced record's batcher span
    /// starts here, so it includes channel and buffer wait.
    pub fn send(&self, record: Incoming) -> bool {
        self.station.note_arrival(1);
        self.tracer.enter(record.trace());
        match &self.wire {
            Some(wire) => wire.send(&record).is_ok(),
            None => self.tx.send(record).is_ok(),
        }
    }

    /// Exposes this batcher over TCP: spawns a loopback listener that
    /// feeds the same inbound channel, and returns a handle clone whose
    /// `send` goes through a pooled socket. Station accounting and tracing
    /// stay on the sending side (shared `Arc`s), so both backends charge
    /// the stage identically; the listener injects raw.
    pub fn via_tcp(
        &self,
        name: &str,
        shutdown: Shutdown,
        metrics: TransportMetrics,
    ) -> std::io::Result<BatcherHandle> {
        let tx = self.tx.clone();
        let addr =
            spawn_wire_listener(name, shutdown, metrics.clone(), move |record: Incoming| {
                let _ = tx.send(record);
            })?;
        let mut wired = self.clone();
        wired.wire = Some(Arc::new(TcpSender::new(addr, metrics)));
        Ok(wired)
    }

    /// Records processed by this batcher (bench instrumentation).
    pub fn processed_counter(&self) -> Counter {
        self.processed.clone()
    }

    /// The machine's capacity model.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }

    /// Signals drain-and-retire: the loop serves and flushes everything
    /// already admitted, then exits so the caller can join the thread.
    /// The caller must have removed this handle from the shared batcher
    /// list first — that write lock is the admission barrier, after which
    /// the channel only shrinks.
    pub fn begin_retire(&self) {
        self.retire.signal();
    }
}

/// Spawns a batcher node: drains its channel, paces through its station,
/// and flushes batches to the (dynamically growable) filter fleet.
#[allow(clippy::too_many_arguments)]
pub fn spawn_batcher(
    plan: Arc<RwLock<RoutingPlan>>,
    threshold: usize,
    flush_interval: Duration,
    filters: Arc<RwLock<Vec<FilterIngress>>>,
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
    tracer: StageTracer,
    health: StageHealth,
) -> (BatcherHandle, JoinHandle<()>) {
    let (tx, rx) = unbounded::<Incoming>();
    let processed = Counter::new();
    let retire = Shutdown::new();
    let handle = BatcherHandle {
        tx,
        station: Arc::clone(&station),
        processed: processed.clone(),
        tracer: tracer.clone(),
        retire: retire.clone(),
        wire: None,
    };
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            batcher_loop(
                BatcherCore::new(plan, threshold),
                &rx,
                &filters,
                &station,
                flush_interval,
                &shutdown,
                &retire,
                &processed,
                &tracer,
                &health,
            )
        })
        .expect("spawn batcher");
    (handle, thread)
}

fn send_to_filter(
    filters: &RwLock<Vec<FilterIngress>>,
    idx: usize,
    batch: Vec<Incoming>,
    tracer: &StageTracer,
) {
    // The batcher span ends when the batch leaves for the filter.
    for record in &batch {
        tracer.exit(record.trace());
    }
    let filters = filters.read();
    if let Some(f) = filters.get(idx) {
        f.send(batch);
    }
}

#[allow(clippy::too_many_arguments)]
fn batcher_loop(
    mut core: BatcherCore,
    rx: &Receiver<Incoming>,
    filters: &RwLock<Vec<FilterIngress>>,
    station: &ServiceStation,
    flush_interval: Duration,
    shutdown: &Shutdown,
    retire: &Shutdown,
    processed: &Counter,
    tracer: &StageTracer,
    health: &StageHealth,
) {
    let mut last_flush = Instant::now();
    loop {
        if shutdown.is_signaled() {
            return;
        }
        if retire.is_signaled() {
            // Drain-and-retire: admission stopped when the handle left the
            // shared list, so the channel only shrinks. Serve what's left,
            // flush every buffer, zero the gauges, and exit — nothing this
            // node ever admitted is lost.
            while let Ok(record) = rx.try_recv() {
                if station.serve(1).is_err() {
                    continue; // crashed: the record is lost
                }
                processed.add(1);
                if let Some((idx, batch)) = core.ingest(record) {
                    send_to_filter(filters, idx, batch, tracer);
                }
            }
            for (idx, batch) in core.flush_all() {
                send_to_filter(filters, idx, batch, tracer);
            }
            health.depth.set(0);
            health.occupancy.set(0);
            return;
        }
        health.depth.set(rx.len() as i64);
        health.occupancy.set(core.buffered() as i64);
        match rx.recv_timeout(flush_interval) {
            Ok(record) => {
                if station.serve(1).is_err() {
                    continue; // crashed: the record is lost
                }
                processed.add(1);
                if let Some((idx, batch)) = core.ingest(record) {
                    send_to_filter(filters, idx, batch, tracer);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                for (idx, batch) in core.flush_all() {
                    send_to_filter(filters, idx, batch, tracer);
                }
                return;
            }
        }
        if last_flush.elapsed() >= flush_interval {
            last_flush = Instant::now();
            for (idx, batch) in core.flush_all() {
                send_to_filter(filters, idx, batch, tracer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::filter::FilterRouting;
    use bytes::Bytes;
    use chariots_types::{DatacenterId, Record, RecordId, TOId, TagSet, VersionVector};

    fn plan(filters: usize, dcs: usize) -> Arc<RwLock<RoutingPlan>> {
        Arc::new(RwLock::new(RoutingPlan::new(FilterRouting::new(
            filters, dcs,
        ))))
    }

    fn external(host: u16, toid: u64) -> Incoming {
        Incoming::External(Record::new(
            RecordId::new(DatacenterId(host), TOId(toid)),
            VersionVector::new(2),
            TagSet::new(),
            Bytes::new(),
        ))
    }

    fn local() -> Incoming {
        Incoming::Local(crate::message::LocalAppend {
            tags: TagSet::new(),
            body: Bytes::new(),
            deps: VersionVector::new(2),
            reply: None,
            trace: None,
        })
    }

    #[test]
    fn flush_triggers_at_threshold() {
        let mut b = BatcherCore::new(plan(1, 2), 3);
        assert!(b.ingest(external(0, 1)).is_none());
        assert!(b.ingest(external(0, 2)).is_none());
        let (idx, batch) = b.ingest(external(0, 3)).expect("threshold flush");
        assert_eq!(idx, 0);
        assert_eq!(batch.len(), 3);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn records_route_to_host_champion_buffers() {
        let mut b = BatcherCore::new(plan(2, 2), 100);
        b.ingest(external(0, 1));
        b.ingest(external(1, 1));
        b.ingest(external(0, 2));
        // Host 0 → filter 0, host 1 → filter 1 (2 filters, 2 DCs).
        assert_eq!(b.buffers[0].len(), 2);
        assert_eq!(b.buffers[1].len(), 1);
    }

    #[test]
    fn local_records_spread_round_robin() {
        let mut b = BatcherCore::new(plan(2, 2), 100);
        for _ in 0..6 {
            b.ingest(local());
        }
        assert_eq!(b.buffers[0].len(), 3);
        assert_eq!(b.buffers[1].len(), 3);
    }

    #[test]
    fn flush_all_empties_every_buffer() {
        let mut b = BatcherCore::new(plan(2, 2), 100);
        b.ingest(external(0, 1));
        b.ingest(external(1, 1));
        let flushed = b.flush_all();
        assert_eq!(flushed.len(), 2);
        assert_eq!(b.buffered(), 0);
        assert!(b.flush_all().is_empty());
    }

    #[test]
    fn plan_change_reroutes_future_toids() {
        let p = plan(1, 1);
        let mut b = BatcherCore::new(Arc::clone(&p), 100);
        b.ingest(external(0, 1));
        assert_eq!(b.buffers[0].len(), 1);
        p.write().announce(TOId(10), FilterRouting::new(2, 1));
        // Below the boundary: still the old filter.
        b.ingest(external(0, 9));
        assert_eq!(b.buffers[0].len(), 2);
        // At/after the boundary: split across both filters.
        b.ingest(external(0, 10));
        b.ingest(external(0, 11));
        let in_new: usize = b.buffers.get(1).map(Vec::len).unwrap_or(0);
        assert_eq!(b.buffered(), 4);
        assert!(in_new >= 1, "the new filter got part of the split");
    }

    #[test]
    fn node_forwards_batches_to_filters() {
        use chariots_simnet::StationConfig;
        let (filter_tx, filter_rx) = unbounded();
        let shutdown = Shutdown::new();
        let station = Arc::new(ServiceStation::new("b0", StationConfig::uncapped()));
        let ingress = FilterIngress::from_parts(
            filter_tx,
            Arc::new(ServiceStation::new("f0", StationConfig::uncapped())),
            StageTracer::disabled(),
        );
        let (handle, thread) = spawn_batcher(
            plan(1, 2),
            4,
            Duration::from_millis(1),
            Arc::new(RwLock::new(vec![ingress])),
            station,
            shutdown.clone(),
            "batcher-test".into(),
            StageTracer::disabled(),
            StageHealth::disabled(),
        );
        for i in 0..10 {
            assert!(handle.send(external(0, i + 1)));
        }
        let mut received = 0;
        let deadline = Instant::now() + Duration::from_secs(2);
        while received < 10 {
            match filter_rx.recv_timeout(Duration::from_millis(100)) {
                Ok(batch) => received += batch.len(),
                Err(_) => assert!(Instant::now() < deadline, "batches never arrived"),
            }
        }
        assert_eq!(handle.processed_counter().get(), 10);
        shutdown.signal();
        thread.join().unwrap();
    }
}
