//! The queues stage (§6.2): causal `LId` assignment under the token.
//!
//! "Queues are responsible for assigning LIds to the records. … Once a
//! group of records have their causal dependencies satisfied, they are
//! assigned LIds and sent to the appropriate log maintainer for
//! persistence. … The queue holding the token appends all the records that
//! can be added to the log … the token is sent to the next [queue] in a
//! round-robin fashion."
//!
//! Adding a queue at runtime (§6.3) "involves two tasks: making the new
//! queue part of the token exchange loop and propagating the information
//! of its addition to filters". The first is the swappable `next_queue`
//! slot below; the second needs no coordination "because a queue can
//! receive any record" — filters just see a longer ingress list.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chariots_simnet::{Counter, Notify, ServiceStation, Shutdown, StageTracer};
use chariots_types::{DatacenterId, Entry, MaintainerId, Record, RecordId};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};

use chariots_flstore::{Controller, ReplicaGroupHandle};

use crate::atable::ATable;
use crate::message::{Incoming, LocalAppend};
use crate::stages::StageHealth;
use crate::token::Token;

/// The synchronous assignment logic of one queue.
#[derive(Debug)]
pub struct QueueCore {
    dc: DatacenterId,
    /// Records staged here while the token is elsewhere.
    staged: Vec<Incoming>,
    /// Deferred records parked *at this queue* when the deployment's
    /// token-carries-deferred policy is off (ablation A3).
    parked: BTreeMap<RecordId, Record>,
    parked_local: Vec<LocalAppend>,
    carries_deferred: bool,
}

impl QueueCore {
    /// A queue for datacenter `dc`.
    pub fn new(dc: DatacenterId, carries_deferred: bool) -> Self {
        QueueCore {
            dc,
            staged: Vec::new(),
            parked: BTreeMap::new(),
            parked_local: Vec::new(),
            carries_deferred,
        }
    }

    /// Stages records for the next token visit.
    pub fn stage(&mut self, records: Vec<Incoming>) {
        self.staged.extend(records);
    }

    /// Records waiting for the token.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Records parked here with unsatisfied dependencies.
    pub fn parked_len(&self) -> usize {
        self.parked.len() + self.parked_local.len()
    }

    /// Processes everything processable while holding the token: assigns
    /// `(TOId, LId)` to ready records, sends client replies, and returns
    /// the entries to persist. Unsatisfied records move to the token (or
    /// stay parked here, per policy).
    pub fn process(&mut self, token: &mut Token) -> Vec<Entry> {
        let mut out = Vec::new();

        // Pull everything parked on the token into our working set.
        let mut ext: BTreeMap<RecordId, Record> = std::mem::take(&mut token.deferred);
        ext.append(&mut self.parked);
        let mut locals: Vec<LocalAppend> = std::mem::take(&mut token.deferred_local);
        locals.append(&mut self.parked_local);

        // Stage the new arrivals.
        for inc in self.staged.drain(..) {
            match inc {
                Incoming::External(r) => {
                    if !token.is_duplicate(&r) {
                        ext.entry(r.id).or_insert(r);
                    }
                }
                Incoming::Local(l) => locals.push(l),
            }
        }

        // Fixed point: applying one record can unblock others.
        loop {
            let mut progress = false;

            // External records in (host, TOId) order — the order they can
            // possibly apply in.
            let ready: Vec<RecordId> = ext
                .values()
                .filter(|r| token.can_apply(r))
                .map(|r| r.id)
                .collect();
            for id in ready {
                let Some(r) = ext.get(&id) else { continue };
                if !token.can_apply(r) {
                    continue;
                }
                let r = ext.remove(&id).expect("present");
                let lid = token.assign_external(&r);
                out.push(Entry::new(lid, r));
                progress = true;
            }

            // Local appends whose client context is satisfied.
            let mut still_waiting = Vec::new();
            for l in locals.drain(..) {
                if token.applied.dominates(&l.deps) {
                    let (toid, lid) = token.assign_local(self.dc);
                    let record = Record::new(RecordId::new(self.dc, toid), l.deps, l.tags, l.body)
                        .with_trace(l.trace);
                    if let Some(reply) = l.reply {
                        let _ = reply.send((toid, lid));
                    }
                    out.push(Entry::new(lid, record));
                    progress = true;
                } else {
                    still_waiting.push(l);
                }
            }
            locals = still_waiting;

            if !progress {
                break;
            }
        }

        // Park the rest — on the token or here, per policy.
        if self.carries_deferred {
            token.deferred = ext;
            token.deferred_local = locals;
        } else {
            self.parked = ext;
            self.parked_local = locals;
        }
        out
    }

    /// Moves everything parked *at this queue* onto the token, regardless
    /// of the carries-deferred policy. Used by drain-and-retire: a queue
    /// leaving the ring must not strand records with unmet dependencies —
    /// the token carries them to the surviving queues.
    pub fn evict_onto(&mut self, token: &mut Token) {
        token.deferred.append(&mut self.parked);
        token.deferred_local.append(&mut self.parked_local);
    }
}

/// Routes assigned entries to their owning maintainer groups and stores
/// them. The group handle picks a live replica, so a crashed primary does
/// not swallow entries whose positions the token already committed.
pub fn route_entries(
    entries: Vec<Entry>,
    controller: &Controller,
    maintainers: &[ReplicaGroupHandle],
) {
    if entries.is_empty() {
        return;
    }
    let journal = controller.journal();
    let mut per_maintainer: HashMap<MaintainerId, Vec<Entry>> = HashMap::new();
    for entry in entries {
        let owner = journal.owner_of(entry.lid);
        per_maintainer.entry(owner).or_default().push(entry);
    }
    for (owner, batch) in per_maintainer {
        if let Some(handle) = maintainers.get(owner.index()) {
            handle.store(batch);
        }
    }
}

/// Producer-side ingress to a queue: sending notes the arrival at the
/// queue's station so backlog drives its overload model.
#[derive(Clone)]
pub struct QueueIngress {
    tx: Sender<Vec<Incoming>>,
    station: Arc<ServiceStation>,
    tracer: StageTracer,
    /// When set, `send` ships the batch over TCP to this queue's loopback
    /// listener; the listener feeds `tx` raw, so station accounting stays
    /// on the sending side either way.
    wire: Option<Arc<chariots_simnet::TcpSender>>,
}

impl QueueIngress {
    /// Enqueues a batch of releasable records. A traced record's queue
    /// span starts here, so it includes the wait for the token.
    pub fn send(&self, batch: Vec<Incoming>) -> bool {
        self.station.note_arrival(batch.len() as u64);
        for record in &batch {
            self.tracer.enter(record.trace());
        }
        match &self.wire {
            Some(wire) => wire.send(&batch).is_ok(),
            None => self.tx.send(batch).is_ok(),
        }
    }

    /// Exposes this queue over TCP: a loopback listener feeds the same
    /// channel, and the returned ingress clone sends through a pooled
    /// socket (one serialization per batch).
    pub fn via_tcp(
        &self,
        name: &str,
        shutdown: Shutdown,
        metrics: chariots_simnet::TransportMetrics,
    ) -> std::io::Result<QueueIngress> {
        let tx = self.tx.clone();
        let addr = chariots_simnet::spawn_wire_listener(
            name,
            shutdown,
            metrics.clone(),
            move |batch: Vec<Incoming>| {
                let _ = tx.send(batch);
            },
        )?;
        let mut wired = self.clone();
        wired.wire = Some(Arc::new(chariots_simnet::TcpSender::new(addr, metrics)));
        Ok(wired)
    }

    /// The queue machine's capacity model.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }
}

/// Drain-and-retire coordination between a queue's handle and its loop.
#[derive(Clone)]
struct RetireState {
    /// Set by the actuator: stop accepting that new work will arrive and
    /// start evicting parked records onto the token.
    retiring: Arc<AtomicBool>,
    /// Set by the loop while holding the token: channel, staged set, and
    /// parked set are all empty — nothing is stranded here anymore.
    drained: Arc<AtomicBool>,
    /// Per-node stop (distinct from deployment shutdown): signalled once
    /// the ring is unspliced; the loop forwards any straggler tokens and
    /// exits.
    stop: Shutdown,
}

impl RetireState {
    fn new() -> Self {
        RetireState {
            retiring: Arc::new(AtomicBool::new(false)),
            drained: Arc::new(AtomicBool::new(false)),
            stop: Shutdown::new(),
        }
    }
}

/// Handle to a queue node.
#[derive(Clone)]
pub struct QueueHandle {
    records_tx: Sender<Vec<Incoming>>,
    token_tx: Sender<Token>,
    next_queue: Arc<Mutex<Sender<Token>>>,
    station: Arc<ServiceStation>,
    processed: Counter,
    tracer: StageTracer,
    retire: RetireState,
}

impl QueueHandle {
    /// A producer-side ingress (notes arrivals at this queue's station).
    pub fn ingress(&self) -> QueueIngress {
        QueueIngress {
            tx: self.records_tx.clone(),
            station: Arc::clone(&self.station),
            tracer: self.tracer.clone(),
            wire: None,
        }
    }

    /// Injects the token (deployment wiring: exactly one token exists).
    pub fn inject_token(&self, token: Token) {
        let _ = self.token_tx.send(token);
    }

    /// The sender other queues use to pass the token to this queue.
    pub fn token_sender(&self) -> Sender<Token> {
        self.token_tx.clone()
    }

    /// Re-points this queue's token forwarding — the ring-insertion step
    /// of adding a queue (§6.3: "informing one of the queues that it
    /// should forward the token to the new queue rather than the original
    /// neighbor").
    pub fn set_next(&self, next: Sender<Token>) {
        *self.next_queue.lock() = next;
    }

    /// Records assigned by this queue (bench instrumentation).
    pub fn processed_counter(&self) -> Counter {
        self.processed.clone()
    }

    /// The machine's capacity model.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }

    /// Starts drain-and-retire. The caller must already have removed this
    /// queue's ingress from the shared list (the admission barrier) — from
    /// here on the loop evicts parked records onto the token and reports
    /// [`is_drained`](Self::is_drained) once nothing is left on this node.
    pub fn begin_retire(&self) {
        self.retire.retiring.store(true, Ordering::SeqCst);
    }

    /// Aborts an in-progress retire (drain deadline missed). The loop
    /// clears its drained flag on the next token visit and the node keeps
    /// serving.
    pub fn cancel_retire(&self) {
        self.retire.retiring.store(false, Ordering::SeqCst);
    }

    /// Whether the node has confirmed — while holding the token — that its
    /// channel, staged set, and parked set are all empty.
    pub fn is_drained(&self) -> bool {
        self.retire.drained.load(Ordering::SeqCst)
    }

    /// Final retire step, after the ring has been unspliced around this
    /// node: the loop forwards any straggler tokens and exits, so the
    /// caller can join the thread.
    pub fn finish_retire(&self) {
        self.retire.stop.signal();
    }
}

/// Everything a queue node needs to do its job.
pub struct QueueNodeConfig {
    /// This datacenter.
    pub dc: DatacenterId,
    /// Token-carries-deferred policy (ablation A3).
    pub carries_deferred: bool,
    /// The FLStore controller, for routing journal lookups.
    pub controller: Controller,
    /// Maintainer replica-group handles for persistence (shared registry:
    /// FLStore expansion appends to it live).
    pub maintainers: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
    /// Shared ATable: row `dc` is refreshed from the token's applied cut.
    pub atable: Arc<RwLock<ATable>>,
    /// Where to pass the token next (swappable for ring insertion).
    pub next_queue: Arc<Mutex<Sender<Token>>>,
    /// Idle pause before passing on a token that found no work.
    pub idle_pause: Duration,
    /// Queue-stage tracer: entered at ingress, exited when an entry is
    /// assigned and routed to a maintainer.
    pub tracer: StageTracer,
    /// Store-stage tracer: a record's store span starts when the queue
    /// hands it to a maintainer and ends when the maintainer persists it.
    pub store_tracer: StageTracer,
    /// Signalled after this queue routes newly assigned entries to the
    /// maintainers — the "new local records exist" edge that wakes the
    /// senders for an immediate propagation round.
    pub sender_wakeup: Notify,
    /// Health gauges: inbound channel depth and records held (staged for
    /// the next token visit plus parked with unmet dependencies).
    pub health: StageHealth,
}

/// Spawns a queue node. The caller supplies the token channel pair so the
/// round-robin ring can be wired before any queue runs: queue *i* receives
/// on its own channel and `cfg.next_queue` points at queue *i+1*'s sender.
pub fn spawn_queue(
    cfg: QueueNodeConfig,
    token_channel: (Sender<Token>, Receiver<Token>),
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
) -> (QueueHandle, JoinHandle<()>) {
    let (records_tx, records_rx) = unbounded::<Vec<Incoming>>();
    let (token_tx, token_rx) = token_channel;
    let processed = Counter::new();
    let retire = RetireState::new();
    let handle = QueueHandle {
        records_tx,
        token_tx,
        next_queue: Arc::clone(&cfg.next_queue),
        station: Arc::clone(&station),
        processed: processed.clone(),
        tracer: cfg.tracer.clone(),
        retire: retire.clone(),
    };
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            queue_loop(
                cfg,
                &records_rx,
                &token_rx,
                &station,
                &shutdown,
                &processed,
                &retire,
            )
        })
        .expect("spawn queue");
    (handle, thread)
}

fn queue_loop(
    cfg: QueueNodeConfig,
    records_rx: &Receiver<Vec<Incoming>>,
    token_rx: &Receiver<Token>,
    station: &ServiceStation,
    shutdown: &Shutdown,
    processed: &Counter,
    retire: &RetireState,
) {
    let mut core = QueueCore::new(cfg.dc, cfg.carries_deferred);
    let pass_token = |token: Token| cfg.next_queue.lock().send(token).is_ok();
    loop {
        if shutdown.is_signaled() {
            return;
        }
        if retire.stop.is_signaled() {
            // Retired: the ring is already unspliced around this node, so
            // no further tokens will be addressed here — but one may still
            // sit in the channel. Forward stragglers so the deployment's
            // single token survives, then exit.
            while let Ok(token) = token_rx.try_recv() {
                let _ = pass_token(token);
            }
            cfg.health.depth.set(0);
            cfg.health.occupancy.set(0);
            return;
        }
        cfg.health.depth.set(records_rx.len() as i64);
        cfg.health
            .occupancy
            .set((core.staged_len() + core.parked_len()) as i64);
        // Stage any waiting records (non-blocking), paying their machine
        // cost NOW — while this queue does *not* hold the token. The
        // per-record work (staging, buffering, building batches) is what a
        // queue machine spends its time on; only the LId assignment itself
        // is serialized by the token, so queue machines scale out (§6.2,
        // Table 5).
        let mut crashed = false;
        loop {
            match records_rx.try_recv() {
                Ok(batch) => {
                    let n = batch.len() as u64;
                    core.stage(batch);
                    if station.serve(n).is_err() {
                        crashed = true;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        // Wait briefly for the token.
        let mut token = match token_rx.recv_timeout(Duration::from_millis(5)) {
            Ok(t) => t,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        if crashed || station.is_crashed() {
            // Crashed: pass the token straight on so the ring survives (a
            // real deployment would re-mint it via the controller).
            let _ = pass_token(token);
            continue;
        }

        let staged = core.staged_len() as u64;
        let entries = core.process(&mut token);
        let assigned = entries.len() as u64;
        processed.add(assigned);
        for e in &entries {
            // The queue span ends at assignment; the store span opens as
            // the entry leaves for its maintainer.
            cfg.tracer.exit(e.record.trace);
            cfg.store_tracer.enter(e.record.trace);
        }
        route_entries(entries, &cfg.controller, &cfg.maintainers.read());
        if retire.retiring.load(Ordering::SeqCst) {
            // Draining: the ingress is already gone, so the channel only
            // shrinks. Push anything parked here onto the token and report
            // drained once this node holds no records at all — judged
            // while holding the token, so the verdict cannot race an
            // assignment.
            core.evict_onto(&mut token);
            let empty = records_rx.is_empty() && core.staged_len() == 0 && core.parked_len() == 0;
            retire.drained.store(empty, Ordering::SeqCst);
        } else if retire.drained.load(Ordering::SeqCst) {
            // A cancelled retire leaves no stale verdict behind.
            retire.drained.store(false, Ordering::SeqCst);
        }
        cfg.atable.write().merge_row(cfg.dc, &token.applied);
        if assigned > 0 {
            // New local records are on their way to the maintainers: wake
            // the senders so propagation starts now, not at the next
            // heartbeat. Coalesces, so a busy ring costs one signal per
            // sender round at most.
            cfg.sender_wakeup.notify();
        }
        token.passes += 1;

        if assigned == 0 && staged == 0 && !cfg.idle_pause.is_zero() {
            // Nothing to do: rest before passing the token on, so a quiet
            // single-queue deployment doesn't spin.
            std::thread::sleep(cfg.idle_pause);
        }
        if !pass_token(token) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chariots_types::{LId, TOId, TagSet, VersionVector};

    fn record(host: u16, toid: u64, deps: Vec<u64>) -> Record {
        Record::new(
            RecordId::new(DatacenterId(host), TOId(toid)),
            VersionVector::from_entries(deps.into_iter().map(TOId).collect()),
            TagSet::new(),
            Bytes::new(),
        )
    }

    fn local(deps: Vec<u64>) -> LocalAppend {
        LocalAppend {
            tags: TagSet::new(),
            body: Bytes::new(),
            deps: VersionVector::from_entries(deps.into_iter().map(TOId).collect()),
            reply: None,
            trace: None,
        }
    }

    #[test]
    fn ready_records_are_assigned_in_causal_order() {
        let mut q = QueueCore::new(DatacenterId(0), true);
        let mut token = Token::new(2);
        // Deliver host 1's records out of order.
        q.stage(vec![
            Incoming::External(record(1, 2, vec![0, 1])),
            Incoming::External(record(1, 1, vec![0, 0])),
        ]);
        let entries = q.process(&mut token);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].record.toid(), TOId(1));
        assert_eq!(entries[0].lid, LId(0));
        assert_eq!(entries[1].record.toid(), TOId(2));
        assert_eq!(entries[1].lid, LId(1));
        assert_eq!(token.deferred_len(), 0);
    }

    #[test]
    fn unsatisfied_records_ride_the_token() {
        let mut q = QueueCore::new(DatacenterId(0), true);
        let mut token = Token::new(2);
        q.stage(vec![Incoming::External(record(1, 2, vec![0, 1]))]);
        let entries = q.process(&mut token);
        assert!(entries.is_empty());
        assert_eq!(token.deferred.len(), 1, "parked on the token");
        // A second queue later receives the missing dependency.
        let mut q2 = QueueCore::new(DatacenterId(0), true);
        q2.stage(vec![Incoming::External(record(1, 1, vec![0, 0]))]);
        let entries = q2.process(&mut token);
        assert_eq!(entries.len(), 2, "token-carried record applied too");
    }

    #[test]
    fn parked_locally_when_policy_off() {
        let mut q = QueueCore::new(DatacenterId(0), false);
        let mut token = Token::new(2);
        q.stage(vec![Incoming::External(record(1, 2, vec![0, 1]))]);
        q.process(&mut token);
        assert_eq!(token.deferred_len(), 0, "token travels light");
        assert_eq!(q.parked_len(), 1);
        // The dependency arrives at *this* queue on a later pass.
        q.stage(vec![Incoming::External(record(1, 1, vec![0, 0]))]);
        let entries = q.process(&mut token);
        assert_eq!(entries.len(), 2);
        assert_eq!(q.parked_len(), 0);
    }

    #[test]
    fn local_appends_get_toid_and_reply() {
        let mut q = QueueCore::new(DatacenterId(0), true);
        let mut token = Token::new(2);
        let (reply_tx, reply_rx) = unbounded();
        q.stage(vec![Incoming::Local(LocalAppend {
            reply: Some(chariots_simnet::ReplyTo::local(reply_tx)),
            ..local(vec![0, 0])
        })]);
        let entries = q.process(&mut token);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].record.host(), DatacenterId(0));
        assert_eq!(reply_rx.try_recv().unwrap(), (TOId(1), LId(0)));
        assert_eq!(token.applied.get(DatacenterId(0)), TOId(1));
    }

    #[test]
    fn local_append_waits_for_its_context() {
        let mut q = QueueCore::new(DatacenterId(0), true);
        let mut token = Token::new(2);
        // Client observed host 1's record 1, which is not in the log yet.
        q.stage(vec![Incoming::Local(local(vec![0, 1]))]);
        assert!(q.process(&mut token).is_empty());
        assert_eq!(token.deferred_local.len(), 1);
        // The dependency arrives; both apply, dependency first.
        q.stage(vec![Incoming::External(record(1, 1, vec![0, 0]))]);
        let entries = q.process(&mut token);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].record.host(), DatacenterId(1));
        assert_eq!(entries[1].record.host(), DatacenterId(0));
    }

    #[test]
    fn duplicate_externals_are_dropped() {
        let mut q = QueueCore::new(DatacenterId(0), true);
        let mut token = Token::new(2);
        q.stage(vec![Incoming::External(record(1, 1, vec![0, 0]))]);
        assert_eq!(q.process(&mut token).len(), 1);
        // The same record arrives again (filter restarted, link duplicated…).
        q.stage(vec![Incoming::External(record(1, 1, vec![0, 0]))]);
        assert!(
            q.process(&mut token).is_empty(),
            "exactly-once at the queue"
        );
        // And a duplicate of a *deferred* record collapses too.
        q.stage(vec![
            Incoming::External(record(1, 3, vec![0, 2])),
            Incoming::External(record(1, 3, vec![0, 2])),
        ]);
        q.process(&mut token);
        assert_eq!(token.deferred.len(), 1);
    }

    #[test]
    fn cross_host_causality_is_enforced() {
        // Host 1's record depends on host 0's record 1.
        let mut q = QueueCore::new(DatacenterId(2), true);
        let mut token = Token::new(3);
        q.stage(vec![Incoming::External(record(1, 1, vec![1, 0, 0]))]);
        assert!(q.process(&mut token).is_empty(), "cause missing");
        q.stage(vec![Incoming::External(record(0, 1, vec![0, 0, 0]))]);
        let entries = q.process(&mut token);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].record.host(), DatacenterId(0), "cause first");
        assert_eq!(entries[1].record.host(), DatacenterId(1));
    }
}
