//! The filters stage (§6.2): exactly-once incorporation.
//!
//! "The Filters ensure uniqueness of records. … each Filter becomes a
//! champion for a subset of the records," normally the records of one host
//! datacenter; with more filters than datacenters, a host's records are
//! split by TOId parity ("x can be responsible for A's records with odd
//! TOIds and y … with even TOIds"). "The processing agent maintains a
//! counter of the next expected TOId. When the next expected record arrives
//! it is added to the batch to be sent to one of the Queues."
//!
//! Filter championing is governed by the shared
//! [`RoutingPlan`](crate::routing_plan::RoutingPlan), whose epochs realize
//! §6.3's *future reassignment*: a filter keeps per-`(host, epoch)`
//! champion state, so an old filter drains its pre-boundary records while a
//! newly added filter picks up its share from the boundary onward.
//!
//! Filters are a *scalable pre-filter*: they drop duplicates and release
//! each host's records in TOId order without any filter-to-filter
//! communication. The queues' token re-checks applicability, so even
//! records misrouted during an elastic reassignment cannot violate
//! exactly-once.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chariots_simnet::{Counter, ServiceStation, Shutdown, StageTracer};
use chariots_types::{DatacenterId, Record, TOId};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;

use crate::message::Incoming;
use crate::routing_plan::RoutingPlan;
use crate::stages::StageHealth;

/// Deterministic record→filter striping for one routing epoch.
///
/// * `F ≤ D` (filters ≤ datacenters): host `h` → filter `h mod F`.
/// * `F > D`: host `h` is championed by the filters `{h mod D, h mod D + D,
///   …}`; among them the record's TOId picks one (`toid mod k`), realizing
///   the paper's odd/even split for `k = 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterRouting {
    num_filters: usize,
    num_datacenters: usize,
}

impl FilterRouting {
    /// Creates a routing for the deployment shape.
    pub fn new(num_filters: usize, num_datacenters: usize) -> Self {
        assert!(num_filters > 0 && num_datacenters > 0);
        FilterRouting {
            num_filters,
            num_datacenters,
        }
    }

    /// Number of filters.
    pub fn num_filters(&self) -> usize {
        self.num_filters
    }

    /// The filter championing record `(host, toid)`.
    pub fn filter_for(&self, host: DatacenterId, toid: TOId) -> usize {
        let f = self.num_filters;
        let d = self.num_datacenters;
        if f <= d {
            host.index() % f
        } else {
            let base = host.index() % d;
            // How many filters champion this base slot.
            let k = f / d + usize::from(base < f % d);
            let pick = (toid.0 as usize) % k;
            base + pick * d
        }
    }

    /// The TOId stride and offset a filter uses for host `host`'s
    /// next-expected counter, or `None` if this filter never sees that
    /// host's records.
    pub fn stride_for(&self, filter: usize, host: DatacenterId) -> Option<(u64, u64)> {
        let f = self.num_filters;
        let d = self.num_datacenters;
        if f <= d {
            (host.index() % f == filter).then_some((1, 1))
        } else {
            let base = host.index() % d;
            if filter % d != base {
                return None;
            }
            let k = (f / d + usize::from(base < f % d)) as u64;
            let pick = (filter - base) / d;
            // TOIds championed: toid ≡ pick (mod k); the smallest ≥ 1.
            let first = if pick == 0 { k } else { pick as u64 };
            Some((k, first))
        }
    }
}

/// Per-`(host, epoch)` exactly-once state within one filter.
#[derive(Debug)]
struct HostChampion {
    /// Next TOId this filter expects from the host within its stride.
    next_expected: TOId,
    /// TOId distance between consecutive championed records.
    stride: u64,
    /// Out-of-order arrivals waiting for the expected record.
    reorder: BTreeMap<TOId, Record>,
}

/// The synchronous state of one filter.
#[derive(Debug)]
pub struct FilterCore {
    index: usize,
    plan: Arc<RwLock<RoutingPlan>>,
    champions: HashMap<(DatacenterId, usize), HostChampion>,
    /// Bound on each champion's reorder buffer; beyond it, new out-of-order
    /// entries are dropped (they will be re-propagated — the ATable loop is
    /// the source of reliability, the filter buffer is an optimization).
    max_reorder: usize,
    /// Shared so the bench harness can watch duplicate arrivals live (the
    /// WAN duplicate ratio of the geo experiment).
    duplicates_dropped: Counter,
}

impl FilterCore {
    /// Filter `index` under the shared routing plan.
    pub fn new(index: usize, plan: Arc<RwLock<RoutingPlan>>) -> Self {
        FilterCore {
            index,
            plan,
            champions: HashMap::new(),
            max_reorder: 65_536,
            duplicates_dropped: Counter::new(),
        }
    }

    /// Convenience: a filter under a single-epoch plan (tests, static
    /// deployments).
    pub fn with_routing(index: usize, routing: FilterRouting) -> Self {
        FilterCore::new(index, Arc::new(RwLock::new(RoutingPlan::new(routing))))
    }

    /// Bounds the per-champion reorder buffer.
    pub fn with_max_reorder(mut self, max: usize) -> Self {
        self.max_reorder = max;
        self
    }

    /// Duplicates dropped so far.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped.get()
    }

    /// A live handle to the duplicates-dropped counter (survives the core
    /// moving into its node thread).
    pub fn duplicates_counter(&self) -> Counter {
        self.duplicates_dropped.clone()
    }

    /// Records parked in reorder buffers.
    pub fn reordering(&self) -> usize {
        self.champions.values().map(|c| c.reorder.len()).sum()
    }

    /// Ingests one record, returning everything now releasable in order.
    ///
    /// Local records pass through untouched (they have no identity yet and
    /// need no dedup). External records are deduplicated and released in
    /// per-host TOId order within their routing epoch.
    pub fn ingest(&mut self, record: Incoming) -> Vec<Incoming> {
        let external = match record {
            Incoming::Local(_) => return vec![record],
            Incoming::External(r) => r,
        };
        let host = external.host();
        let toid = external.toid();
        let (epoch_idx, stride_first) = {
            let plan = self.plan.read();
            let e = plan.epoch_for(toid);
            (e, plan.stride_in_epoch(e, self.index, host))
        };
        let Some((stride, first)) = stride_first else {
            // Misrouted during a reassignment window: forward unchanged;
            // the queue's token enforces order and exactly-once anyway.
            return vec![Incoming::External(external)];
        };
        let max_reorder = self.max_reorder;
        let champ = self
            .champions
            .entry((host, epoch_idx))
            .or_insert_with(|| HostChampion {
                next_expected: TOId(first),
                stride,
                reorder: BTreeMap::new(),
            });
        if toid < champ.next_expected {
            self.duplicates_dropped.add(1);
            return Vec::new();
        }
        if toid == champ.next_expected {
            let mut out = Vec::with_capacity(1);
            champ.next_expected = TOId(champ.next_expected.0 + champ.stride);
            out.push(Incoming::External(external));
            // Drain the reorder buffer while it continues the sequence.
            while let Some(entry) = champ.reorder.first_entry() {
                if *entry.key() == champ.next_expected {
                    champ.next_expected = TOId(champ.next_expected.0 + champ.stride);
                    out.push(Incoming::External(entry.remove()));
                } else {
                    break;
                }
            }
            return out;
        }
        // Future record: park it (duplicates collapse on the key).
        if champ.reorder.len() < max_reorder && champ.reorder.insert(toid, external).is_some() {
            self.duplicates_dropped.add(1);
        }
        Vec::new()
    }
}

/// Producer-side ingress to a filter: sending notes the arrival at the
/// filter's station so its backlog (and overload model) reflects queued
/// work, like bytes sitting in a real machine's socket buffer.
#[derive(Clone)]
pub struct FilterIngress {
    tx: Sender<Vec<Incoming>>,
    station: Arc<ServiceStation>,
    tracer: StageTracer,
    /// When set, `send` ships the batch over TCP to this filter's loopback
    /// listener; the listener feeds `tx` raw, so station accounting stays
    /// on the sending side either way.
    wire: Option<Arc<chariots_simnet::TcpSender>>,
}

impl FilterIngress {
    /// Builds an ingress from raw parts (tests and custom wiring).
    pub fn from_parts(
        tx: Sender<Vec<Incoming>>,
        station: Arc<ServiceStation>,
        tracer: StageTracer,
    ) -> Self {
        FilterIngress {
            tx,
            station,
            tracer,
            wire: None,
        }
    }

    /// Enqueues a batch. Returns false when the filter is gone. A traced
    /// record's filter span starts here, so it includes channel wait and
    /// any time parked in the reorder buffer.
    pub fn send(&self, batch: Vec<Incoming>) -> bool {
        self.station.note_arrival(batch.len() as u64);
        for record in &batch {
            self.tracer.enter(record.trace());
        }
        match &self.wire {
            Some(wire) => wire.send(&batch).is_ok(),
            None => self.tx.send(batch).is_ok(),
        }
    }

    /// Exposes this filter over TCP: a loopback listener feeds the same
    /// channel, and the returned ingress clone sends through a pooled
    /// socket (one serialization per batch).
    pub fn via_tcp(
        &self,
        name: &str,
        shutdown: chariots_simnet::Shutdown,
        metrics: chariots_simnet::TransportMetrics,
    ) -> std::io::Result<FilterIngress> {
        let tx = self.tx.clone();
        let addr = chariots_simnet::spawn_wire_listener(
            name,
            shutdown,
            metrics.clone(),
            move |batch: Vec<Incoming>| {
                let _ = tx.send(batch);
            },
        )?;
        let mut wired = self.clone();
        wired.wire = Some(Arc::new(chariots_simnet::TcpSender::new(addr, metrics)));
        Ok(wired)
    }

    /// The filter machine's capacity model.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }
}

/// Handle to a filter node.
#[derive(Clone)]
pub struct FilterHandle {
    tx: Sender<Vec<Incoming>>,
    station: Arc<ServiceStation>,
    processed: Counter,
    duplicates: Counter,
    tracer: StageTracer,
}

impl FilterHandle {
    /// A producer-side ingress (notes arrivals at this filter's station).
    pub fn ingress(&self) -> FilterIngress {
        FilterIngress {
            tx: self.tx.clone(),
            station: Arc::clone(&self.station),
            tracer: self.tracer.clone(),
            wire: None,
        }
    }

    /// Records processed (bench instrumentation).
    pub fn processed_counter(&self) -> Counter {
        self.processed.clone()
    }

    /// Duplicates this filter has dropped (bench instrumentation — the
    /// numerator of the WAN duplicate ratio).
    pub fn duplicates_counter(&self) -> Counter {
        self.duplicates.clone()
    }

    /// The machine's capacity model.
    pub fn station(&self) -> Arc<ServiceStation> {
        Arc::clone(&self.station)
    }
}

/// Spawns a filter node: drains batches, dedupes/orders them, and forwards
/// releasable records round-robin to the (dynamically growable) queue
/// fleet ("sent to one of the Queues").
pub fn spawn_filter(
    core: FilterCore,
    queues: Arc<RwLock<Vec<crate::stages::queue::QueueIngress>>>,
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
    tracer: StageTracer,
    health: StageHealth,
) -> (FilterHandle, JoinHandle<()>) {
    let (tx, rx) = unbounded::<Vec<Incoming>>();
    let processed = Counter::new();
    let handle = FilterHandle {
        tx,
        station: Arc::clone(&station),
        processed: processed.clone(),
        duplicates: core.duplicates_counter(),
        tracer: tracer.clone(),
    };
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            filter_loop(
                core, &rx, &queues, &station, &shutdown, &processed, &tracer, &health,
            )
        })
        .expect("spawn filter");
    (handle, thread)
}

#[allow(clippy::too_many_arguments)]
fn filter_loop(
    mut core: FilterCore,
    rx: &Receiver<Vec<Incoming>>,
    queues: &RwLock<Vec<crate::stages::queue::QueueIngress>>,
    station: &ServiceStation,
    shutdown: &Shutdown,
    processed: &Counter,
    tracer: &StageTracer,
    health: &StageHealth,
) {
    let mut rr = 0usize;
    loop {
        if shutdown.is_signaled() {
            return;
        }
        health.depth.set(rx.len() as i64);
        // Occupancy: records parked in reorder buffers, waiting for their
        // predecessor — the early-warning signal for WAN reordering storms.
        health.occupancy.set(core.reordering() as i64);
        let batch = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(b) => b,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let n = batch.len() as u64;
        if station.serve(n).is_err() {
            continue; // crashed: batch lost; the ATable loop re-propagates
        }
        processed.add(n);
        let mut out = Vec::with_capacity(batch.len());
        for record in batch {
            out.extend(core.ingest(record));
        }
        if !out.is_empty() {
            // The filter span ends as releasable records leave for a
            // queue — including records just released from reorder.
            for record in &out {
                tracer.exit(record.trace());
            }
            let queues = queues.read();
            if queues.is_empty() {
                continue;
            }
            rr = (rr + 1) % queues.len();
            queues[rr].send(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chariots_types::{RecordId, TagSet, VersionVector};

    fn record(host: u16, toid: u64) -> Record {
        Record::new(
            RecordId::new(DatacenterId(host), TOId(toid)),
            VersionVector::new(2),
            TagSet::new(),
            Bytes::new(),
        )
    }

    fn toids(out: &[Incoming]) -> Vec<u64> {
        out.iter()
            .map(|i| match i {
                Incoming::External(r) => r.toid().0,
                Incoming::Local(_) => panic!("expected external"),
            })
            .collect()
    }

    #[test]
    fn routing_with_fewer_filters_than_dcs_wraps() {
        let r = FilterRouting::new(2, 5);
        assert_eq!(r.filter_for(DatacenterId(0), TOId(1)), 0);
        assert_eq!(r.filter_for(DatacenterId(1), TOId(1)), 1);
        assert_eq!(r.filter_for(DatacenterId(2), TOId(1)), 0);
        assert_eq!(r.stride_for(0, DatacenterId(2)), Some((1, 1)));
        assert_eq!(r.stride_for(1, DatacenterId(2)), None);
    }

    #[test]
    fn routing_with_more_filters_splits_by_toid() {
        // 4 filters, 2 DCs: host 0 → filters {0, 2}, host 1 → {1, 3}.
        let r = FilterRouting::new(4, 2);
        let f1 = r.filter_for(DatacenterId(0), TOId(1));
        let f2 = r.filter_for(DatacenterId(0), TOId(2));
        assert_ne!(f1, f2, "consecutive TOIds alternate filters");
        assert!(f1 % 2 == 0 && f2 % 2 == 0, "host 0's filters are even");
        // Strides: each of host 0's filters sees every 2nd TOId.
        let (stride, first0) = r.stride_for(0, DatacenterId(0)).unwrap();
        let (_, first2) = r.stride_for(2, DatacenterId(0)).unwrap();
        assert_eq!(stride, 2);
        let mut firsts = vec![first0, first2];
        firsts.sort_unstable();
        assert_eq!(firsts, vec![1, 2], "between them they cover all TOIds");
    }

    #[test]
    fn routing_and_stride_agree() {
        // Every record must be routed to a filter whose championed TOId
        // sequence contains it.
        for (f, d) in [(1, 3), (3, 3), (4, 2), (5, 2), (6, 4)] {
            let r = FilterRouting::new(f, d);
            for host in 0..d as u16 {
                for toid in 1..=40u64 {
                    let target = r.filter_for(DatacenterId(host), TOId(toid));
                    let (stride, first) = r
                        .stride_for(target, DatacenterId(host))
                        .expect("routed filter champions the host");
                    assert!(
                        toid >= first && (toid - first) % stride == 0,
                        "F={f} D={d} host={host} toid={toid} → filter {target} \
                         (stride {stride}, first {first})"
                    );
                }
            }
        }
    }

    #[test]
    fn in_order_records_pass_immediately() {
        let mut f = FilterCore::with_routing(0, FilterRouting::new(1, 2));
        assert_eq!(toids(&f.ingest(Incoming::External(record(0, 1)))), vec![1]);
        assert_eq!(toids(&f.ingest(Incoming::External(record(0, 2)))), vec![2]);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut f = FilterCore::with_routing(0, FilterRouting::new(1, 2));
        f.ingest(Incoming::External(record(0, 1)));
        assert!(f.ingest(Incoming::External(record(0, 1))).is_empty());
        assert_eq!(f.duplicates_dropped(), 1);
    }

    #[test]
    fn out_of_order_records_release_in_order() {
        let mut f = FilterCore::with_routing(0, FilterRouting::new(1, 2));
        assert!(f.ingest(Incoming::External(record(0, 3))).is_empty());
        assert!(f.ingest(Incoming::External(record(0, 2))).is_empty());
        assert_eq!(f.reordering(), 2);
        let out = f.ingest(Incoming::External(record(0, 1)));
        assert_eq!(toids(&out), vec![1, 2, 3]);
        assert_eq!(f.reordering(), 0);
    }

    #[test]
    fn buffered_duplicate_collapses() {
        let mut f = FilterCore::with_routing(0, FilterRouting::new(1, 2));
        f.ingest(Incoming::External(record(0, 2)));
        f.ingest(Incoming::External(record(0, 2)));
        assert_eq!(f.duplicates_dropped(), 1);
        let out = f.ingest(Incoming::External(record(0, 1)));
        assert_eq!(toids(&out), vec![1, 2]);
    }

    #[test]
    fn hosts_are_independent() {
        let mut f = FilterCore::with_routing(0, FilterRouting::new(1, 2));
        assert_eq!(toids(&f.ingest(Incoming::External(record(0, 1)))), vec![1]);
        assert_eq!(toids(&f.ingest(Incoming::External(record(1, 1)))), vec![1]);
        assert!(f.ingest(Incoming::External(record(1, 3))).is_empty());
        assert_eq!(
            toids(&f.ingest(Incoming::External(record(1, 2)))),
            vec![2, 3]
        );
    }

    #[test]
    fn strided_champion_expects_its_subsequence() {
        // Filter 0 of 4 (2 DCs) champions a parity class of host 0's TOIds.
        let routing = FilterRouting::new(4, 2);
        let (stride, first) = routing.stride_for(0, DatacenterId(0)).unwrap();
        let mut f = FilterCore::with_routing(0, routing);
        let out = f.ingest(Incoming::External(record(0, first)));
        assert_eq!(toids(&out), vec![first]);
        let out = f.ingest(Incoming::External(record(0, first + stride)));
        assert_eq!(toids(&out), vec![first + stride]);
    }

    #[test]
    fn local_records_pass_through() {
        let mut f = FilterCore::with_routing(0, FilterRouting::new(1, 2));
        let out = f.ingest(Incoming::Local(crate::message::LocalAppend {
            tags: TagSet::new(),
            body: Bytes::new(),
            deps: VersionVector::new(2),
            reply: None,
            trace: None,
        }));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Incoming::Local(_)));
    }

    #[test]
    fn reorder_buffer_is_bounded() {
        let mut f = FilterCore::with_routing(0, FilterRouting::new(1, 2)).with_max_reorder(3);
        for toid in [5u64, 4, 3, 2] {
            f.ingest(Incoming::External(record(0, toid)));
        }
        assert_eq!(f.reordering(), 3, "fourth out-of-order record dropped");
        // The dropped record (toid 2) will be re-propagated by the ATable
        // loop; releasing 1 releases only the buffered run.
        let out = f.ingest(Incoming::External(record(0, 1)));
        assert_eq!(toids(&out), vec![1]);
    }

    #[test]
    fn reassignment_epoch_splits_champion_state() {
        // One filter; a second joins from TOId 10. The old filter keeps
        // draining its pre-boundary sequence; in the new epoch it only
        // champions its stride class.
        let plan = Arc::new(RwLock::new(RoutingPlan::new(FilterRouting::new(1, 1))));
        let mut f0 = FilterCore::new(0, Arc::clone(&plan));
        let mut f1 = FilterCore::new(1, Arc::clone(&plan));
        for t in 1..=5u64 {
            assert_eq!(toids(&f0.ingest(Incoming::External(record(0, t)))), vec![t]);
        }
        plan.write().announce(TOId(10), FilterRouting::new(2, 1));
        // Pre-boundary records still flow through f0's old champion.
        for t in 6..=9u64 {
            assert_eq!(toids(&f0.ingest(Incoming::External(record(0, t)))), vec![t]);
        }
        // Post-boundary records split; route them per the plan and check
        // each filter releases its own class in order.
        let mut released = Vec::new();
        for t in 10..=20u64 {
            let target = plan.read().filter_for(DatacenterId(0), TOId(t));
            let out = if target == 0 {
                f0.ingest(Incoming::External(record(0, t)))
            } else {
                f1.ingest(Incoming::External(record(0, t)))
            };
            released.extend(toids(&out));
        }
        released.sort_unstable();
        assert_eq!(released, (10..=20).collect::<Vec<_>>(), "nothing stuck");
        assert_eq!(f0.duplicates_dropped() + f1.duplicates_dropped(), 0);
    }

    #[test]
    fn misrouted_records_pass_through_to_queue() {
        // A record routed to a non-championing filter (transient window
        // during reassignment) is forwarded, not dropped: the queue is the
        // exactly-once authority.
        let mut f = FilterCore::with_routing(1, FilterRouting::new(2, 2));
        // Filter 1 champions host 1 only; feed it a host-0 record.
        let out = f.ingest(Incoming::External(record(0, 1)));
        assert_eq!(toids(&out), vec![1]);
    }
}
