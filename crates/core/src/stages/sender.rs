//! The senders stage (§6.2): log propagation to other datacenters.
//!
//! "Senders propagate the local records of the log to other datacenters.
//! … Each Sender machine is responsible to send parts of the log from some
//! of the maintainers to a number of Receivers at other datacenters."
//!
//! Reliability comes from the ATable, exactly as in the abstract solution's
//! *Propagate* (§6.1): a sender keeps re-offering every local record the
//! peer is not yet known to have (`T[peer][own] < TOId`). Acknowledgement
//! is implicit — the peer's applied cut flows back with *its* propagation
//! messages — so partitions, drops, and duplicated deliveries all heal
//! without any dedicated ack protocol (the filters and queues downstream
//! are exactly-once).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chariots_simnet::{Counter, LinkSender, ServiceStation, Shutdown, StageTracer};
use chariots_types::{DatacenterId, LId, Record, TOId};
use parking_lot::RwLock;
use std::collections::HashMap;

use chariots_flstore::ReplicaGroupHandle;

use crate::atable::ATable;
use crate::message::PropagationMsg;

/// How many records a sender ships to one peer per propagation round.
/// Kept moderate so the station pacing (the sender's NIC model) applies
/// per chunk rather than letting a giant burst bypass it.
const SEND_BATCH: usize = 512;
/// How many entries a sender pulls from one maintainer per scan.
const SCAN_BATCH: usize = 4096;

/// One sender machine: scans its subset of maintainers for new local
/// records and re-offers unacknowledged ones to every peer each round.
pub struct SenderNode {
    dc: DatacenterId,
    /// The deployment's maintainer registry; this sender is responsible
    /// for indices `≡ my_index (mod num_senders)`, adopting newly added
    /// maintainers automatically.
    registry: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
    my_index: usize,
    num_senders: usize,
    /// Per-maintainer scan cursors, by registry index.
    cursors: HashMap<usize, LId>,
    /// Local records discovered, by TOId (pruned once all peers know them).
    cache: BTreeMap<TOId, Record>,
    atable: Arc<RwLock<ATable>>,
    /// WAN egress per peer: `peers[i] = (peer id, link sender)`.
    peers: Vec<(DatacenterId, LinkSender<PropagationMsg>)>,
}

impl SenderNode {
    /// Creates the sender state.
    pub fn new(
        dc: DatacenterId,
        registry: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
        my_index: usize,
        num_senders: usize,
        atable: Arc<RwLock<ATable>>,
        peers: Vec<(DatacenterId, LinkSender<PropagationMsg>)>,
    ) -> Self {
        assert!(num_senders > 0 && my_index < num_senders);
        SenderNode {
            dc,
            registry,
            my_index,
            num_senders,
            cursors: HashMap::new(),
            cache: BTreeMap::new(),
            atable,
            peers,
        }
    }

    /// One propagation round: scan for new local records, then offer each
    /// peer everything it is missing. `station`, when present, models the
    /// sender's NIC: the round pays for each chunk *before* it goes on the
    /// wire, so the long-run send rate respects the machine's capacity.
    /// Returns the number of records sent.
    pub fn round(&mut self, station: Option<&chariots_simnet::ServiceStation>) -> u64 {
        self.scan_new_records();
        let (applied, peer_known): (chariots_types::VersionVector, Vec<TOId>) = {
            let at = self.atable.read();
            (
                at.row(self.dc),
                self.peers
                    .iter()
                    .map(|(p, _)| at.get(*p, self.dc))
                    .collect(),
            )
        };
        let mut sent = 0u64;
        for ((peer, link), known) in self.peers.iter().zip(peer_known.iter()) {
            let _ = peer;
            let records: Vec<Record> = self
                .cache
                .range(known.next()..)
                .take(SEND_BATCH)
                .map(|(_, r)| r.clone())
                .collect();
            let n = records.len() as u64;
            if n > 0 {
                if let Some(st) = station {
                    st.note_arrival(n);
                    if st.serve(n).is_err() {
                        continue; // crashed: this peer's chunk waits
                    }
                }
            }
            // Even an empty message carries our applied cut — that is the
            // gossip that unblocks the peer's GC and our pruning.
            sent += n;
            link.send(PropagationMsg {
                from: self.dc,
                records,
                applied: applied.clone(),
            });
        }
        self.prune(&peer_known);
        sent
    }

    /// Pulls newly persisted local records from this sender's maintainers.
    fn scan_new_records(&mut self) {
        let mine: Vec<(usize, ReplicaGroupHandle)> = {
            let registry = self.registry.read();
            registry
                .iter()
                .enumerate()
                .filter(|(i, _)| i % self.num_senders == self.my_index)
                .map(|(i, h)| (i, h.clone()))
                .collect()
        };
        for (idx, handle) in mine {
            let cursor = self.cursors.entry(idx).or_insert(LId::ZERO);
            // Only positions below the maintainer's frontier are final
            // (everything owned below the frontier is filled), so the
            // cursor never skips a slot that fills later.
            let Ok(stats) = handle.stats() else { continue };
            let frontier = stats.frontier;
            loop {
                let Ok(entries) = handle.scan(*cursor, SCAN_BATCH) else {
                    break;
                };
                if entries.is_empty() {
                    break;
                }
                let mut advanced = false;
                for e in &entries {
                    if e.lid >= frontier {
                        break;
                    }
                    if e.record.host() == self.dc {
                        self.cache.insert(e.record.toid(), e.record.clone());
                    }
                    *cursor = e.lid.next();
                    advanced = true;
                }
                let hit_frontier = entries.last().is_some_and(|e| e.lid >= frontier);
                if hit_frontier || entries.len() < SCAN_BATCH {
                    if !hit_frontier && *cursor < frontier {
                        // Everything up to the frontier is scanned.
                        *cursor = frontier;
                    }
                    break;
                }
                if !advanced {
                    break;
                }
            }
        }
    }

    /// Drops cached records every peer already knows.
    fn prune(&mut self, peer_known: &[TOId]) {
        let Some(min_known) = peer_known.iter().min().copied() else {
            return;
        };
        if min_known.is_none() {
            return;
        }
        self.cache = self.cache.split_off(&min_known.next());
    }

    /// Records currently cached for retransmission.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// Spawns a sender node running one round per `interval`.
pub fn spawn_sender(
    mut node: SenderNode,
    interval: Duration,
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
    tracer: StageTracer,
) -> (Counter, JoinHandle<()>) {
    let processed = Counter::new();
    let counter = processed.clone();
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || loop {
            if shutdown.is_signaled() {
                return;
            }
            let t0 = std::time::Instant::now();
            let sent = node.round(Some(&station));
            if sent > 0 {
                processed.add(sent);
                // Records ship in bulk, so the sender stage reports its
                // round service time rather than per-record spans.
                tracer.observe(t0.elapsed());
            }
            std::thread::sleep(interval);
        })
        .expect("spawn sender");
    (counter, thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_flstore::{AppendPayload, EpochJournal, Fabric, MaintainerCore, RangeMap};
    use chariots_simnet::{Link, LinkConfig, StationConfig};
    use chariots_types::{MaintainerId, TagSet, VersionVector};

    /// Builds one maintainer node with some local records persisted the
    /// Chariots way (pre-assigned entries).
    fn maintainer_with_local_records(
        n_records: u64,
    ) -> (
        ReplicaGroupHandle,
        Shutdown,
        Vec<std::thread::JoinHandle<MaintainerCore>>,
    ) {
        let shutdown = Shutdown::new();
        let journal = EpochJournal::new(RangeMap::new(1, 100));
        let core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal);
        let station = Arc::new(ServiceStation::new("m0", StationConfig::uncapped()));
        let (handle, thread) = chariots_flstore::node::spawn_maintainer(
            core,
            station,
            Fabric::new(),
            Duration::from_millis(1),
            shutdown.clone(),
        );
        // Standalone appends: host == DC 0, TOId == LId+1.
        for i in 0..n_records {
            handle
                .append(vec![AppendPayload::new(TagSet::new(), format!("r{i}"))])
                .unwrap();
        }
        (ReplicaGroupHandle::solo(handle), shutdown, vec![thread])
    }

    #[test]
    fn sender_ships_unknown_records_and_stops_when_acked() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(5);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            Arc::clone(&atable),
            vec![(DatacenterId(1), link_tx)],
        );
        // Wait for the maintainer's gossip-driven frontier to update.
        std::thread::sleep(Duration::from_millis(10));
        let sent = node.round(None);
        assert_eq!(sent, 5);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 5);
        assert_eq!(msg.from, DatacenterId(0));
        // Without an ack, the next round re-offers everything.
        assert_eq!(node.round(None), 5, "re-offered until acknowledged");
        assert_eq!(node.cache_len(), 5);
        // The peer's applied cut arrives (via a receiver, modelled here by
        // writing the ATable row directly).
        atable.write().merge_row(
            DatacenterId(1),
            &VersionVector::from_entries(vec![TOId(5), TOId(0)]),
        );
        assert_eq!(node.round(None), 0, "peer has everything");
        assert_eq!(node.cache_len(), 0, "cache pruned");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn empty_rounds_still_gossip_applied_cut() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(0);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        atable
            .write()
            .observe(DatacenterId(0), DatacenterId(0), TOId(7));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        );
        node.round(None);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(msg.records.is_empty());
        assert_eq!(msg.applied.get(DatacenterId(0)), TOId(7));
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }
}
