//! The senders stage (§6.2): log propagation to other datacenters.
//!
//! "Senders propagate the local records of the log to other datacenters.
//! … Each Sender machine is responsible to send parts of the log from some
//! of the maintainers to a number of Receivers at other datacenters."
//!
//! Reliability still comes from the ATable, exactly as in the abstract
//! solution's *Propagate* (§6.1) — but a healthy round no longer re-offers
//! the entire unacknowledged window. Each sender keeps a per-peer **send
//! cursor** (the TOId high-water mark of what it has offered) and ships
//! only records beyond it; acknowledgement is still implicit — the peer's
//! applied cut flows back with *its* propagation messages. Only when a
//! peer's cut stalls past `retransmit_timeout` with offered records
//! outstanding does the sender fall back to re-offering from the
//! ATable-known cut, so drops, duplicated deliveries, and partitions heal
//! exactly as before (the filters and queues downstream are exactly-once).
//!
//! Outgoing chunks are built once per round as `Arc<[Record]>` and shared
//! across every peer that needs the same range, bounded both by record
//! count ([`SEND_BATCH`]) and by bytes (`max_chunk_bytes`). Rounds are
//! event-driven: the queues (new local records) and receivers (ATable
//! rises) signal the senders' [`Notify`], with the propagation interval
//! demoted to a gossip heartbeat floor.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chariots_simnet::{
    Counter, LinkSender, MetricsRegistry, Notify, ServiceStation, Shutdown, StageTracer,
};
use chariots_types::{DatacenterId, LId, Record, TOId};
use parking_lot::RwLock;
use std::collections::HashMap;

use chariots_flstore::ReplicaGroupHandle;

use crate::atable::ATable;
use crate::message::PropagationMsg;

/// How many records a sender ships to one peer per propagation round.
/// Kept moderate so the station pacing (the sender's NIC model) applies
/// per chunk rather than letting a giant burst bypass it.
const SEND_BATCH: usize = 512;
/// How many entries a sender pulls from one maintainer per scan.
const SCAN_BATCH: usize = 4096;
/// After an event wakeup, how long the sender waits before scanning — the
/// queue signals when it *routes* entries to the maintainers, a moment
/// before they are applied and scannable; this grace absorbs that race so
/// the event path does not degrade to the heartbeat floor.
const WAKEUP_GRACE: Duration = Duration::from_micros(200);

/// WAN propagation counters, shared by every sender of one datacenter.
#[derive(Debug, Clone)]
pub struct SenderMetrics {
    /// Wire bytes shipped (records + applied-cut gossip).
    pub bytes: Counter,
    /// Records offered to peers (including retransmissions).
    pub records: Counter,
    /// Timeout-triggered fallbacks to re-offering from the ATable cut.
    pub retransmits: Counter,
    /// Non-empty chunks shipped.
    pub chunks: Counter,
    /// Records evicted from the bounded retransmission cache.
    pub cache_evicted: Counter,
}

impl SenderMetrics {
    /// Unregistered counters (tests, standalone nodes).
    pub fn disabled() -> Self {
        SenderMetrics {
            bytes: Counter::new(),
            records: Counter::new(),
            retransmits: Counter::new(),
            chunks: Counter::new(),
            cache_evicted: Counter::new(),
        }
    }

    /// Counters registered under `{prefix}.chariots.wan.*`. Repeated calls
    /// return handles to the same counters, so a datacenter's senders share
    /// one set.
    pub fn registered(registry: &MetricsRegistry, prefix: &str) -> Self {
        SenderMetrics {
            bytes: registry.counter(&format!("{prefix}.chariots.wan.bytes")),
            records: registry.counter(&format!("{prefix}.chariots.wan.records")),
            retransmits: registry.counter(&format!("{prefix}.chariots.wan.retransmits")),
            chunks: registry.counter(&format!("{prefix}.chariots.wan.chunks")),
            cache_evicted: registry.counter(&format!("{prefix}.chariots.wan.cache.evicted")),
        }
    }
}

/// Per-peer propagation state.
#[derive(Debug)]
struct PeerState {
    /// TOId high-water mark of what this sender has offered the peer. A
    /// healthy round ships only `(cursor, …]`.
    cursor: TOId,
    /// The peer's applied cut for our records, as of the last round.
    known: TOId,
    /// When the peer last made observable progress: its cut rose, we
    /// offered it new records, or a retransmission fired. The stall clock
    /// for the retransmission fallback.
    last_progress: Instant,
}

/// One sender machine: scans its subset of maintainers for new local
/// records and offers each peer the records beyond its send cursor,
/// falling back to the ATable-known cut when the peer stalls.
pub struct SenderNode {
    dc: DatacenterId,
    /// The deployment's maintainer registry; this sender is responsible
    /// for indices `≡ my_index (mod num_senders)`, adopting newly added
    /// maintainers automatically.
    registry: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
    my_index: usize,
    num_senders: usize,
    /// Per-maintainer scan cursors, by registry index.
    cursors: HashMap<usize, LId>,
    /// Local records discovered, by TOId (pruned once all peers know them,
    /// capped at `cache_max_records`).
    cache: BTreeMap<TOId, Record>,
    /// Highest TOId ever evicted from the cache by the cap. Ranges at or
    /// below it re-hydrate from the maintainers on demand.
    evicted_to: TOId,
    atable: Arc<RwLock<ATable>>,
    /// WAN egress per peer: `peers[i] = (peer id, link sender)`.
    peers: Vec<(DatacenterId, LinkSender<PropagationMsg>)>,
    states: Vec<PeerState>,
    /// `false` restores the seed's full re-offer policy (bench baseline).
    delta_shipping: bool,
    retransmit_timeout: Duration,
    max_chunk_bytes: usize,
    cache_max_records: usize,
    metrics: SenderMetrics,
}

impl SenderNode {
    /// Creates the sender state with delta shipping on and default bounds;
    /// tune with the `with_*` builders.
    pub fn new(
        dc: DatacenterId,
        registry: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
        my_index: usize,
        num_senders: usize,
        atable: Arc<RwLock<ATable>>,
        peers: Vec<(DatacenterId, LinkSender<PropagationMsg>)>,
    ) -> Self {
        assert!(num_senders > 0 && my_index < num_senders);
        let now = Instant::now();
        let states = peers
            .iter()
            .map(|_| PeerState {
                cursor: TOId::NONE,
                known: TOId::NONE,
                last_progress: now,
            })
            .collect();
        SenderNode {
            dc,
            registry,
            my_index,
            num_senders,
            cursors: HashMap::new(),
            cache: BTreeMap::new(),
            evicted_to: TOId::NONE,
            atable,
            peers,
            states,
            delta_shipping: true,
            retransmit_timeout: Duration::from_millis(200),
            max_chunk_bytes: 1 << 20,
            cache_max_records: usize::MAX,
            metrics: SenderMetrics::disabled(),
        }
    }

    /// Enables or disables delta shipping (`false` = full re-offer).
    pub fn with_policy(mut self, delta_shipping: bool) -> Self {
        self.delta_shipping = delta_shipping;
        self
    }

    /// Sets the stalled-peer retransmission timeout.
    pub fn with_retransmit_timeout(mut self, d: Duration) -> Self {
        self.retransmit_timeout = d;
        self
    }

    /// Sets the per-chunk byte bound.
    pub fn with_max_chunk_bytes(mut self, n: usize) -> Self {
        self.max_chunk_bytes = n.max(1);
        self
    }

    /// Caps the retransmission cache (records).
    pub fn with_cache_cap(mut self, n: usize) -> Self {
        self.cache_max_records = n.max(1);
        self
    }

    /// Attaches WAN propagation counters.
    pub fn with_metrics(mut self, metrics: SenderMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// One propagation round: scan for new local records, then offer each
    /// peer what it is missing — its cursor delta when healthy, the
    /// ATable-known cut after a stall. `station`, when present, models the
    /// sender's NIC: the round pays for each chunk *before* it goes on the
    /// wire, so the long-run send rate respects the machine's capacity.
    /// Returns the number of records sent.
    pub fn round(&mut self, station: Option<&ServiceStation>) -> u64 {
        self.scan_new_records();
        self.enforce_cache_cap();
        let now = Instant::now();
        // One ATable read per round: our applied cut (shared by every
        // outgoing message) and each peer's knowledge of our records.
        let (applied, peer_known): (chariots_types::VersionVector, Vec<TOId>) = {
            let at = self.atable.read();
            (
                at.row(self.dc),
                self.peers
                    .iter()
                    .map(|(p, _)| at.get(*p, self.dc))
                    .collect(),
            )
        };

        // Advance per-peer state and pick each peer's offer start.
        let mut starts: Vec<TOId> = Vec::with_capacity(self.peers.len());
        for (state, known) in self.states.iter_mut().zip(peer_known.iter().copied()) {
            if known > state.known {
                state.known = known;
                state.last_progress = now;
            }
            if state.cursor < known {
                // Acknowledged past our cursor (e.g. relayed via a third
                // datacenter): never re-offer what the peer already has.
                state.cursor = known;
            }
            let start = if !self.delta_shipping {
                known
            } else if state.cursor > known
                && now.duration_since(state.last_progress) >= self.retransmit_timeout
            {
                // Offered records outstanding and the peer's cut stalled:
                // heal by re-offering from the ATable-known cut. One
                // fallback per timeout window, not per round.
                self.metrics.retransmits.add(1);
                state.last_progress = now;
                state.cursor = known;
                known
            } else {
                state.cursor
            };
            starts.push(start);
        }

        // A stale peer recovering may need records the cap evicted;
        // re-hydrate them from the maintainers before building chunks.
        if let Some(min_start) = starts.iter().copied().min() {
            if min_start < self.evicted_to {
                self.rehydrate(min_start);
            }
        }

        // Build each distinct chunk once and fan the shared payload out to
        // every peer starting at the same cursor.
        let mut chunks: HashMap<TOId, Arc<[Record]>> = HashMap::new();
        let mut sent = 0u64;
        for (i, start) in starts.into_iter().enumerate() {
            let records = chunks
                .entry(start)
                .or_insert_with(|| {
                    build_chunk(&self.cache, start, SEND_BATCH, self.max_chunk_bytes)
                })
                .clone();
            let n = records.len() as u64;
            if n > 0 {
                if let Some(st) = station {
                    st.note_arrival(n);
                    if st.serve(n).is_err() {
                        continue; // crashed: this peer's chunk waits
                    }
                }
                self.metrics.chunks.add(1);
                self.metrics.records.add(n);
                if let Some(last) = records.last() {
                    let state = &mut self.states[i];
                    if last.toid() > state.cursor {
                        state.cursor = last.toid();
                        // A fresh offer restarts the stall clock.
                        state.last_progress = now;
                    }
                }
            }
            // Even an empty message carries our applied cut — that is the
            // gossip that unblocks the peer's GC and our pruning.
            sent += n;
            let msg = PropagationMsg {
                from: self.dc,
                records,
                applied: applied.clone(),
            };
            self.metrics.bytes.add(msg.wire_size() as u64);
            let (_, link) = &self.peers[i];
            link.send(msg);
        }
        self.prune(&peer_known);
        sent
    }

    /// Pulls newly persisted local records from this sender's maintainers.
    fn scan_new_records(&mut self) {
        let mine = self.my_maintainers();
        for (idx, handle) in mine {
            let cursor = self.cursors.entry(idx).or_insert(LId::ZERO);
            // Only positions below the maintainer's frontier are final
            // (everything owned below the frontier is filled), so the
            // cursor never skips a slot that fills later.
            let Ok(stats) = handle.stats() else { continue };
            let frontier = stats.frontier;
            loop {
                let Ok(entries) = handle.scan(*cursor, SCAN_BATCH) else {
                    break;
                };
                if entries.is_empty() {
                    break;
                }
                let mut advanced = false;
                for e in &entries {
                    if e.lid >= frontier {
                        break;
                    }
                    if e.record.host() == self.dc {
                        self.cache.insert(e.record.toid(), e.record.clone());
                    }
                    *cursor = e.lid.next();
                    advanced = true;
                }
                let hit_frontier = entries.last().is_some_and(|e| e.lid >= frontier);
                if hit_frontier || entries.len() < SCAN_BATCH {
                    if !hit_frontier && *cursor < frontier {
                        // Everything up to the frontier is scanned.
                        *cursor = frontier;
                    }
                    break;
                }
                if !advanced {
                    break;
                }
            }
        }
    }

    /// The maintainers this sender is responsible for.
    fn my_maintainers(&self) -> Vec<(usize, ReplicaGroupHandle)> {
        let registry = self.registry.read();
        registry
            .iter()
            .enumerate()
            .filter(|(i, _)| i % self.num_senders == self.my_index)
            .map(|(i, h)| (i, h.clone()))
            .collect()
    }

    /// Caps the retransmission cache by evicting the oldest records (only
    /// a stale peer can still need them, and they re-hydrate on demand).
    fn enforce_cache_cap(&mut self) {
        let over = self.cache.len().saturating_sub(self.cache_max_records);
        if over == 0 {
            return;
        }
        for _ in 0..over {
            if let Some((toid, _)) = self.cache.pop_first() {
                if toid > self.evicted_to {
                    self.evicted_to = toid;
                }
            }
        }
        self.metrics.cache_evicted.add(over as u64);
    }

    /// Re-reads evicted local records in `(start, evicted_to]` from the
    /// maintainers via the ordinary scan path (at most one chunk's worth —
    /// a recovering peer drains at chunk granularity anyway). Safe even
    /// against GC: the ATable's collection rule keeps any record some
    /// datacenter still lacks.
    fn rehydrate(&mut self, start: TOId) {
        let lo = start.next();
        let hi = self.evicted_to;
        if lo > hi {
            return;
        }
        let mut budget = SEND_BATCH;
        for (_, handle) in self.my_maintainers() {
            if budget == 0 {
                break;
            }
            let Ok(stats) = handle.stats() else { continue };
            let frontier = stats.frontier;
            let mut cursor = LId::ZERO;
            'scan: loop {
                let Ok(entries) = handle.scan(cursor, SCAN_BATCH) else {
                    break;
                };
                if entries.is_empty() {
                    break;
                }
                let full = entries.len() == SCAN_BATCH;
                for e in entries {
                    if e.lid >= frontier {
                        break 'scan;
                    }
                    cursor = e.lid.next();
                    if e.record.host() != self.dc {
                        continue;
                    }
                    let t = e.record.toid();
                    if t >= lo && t <= hi && !self.cache.contains_key(&t) {
                        self.cache.insert(t, e.record);
                        budget -= 1;
                        if budget == 0 {
                            break 'scan;
                        }
                    }
                }
                if !full {
                    break;
                }
            }
        }
    }

    /// Drops cached records every peer already knows.
    fn prune(&mut self, peer_known: &[TOId]) {
        let Some(min_known) = peer_known.iter().min().copied() else {
            return;
        };
        if min_known.is_none() {
            return;
        }
        self.cache = self.cache.split_off(&min_known.next());
    }

    /// Records currently cached for retransmission.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// Builds one outgoing chunk: records beyond `start`, bounded by count and
/// by summed wire size (a chunk always makes progress — the first record
/// ships even if it alone exceeds the byte bound).
fn build_chunk(
    cache: &BTreeMap<TOId, Record>,
    start: TOId,
    max_records: usize,
    max_bytes: usize,
) -> Arc<[Record]> {
    let mut out: Vec<Record> = Vec::new();
    let mut bytes = 0usize;
    for r in cache.range(start.next()..).map(|(_, r)| r) {
        // Record::wire_size is what Incoming::wire_size charges for an
        // external record, so the chunk bound matches the link model.
        let sz = r.wire_size();
        if !out.is_empty() && (out.len() >= max_records || bytes + sz > max_bytes) {
            break;
        }
        bytes += sz;
        out.push(r.clone());
        if out.len() >= max_records {
            break;
        }
    }
    out.into()
}

/// Spawns a sender node. Rounds are event-driven: `wakeup` fires when new
/// local records are routed or the ATable rises, and `interval` is the
/// gossip heartbeat floor a quiet sender still honours.
pub fn spawn_sender(
    mut node: SenderNode,
    interval: Duration,
    mut wakeup: Notify,
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
    tracer: StageTracer,
) -> (Counter, JoinHandle<()>) {
    let processed = Counter::new();
    let counter = processed.clone();
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || loop {
            if shutdown.is_signaled() {
                return;
            }
            let t0 = std::time::Instant::now();
            let sent = node.round(Some(&station));
            if sent > 0 {
                processed.add(sent);
                // Records ship in bulk, so the sender stage reports its
                // round service time rather than per-record spans.
                tracer.observe(t0.elapsed());
            }
            if wakeup.wait_timeout(interval) {
                std::thread::sleep(WAKEUP_GRACE);
            }
        })
        .expect("spawn sender");
    (counter, thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_flstore::{AppendPayload, EpochJournal, Fabric, MaintainerCore, RangeMap};
    use chariots_simnet::{Link, LinkConfig, StationConfig};
    use chariots_types::{MaintainerId, TagSet, VersionVector};

    /// Builds one maintainer node with some local records persisted the
    /// Chariots way (pre-assigned entries).
    fn maintainer_with_local_records(
        n_records: u64,
    ) -> (
        ReplicaGroupHandle,
        Shutdown,
        Vec<std::thread::JoinHandle<MaintainerCore>>,
    ) {
        let shutdown = Shutdown::new();
        let journal = EpochJournal::new(RangeMap::new(1, 100));
        let core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal);
        let station = Arc::new(ServiceStation::new("m0", StationConfig::uncapped()));
        let (handle, thread) = chariots_flstore::node::spawn_maintainer(
            core,
            station,
            Fabric::new(),
            Duration::from_millis(1),
            shutdown.clone(),
        );
        // Standalone appends: host == DC 0, TOId == LId+1.
        for i in 0..n_records {
            handle
                .append(vec![AppendPayload::new(TagSet::new(), format!("r{i}"))])
                .unwrap();
        }
        (ReplicaGroupHandle::solo(handle), shutdown, vec![thread])
    }

    #[test]
    fn delta_sender_ships_new_records_exactly_once_until_timeout() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(5);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            Arc::clone(&atable),
            vec![(DatacenterId(1), link_tx)],
        )
        .with_retransmit_timeout(Duration::from_millis(40));
        // Wait for the maintainer's frontier to cover the appends.
        std::thread::sleep(Duration::from_millis(10));
        let sent = node.round(None);
        assert_eq!(sent, 5);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 5);
        assert_eq!(msg.from, DatacenterId(0));
        // Delta shipping: the cursor advanced, so the very next round does
        // NOT re-offer (no ack yet, but no timeout either).
        assert_eq!(node.round(None), 0, "cursor suppresses the re-offer");
        assert_eq!(node.cache_len(), 5, "unacked records stay cached");
        // After the stall timeout with no ack, the sender falls back to
        // re-offering from the ATable-known cut — the healing path.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(node.round(None), 5, "timeout re-offers the window");
        assert_eq!(node.metrics.retransmits.get(), 1);
        // The peer's applied cut arrives (via a receiver, modelled here by
        // writing the ATable row directly): pruning resumes.
        atable.write().merge_row(
            DatacenterId(1),
            &VersionVector::from_entries(vec![TOId(5), TOId(0)]),
        );
        assert_eq!(node.round(None), 0, "peer has everything");
        assert_eq!(node.cache_len(), 0, "cache pruned");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn full_reoffer_policy_matches_seed_behavior() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(3);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, _link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        )
        .with_policy(false);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(node.round(None), 3);
        // No ack: the baseline re-offers the whole window every round.
        assert_eq!(node.round(None), 3, "re-offered until acknowledged");
        assert_eq!(node.round(None), 3);
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn shared_chunk_fans_out_to_peers_at_the_same_cursor() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(4);
        let atable = Arc::new(RwLock::new(ATable::new(3)));
        let (tx1, rx1, _h1) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let (tx2, rx2, _h2) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), tx1), (DatacenterId(2), tx2)],
        );
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(node.round(None), 8, "4 records offered to each peer");
        let m1 = rx1.recv_timeout(Duration::from_secs(1)).unwrap();
        let m2 = rx2.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m1.records.len(), 4);
        assert!(
            Arc::ptr_eq(&m1.records, &m2.records),
            "both peers share one payload allocation"
        );
        assert_eq!(node.metrics.chunks.get(), 2, "one chunk count per peer");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn chunks_respect_the_byte_bound() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(6);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        )
        .with_max_chunk_bytes(1); // every record alone exceeds the bound
        std::thread::sleep(Duration::from_millis(10));
        // A chunk always makes progress: exactly one record per round.
        assert_eq!(node.round(None), 1);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 1);
        assert_eq!(msg.records[0].toid(), TOId(1));
        assert_eq!(node.round(None), 1, "cursor advanced to the next record");
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records[0].toid(), TOId(2));
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn cache_cap_evicts_and_rehydrates_for_a_lagging_peer() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(12);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            Arc::clone(&atable),
            vec![(DatacenterId(1), link_tx)],
        )
        .with_cache_cap(4);
        std::thread::sleep(Duration::from_millis(10));
        // The cap evicts the 8 oldest of the 12 scanned records — but the
        // peer's cursor is still at zero, below the eviction high-water, so
        // the round re-hydrates the evicted range from the maintainers and
        // the offer still starts at TOId 1. Nothing is lost.
        assert_eq!(node.round(None), 12);
        assert_eq!(node.metrics.cache_evicted.get(), 8, "12 scanned, 4 kept");
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 12);
        assert_eq!(
            msg.records[0].toid(),
            TOId(1),
            "offer starts below the eviction high-water: rehydrated"
        );
        // Once the peer acks everything, the cache empties as before.
        atable.write().merge_row(
            DatacenterId(1),
            &VersionVector::from_entries(vec![TOId(12), TOId(0)]),
        );
        node.round(None);
        assert_eq!(node.cache_len(), 0);
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn empty_rounds_still_gossip_applied_cut() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(0);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        atable
            .write()
            .observe(DatacenterId(0), DatacenterId(0), TOId(7));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        );
        node.round(None);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(msg.records.is_empty());
        assert_eq!(msg.applied.get(DatacenterId(0)), TOId(7));
        assert!(node.metrics.bytes.get() > 0, "gossip bytes are counted");
        assert_eq!(node.metrics.chunks.get(), 0, "heartbeats are not chunks");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }
}
