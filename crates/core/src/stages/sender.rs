//! The senders stage (§6.2): log propagation to other datacenters.
//!
//! "Senders propagate the local records of the log to other datacenters.
//! … Each Sender machine is responsible to send parts of the log from some
//! of the maintainers to a number of Receivers at other datacenters."
//!
//! Reliability still comes from the ATable, exactly as in the abstract
//! solution's *Propagate* (§6.1) — but a healthy round no longer re-offers
//! the entire unacknowledged window. Each sender keeps a per-peer **send
//! cursor** (the TOId high-water mark of what it has offered) and ships
//! only records beyond it; acknowledgement is still implicit — the peer's
//! applied cut flows back with *its* propagation messages. Only when a
//! peer's cut stalls past `retransmit_timeout` with offered records
//! outstanding does the sender fall back to re-offering from the
//! ATable-known cut, so drops, duplicated deliveries, and partitions heal
//! exactly as before (the filters and queues downstream are exactly-once).
//! The stall clock starts when records first go outstanding and is
//! restarted only by observable peer progress or by the fallback itself —
//! never by fresh offers, so sustained append load cannot starve the
//! retransmission a stalled peer is waiting for.
//!
//! Two invariants keep the cursor from ever *skipping* a record:
//!
//! * **Stable frontier.** Local TOIds and LIds are assigned together under
//!   the queues' token, so TOId order is LId order. A chunk never ships a
//!   record unless every one of this sender's maintainers has scanned past
//!   its LId — otherwise a lower TOId could still surface late from a
//!   maintainer whose group commit is in flight, and the advancing cursor
//!   would strand it until a retransmit timeout.
//! * **Eviction guard.** When the bounded cache evicts a record, its exact
//!   location (maintainer, LId) is kept in an index; a stale peer's offer
//!   window re-reads evicted records back by point lookup, lowest TOIds
//!   first, and a chunk never ships past a TOId still sitting in the
//!   index (e.g. its re-read failed during a failover).
//!
//! Outgoing chunks are built once per round as `Arc<[Record]>` and shared
//! across every peer that needs the same range, bounded both by record
//! count ([`SEND_BATCH`]) and by bytes (`max_chunk_bytes`). Rounds are
//! event-driven: the queues (new local records) and receivers (ATable
//! rises) signal the senders' [`Notify`], with the propagation interval
//! demoted to a gossip heartbeat floor.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chariots_simnet::{
    Counter, EventJournal, EventKind, Gauge, LinkSender, MetricsRegistry, Notify, ServiceStation,
    Shutdown, StageTracer,
};
use chariots_types::{DatacenterId, LId, Record, TOId};
use parking_lot::RwLock;
use std::collections::HashMap;

use chariots_flstore::ReplicaGroupHandle;

use crate::atable::ATable;
use crate::message::PropagationMsg;

/// How many records a sender ships to one peer per propagation round.
/// Kept moderate so the station pacing (the sender's NIC model) applies
/// per chunk rather than letting a giant burst bypass it.
const SEND_BATCH: usize = 512;
/// How many entries a sender pulls from one maintainer per scan.
const SCAN_BATCH: usize = 4096;
/// After an event wakeup, how long the sender waits before scanning — the
/// queue signals when it *routes* entries to the maintainers, a moment
/// before they are applied and scannable; this grace absorbs that race so
/// the event path does not degrade to the heartbeat floor.
const WAKEUP_GRACE: Duration = Duration::from_micros(200);

/// WAN propagation counters, shared by every sender of one datacenter.
#[derive(Debug, Clone)]
pub struct SenderMetrics {
    /// Wire bytes shipped (records + applied-cut gossip).
    pub bytes: Counter,
    /// Records offered to peers (including retransmissions).
    pub records: Counter,
    /// Timeout-triggered fallbacks to re-offering from the ATable cut.
    pub retransmits: Counter,
    /// Distinct non-empty chunks built (each may fan out to many peers).
    pub chunks: Counter,
    /// Records evicted from the bounded retransmission cache.
    pub cache_evicted: Counter,
}

impl SenderMetrics {
    /// Unregistered counters (tests, standalone nodes).
    pub fn disabled() -> Self {
        SenderMetrics {
            bytes: Counter::new(),
            records: Counter::new(),
            retransmits: Counter::new(),
            chunks: Counter::new(),
            cache_evicted: Counter::new(),
        }
    }

    /// Counters registered under `{prefix}.chariots.wan.*`. Repeated calls
    /// return handles to the same counters, so a datacenter's senders share
    /// one set.
    pub fn registered(registry: &MetricsRegistry, prefix: &str) -> Self {
        SenderMetrics {
            bytes: registry.counter(&format!("{prefix}.chariots.wan.bytes")),
            records: registry.counter(&format!("{prefix}.chariots.wan.records")),
            retransmits: registry.counter(&format!("{prefix}.chariots.wan.retransmits")),
            chunks: registry.counter(&format!("{prefix}.chariots.wan.chunks")),
            cache_evicted: registry.counter(&format!("{prefix}.chariots.wan.cache.evicted")),
        }
    }
}

/// Live health of one sender machine, refreshed once per propagation
/// round: retransmission-cache occupancy and, per peer, how far the
/// peer's applied cut trails this sender's offer cursor. Timeout-triggered
/// fallbacks additionally land in the registry's event journal as
/// [`EventKind::WanRetransmit`], correlated with the peer they healed.
#[derive(Debug, Clone)]
pub struct SenderHealth {
    /// Records currently cached for (re)transmission.
    pub cache: Gauge,
    /// Evicted-record locations tracked for on-demand rehydration.
    pub evicted: Gauge,
    /// Per-peer cursor lag (offered-but-unacknowledged TOIds), in the
    /// sender's peer order.
    pub peer_lag: Vec<Gauge>,
    journal: EventJournal,
    source: String,
}

impl SenderHealth {
    /// Unregistered gauges and a detached journal (tests, standalone
    /// nodes).
    pub fn disabled() -> Self {
        SenderHealth {
            cache: Gauge::new(),
            evicted: Gauge::new(),
            peer_lag: Vec::new(),
            journal: EventJournal::default(),
            source: String::new(),
        }
    }

    /// Gauges registered as `{prefix}.{node}.cache.occupancy`,
    /// `{prefix}.{node}.evicted.occupancy`, and
    /// `{prefix}.{node}.peer{P}.cursor_lag`; events publish to the
    /// registry's journal under source `{prefix}.{node}`.
    pub fn registered(
        registry: &MetricsRegistry,
        prefix: &str,
        node: &str,
        peers: &[DatacenterId],
    ) -> Self {
        SenderHealth {
            cache: registry.gauge(&format!("{prefix}.{node}.cache.occupancy")),
            evicted: registry.gauge(&format!("{prefix}.{node}.evicted.occupancy")),
            peer_lag: peers
                .iter()
                .map(|p| registry.gauge(&format!("{prefix}.{node}.peer{}.cursor_lag", p.index())))
                .collect(),
            journal: registry.journal().clone(),
            source: format!("{prefix}.{node}"),
        }
    }

    fn note_retransmit(&self, peer: DatacenterId) {
        self.journal.publish(
            &self.source,
            None,
            EventKind::WanRetransmit {
                peer: peer.index() as u64,
            },
        );
    }
}

/// Per-peer propagation state.
#[derive(Debug)]
struct PeerState {
    /// TOId high-water mark of what this sender has offered the peer. A
    /// healthy round ships only `(cursor, …]`.
    cursor: TOId,
    /// The peer's applied cut for our records, as of the last round.
    known: TOId,
    /// Stall clock for the retransmission fallback: when this peer first
    /// had offered records outstanding beyond `known` without observable
    /// progress since. Restarted when the cut rises or the fallback fires,
    /// cleared when the peer catches up — but NOT restarted by fresh
    /// offers, so rounds more frequent than the timeout (sustained append
    /// load) cannot postpone the retransmission forever.
    stalled_since: Option<Instant>,
}

/// A locally scanned record held for (re)transmission, remembering where
/// it was scanned from so an evicted copy can be re-read by point lookup.
#[derive(Debug, Clone)]
struct Cached {
    /// Registry index of the maintainer group the record lives on.
    midx: usize,
    lid: LId,
    record: Record,
}

/// One sender machine: scans its subset of maintainers for new local
/// records and offers each peer the records beyond its send cursor,
/// falling back to the ATable-known cut when the peer stalls.
pub struct SenderNode {
    dc: DatacenterId,
    /// The deployment's maintainer registry; this sender is responsible
    /// for indices `≡ my_index (mod num_senders)`, adopting newly added
    /// maintainers automatically.
    registry: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
    my_index: usize,
    num_senders: usize,
    /// Per-maintainer scan cursors, by registry index.
    cursors: HashMap<usize, LId>,
    /// Local records discovered, by TOId (pruned once all peers know them,
    /// capped at `cache_max_records`).
    cache: BTreeMap<TOId, Cached>,
    /// Where evicted-but-possibly-still-needed records live: TOId →
    /// (registry index, LId). Entries move back into `cache` by point
    /// lookup when a stale peer's offer window reaches them, and are
    /// pruned exactly like the cache once every peer's cut passes them
    /// (~tens of bytes per record versus a full payload).
    evicted: BTreeMap<TOId, (usize, LId)>,
    atable: Arc<RwLock<ATable>>,
    /// WAN egress per peer: `peers[i] = (peer id, link sender)`.
    peers: Vec<(DatacenterId, LinkSender<PropagationMsg>)>,
    states: Vec<PeerState>,
    /// `false` restores the seed's full re-offer policy (bench baseline).
    delta_shipping: bool,
    retransmit_timeout: Duration,
    max_chunk_bytes: usize,
    cache_max_records: usize,
    metrics: SenderMetrics,
    health: SenderHealth,
}

impl SenderNode {
    /// Creates the sender state with delta shipping on and default bounds;
    /// tune with the `with_*` builders.
    pub fn new(
        dc: DatacenterId,
        registry: Arc<RwLock<Vec<ReplicaGroupHandle>>>,
        my_index: usize,
        num_senders: usize,
        atable: Arc<RwLock<ATable>>,
        peers: Vec<(DatacenterId, LinkSender<PropagationMsg>)>,
    ) -> Self {
        assert!(num_senders > 0 && my_index < num_senders);
        let states = peers
            .iter()
            .map(|_| PeerState {
                cursor: TOId::NONE,
                known: TOId::NONE,
                stalled_since: None,
            })
            .collect();
        SenderNode {
            dc,
            registry,
            my_index,
            num_senders,
            cursors: HashMap::new(),
            cache: BTreeMap::new(),
            evicted: BTreeMap::new(),
            atable,
            peers,
            states,
            delta_shipping: true,
            retransmit_timeout: Duration::from_millis(200),
            max_chunk_bytes: 1 << 20,
            cache_max_records: usize::MAX,
            metrics: SenderMetrics::disabled(),
            health: SenderHealth::disabled(),
        }
    }

    /// Enables or disables delta shipping (`false` = full re-offer).
    pub fn with_policy(mut self, delta_shipping: bool) -> Self {
        self.delta_shipping = delta_shipping;
        self
    }

    /// Sets the stalled-peer retransmission timeout.
    pub fn with_retransmit_timeout(mut self, d: Duration) -> Self {
        self.retransmit_timeout = d;
        self
    }

    /// Sets the per-chunk byte bound.
    pub fn with_max_chunk_bytes(mut self, n: usize) -> Self {
        self.max_chunk_bytes = n.max(1);
        self
    }

    /// Caps the retransmission cache (records).
    pub fn with_cache_cap(mut self, n: usize) -> Self {
        self.cache_max_records = n.max(1);
        self
    }

    /// Attaches WAN propagation counters.
    pub fn with_metrics(mut self, metrics: SenderMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attaches health gauges and the event journal.
    pub fn with_health(mut self, health: SenderHealth) -> Self {
        self.health = health;
        self
    }

    /// One propagation round: scan for new local records, then offer each
    /// peer what it is missing — its cursor delta when healthy, the
    /// ATable-known cut after a stall. `station`, when present, models the
    /// sender's NIC: the round pays for each chunk *before* it goes on the
    /// wire, so the long-run send rate respects the machine's capacity.
    /// Returns the number of records sent.
    pub fn round(&mut self, station: Option<&ServiceStation>) -> u64 {
        self.scan_new_records();
        self.enforce_cache_cap();
        let now = Instant::now();
        // One ATable read per round: our applied cut (shared by every
        // outgoing message) and each peer's knowledge of our records.
        let (applied, peer_known): (chariots_types::VersionVector, Vec<TOId>) = {
            let at = self.atable.read();
            (
                at.row(self.dc),
                self.peers
                    .iter()
                    .map(|(p, _)| at.get(*p, self.dc))
                    .collect(),
            )
        };

        // Advance per-peer state and pick each peer's offer start.
        let mut starts: Vec<TOId> = Vec::with_capacity(self.peers.len());
        for (i, (state, known)) in self
            .states
            .iter_mut()
            .zip(peer_known.iter().copied())
            .enumerate()
        {
            if known > state.known {
                state.known = known;
                // Observable progress: the stall clock restarts (and is
                // cleared below if the peer caught up entirely).
                state.stalled_since = Some(now);
            }
            if state.cursor < known {
                // Acknowledged past our cursor (e.g. relayed via a third
                // datacenter): never re-offer what the peer already has.
                state.cursor = known;
            }
            if state.cursor <= known {
                // Nothing outstanding — there is no stall to clock.
                state.stalled_since = None;
            }
            let start = if !self.delta_shipping {
                known
            } else if state.cursor > known
                && state
                    .stalled_since
                    .is_some_and(|t| now.duration_since(t) >= self.retransmit_timeout)
            {
                // Offered records outstanding and the peer's cut stalled:
                // heal by re-offering from the ATable-known cut. One
                // fallback per timeout window, not per round — the clock
                // restarts when the re-offer goes out below.
                self.metrics.retransmits.add(1);
                self.health.note_retransmit(self.peers[i].0);
                state.stalled_since = None;
                state.cursor = known;
                known
            } else {
                state.cursor
            };
            starts.push(start);
        }

        // A stale peer's offer window may need records the cap evicted;
        // point-read them back from the maintainers before building chunks.
        self.rehydrate(&starts);

        // Never ship (and advance a cursor) past the stable frontier: a
        // record above it could still be followed by a lower TOId
        // surfacing late from a lagging maintainer, and the skipped record
        // would strand until a retransmit timeout.
        let stable = self.stable_frontier();

        // Build each distinct chunk once and fan the shared payload out to
        // every peer starting at the same cursor.
        let mut chunks: HashMap<TOId, Arc<[Record]>> = HashMap::new();
        let mut sent = 0u64;
        for (i, start) in starts.into_iter().enumerate() {
            let records = chunks
                .entry(start)
                .or_insert_with(|| {
                    let chunk = build_chunk(
                        &self.cache,
                        &self.evicted,
                        start,
                        stable,
                        SEND_BATCH,
                        self.max_chunk_bytes,
                    );
                    if !chunk.is_empty() {
                        // One count per distinct payload built, not per
                        // peer send — the fan-out effectiveness metric.
                        self.metrics.chunks.add(1);
                    }
                    chunk
                })
                .clone();
            let n = records.len() as u64;
            if n > 0 {
                if let Some(st) = station {
                    st.note_arrival(n);
                    if st.serve(n).is_err() {
                        continue; // crashed: this peer's chunk waits
                    }
                }
                self.metrics.records.add(n);
                if let Some(last) = records.last() {
                    let state = &mut self.states[i];
                    if last.toid() > state.cursor {
                        state.cursor = last.toid();
                        // Records going outstanding start the stall clock;
                        // an already-running clock keeps running (fresh
                        // offers are not peer progress).
                        if state.cursor > state.known {
                            state.stalled_since.get_or_insert(now);
                        }
                    }
                }
            }
            // Even an empty message carries our applied cut — that is the
            // gossip that unblocks the peer's GC and our pruning.
            sent += n;
            let msg = PropagationMsg {
                from: self.dc,
                records,
                applied: applied.clone(),
            };
            self.metrics.bytes.add(msg.wire_size() as u64);
            let (_, link) = &self.peers[i];
            link.send(msg);
        }
        self.prune(&peer_known);
        // Refresh this machine's health gauges once per round, post-prune,
        // so the readings reflect what the round left behind.
        self.health.cache.set(self.cache.len() as i64);
        self.health.evicted.set(self.evicted.len() as i64);
        for (i, state) in self.states.iter().enumerate() {
            if let Some(lag) = self.health.peer_lag.get(i) {
                lag.set(state.cursor.0.saturating_sub(state.known.0) as i64);
            }
        }
        sent
    }

    /// Pulls newly persisted local records from this sender's maintainers.
    fn scan_new_records(&mut self) {
        let mine = self.my_maintainers();
        for (idx, handle) in mine {
            let cursor = self.cursors.entry(idx).or_insert(LId::ZERO);
            // Only positions below the maintainer's frontier are final
            // (everything owned below the frontier is filled), so the
            // cursor never skips a slot that fills later.
            let Ok(stats) = handle.stats() else { continue };
            let frontier = stats.frontier;
            loop {
                let Ok(entries) = handle.scan(*cursor, SCAN_BATCH) else {
                    break;
                };
                if entries.is_empty() {
                    // Nothing filled at or above the cursor, so no owned
                    // slot sits in [cursor, frontier) (slots below the
                    // frontier are filled by definition): the cursor can
                    // jump to the frontier without skipping anything. This
                    // keeps a record-less maintainer (fresh stripe) from
                    // pinning the stable frontier at zero.
                    if *cursor < frontier {
                        *cursor = frontier;
                    }
                    break;
                }
                let mut advanced = false;
                for e in &entries {
                    if e.lid >= frontier {
                        break;
                    }
                    if e.record.host() == self.dc {
                        self.cache.insert(
                            e.record.toid(),
                            Cached {
                                midx: idx,
                                lid: e.lid,
                                record: e.record.clone(),
                            },
                        );
                    }
                    *cursor = e.lid.next();
                    advanced = true;
                }
                let hit_frontier = entries.last().is_some_and(|e| e.lid >= frontier);
                if hit_frontier || entries.len() < SCAN_BATCH {
                    if !hit_frontier && *cursor < frontier {
                        // Everything up to the frontier is scanned.
                        *cursor = frontier;
                    }
                    break;
                }
                if !advanced {
                    break;
                }
            }
        }
    }

    /// The maintainers this sender is responsible for.
    fn my_maintainers(&self) -> Vec<(usize, ReplicaGroupHandle)> {
        let registry = self.registry.read();
        registry
            .iter()
            .enumerate()
            .filter(|(i, _)| i % self.num_senders == self.my_index)
            .map(|(i, h)| (i, h.clone()))
            .collect()
    }

    /// The highest cached TOId every one of this sender's maintainers has
    /// scanned past (by LId). Local TOIds and LIds are assigned together
    /// under the token — TOId order *is* LId order — and a maintainer only
    /// admits new records at owned slots at or above its frontier, so no
    /// record at a TOId at or below this bound can surface later.
    fn stable_frontier(&self) -> TOId {
        let registry_len = self.registry.read().len();
        let mut min_scanned: Option<LId> = None;
        for idx in (0..registry_len).filter(|i| i % self.num_senders == self.my_index) {
            let c = self.cursors.get(&idx).copied().unwrap_or(LId::ZERO);
            min_scanned = Some(min_scanned.map_or(c, |m| m.min(c)));
        }
        let Some(min_scanned) = min_scanned else {
            return TOId::NONE;
        };
        // Cached TOIds ascend with their LIds, so walk down from the top
        // to the first entry below every scan cursor. The walk is bounded
        // by the records one lagging maintainer is holding back.
        self.cache
            .iter()
            .rev()
            .find(|(_, c)| c.lid < min_scanned)
            .map(|(t, _)| *t)
            .unwrap_or(TOId::NONE)
    }

    /// Caps the retransmission cache by evicting the oldest records (only
    /// a stale peer can still need them) into the location index, from
    /// which they re-hydrate on demand.
    fn enforce_cache_cap(&mut self) {
        let over = self.cache.len().saturating_sub(self.cache_max_records);
        if over == 0 {
            return;
        }
        for _ in 0..over {
            if let Some((toid, c)) = self.cache.pop_first() {
                self.evicted.insert(toid, (c.midx, c.lid));
            }
        }
        self.metrics.cache_evicted.add(over as u64);
    }

    /// Moves evicted records that some peer's offer window now needs back
    /// into the cache — lowest TOIds first, at most a chunk's worth per
    /// distinct offer start — via exact per-maintainer point lookups (no
    /// log rescans). A record whose read fails (its group mid-failover)
    /// stays in the index, and [`build_chunk`]'s eviction guard keeps
    /// every offer short of the hole until a later round heals it. Safe
    /// against GC: the ATable's collection rule keeps any record some
    /// datacenter still lacks.
    fn rehydrate(&mut self, starts: &[TOId]) {
        if self.evicted.is_empty() {
            return;
        }
        let mut sorted: Vec<TOId> = starts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut picks: BTreeMap<TOId, (usize, LId)> = BTreeMap::new();
        for start in sorted {
            for (t, loc) in self.evicted.range(start.next()..).take(SEND_BATCH) {
                picks.insert(*t, *loc);
            }
        }
        if picks.is_empty() {
            return;
        }
        let mut by_maintainer: HashMap<usize, Vec<(TOId, LId)>> = HashMap::new();
        for (t, (idx, lid)) in picks {
            by_maintainer.entry(idx).or_default().push((t, lid));
        }
        for (idx, positions) in by_maintainer {
            let handle = self.registry.read().get(idx).cloned();
            let Some(handle) = handle else { continue };
            let lids: Vec<LId> = positions.iter().map(|&(_, lid)| lid).collect();
            let results = handle.read_batch(&lids, false);
            for ((t, lid), result) in positions.into_iter().zip(results) {
                let Ok(entry) = result else { continue };
                // The slot must still hold the record we evicted.
                if entry.record.host() != self.dc || entry.record.toid() != t {
                    continue;
                }
                self.cache.insert(
                    t,
                    Cached {
                        midx: idx,
                        lid,
                        record: entry.record,
                    },
                );
                self.evicted.remove(&t);
            }
        }
    }

    /// Drops cached records every peer already knows.
    fn prune(&mut self, peer_known: &[TOId]) {
        let Some(min_known) = peer_known.iter().min().copied() else {
            return;
        };
        if min_known.is_none() {
            return;
        }
        self.cache = self.cache.split_off(&min_known.next());
        self.evicted = self.evicted.split_off(&min_known.next());
    }

    /// Records currently cached for retransmission.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Evicted records currently tracked by the location index.
    pub fn evicted_len(&self) -> usize {
        self.evicted.len()
    }
}

/// Builds one outgoing chunk: records in `(start, stable]`, bounded by
/// count and by summed wire size (a chunk always makes progress — the
/// first record ships even if it alone exceeds the byte bound). The chunk
/// additionally stops short of the first TOId still in the eviction index
/// — offering past it would advance the peer's cursor over a record the
/// sender cannot currently produce.
fn build_chunk(
    cache: &BTreeMap<TOId, Cached>,
    evicted: &BTreeMap<TOId, (usize, LId)>,
    start: TOId,
    stable: TOId,
    max_records: usize,
    max_bytes: usize,
) -> Arc<[Record]> {
    let bound = evicted
        .range(start.next()..)
        .next()
        .map(|(t, _)| t.prev())
        .unwrap_or(stable)
        .min(stable);
    if bound <= start {
        return Vec::new().into();
    }
    let mut out: Vec<Record> = Vec::new();
    let mut bytes = 0usize;
    for (t, c) in cache.range(start.next()..) {
        if *t > bound {
            break;
        }
        // Record::wire_size is what Incoming::wire_size charges for an
        // external record, so the chunk bound matches the link model.
        let sz = c.record.wire_size();
        if !out.is_empty() && (out.len() >= max_records || bytes + sz > max_bytes) {
            break;
        }
        bytes += sz;
        out.push(c.record.clone());
        if out.len() >= max_records {
            break;
        }
    }
    out.into()
}

/// Spawns a sender node. Rounds are event-driven: `wakeup` fires when new
/// local records are routed or the ATable rises, and `interval` is the
/// gossip heartbeat floor a quiet sender still honours.
pub fn spawn_sender(
    mut node: SenderNode,
    interval: Duration,
    mut wakeup: Notify,
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
    tracer: StageTracer,
) -> (Counter, JoinHandle<()>) {
    let processed = Counter::new();
    let counter = processed.clone();
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || loop {
            if shutdown.is_signaled() {
                return;
            }
            let t0 = std::time::Instant::now();
            let sent = node.round(Some(&station));
            if sent > 0 {
                processed.add(sent);
                // Records ship in bulk, so the sender stage reports its
                // round service time rather than per-record spans.
                tracer.observe(t0.elapsed());
            }
            if wakeup.wait_timeout(interval) {
                std::thread::sleep(WAKEUP_GRACE);
            }
        })
        .expect("spawn sender");
    (counter, thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chariots_flstore::{AppendPayload, EpochJournal, Fabric, MaintainerCore, RangeMap};
    use chariots_simnet::{Link, LinkConfig, StationConfig};
    use chariots_types::{Entry, MaintainerId, RecordId, TagSet, VersionVector};

    /// Builds one maintainer node with some local records persisted the
    /// Chariots way (pre-assigned entries).
    fn maintainer_with_local_records(
        n_records: u64,
    ) -> (
        ReplicaGroupHandle,
        Shutdown,
        Vec<std::thread::JoinHandle<MaintainerCore>>,
    ) {
        let shutdown = Shutdown::new();
        let journal = EpochJournal::new(RangeMap::new(1, 100));
        let core = MaintainerCore::new(MaintainerId(0), DatacenterId(0), journal);
        let station = Arc::new(ServiceStation::new("m0", StationConfig::uncapped()));
        let (handle, thread) = chariots_flstore::node::spawn_maintainer(
            core,
            station,
            Fabric::new(),
            Duration::from_millis(1),
            shutdown.clone(),
        );
        // Standalone appends: host == DC 0, TOId == LId+1.
        for i in 0..n_records {
            handle
                .append(vec![AppendPayload::new(TagSet::new(), format!("r{i}"))])
                .unwrap();
        }
        (ReplicaGroupHandle::solo(handle), shutdown, vec![thread])
    }

    #[test]
    fn delta_sender_ships_new_records_exactly_once_until_timeout() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(5);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            Arc::clone(&atable),
            vec![(DatacenterId(1), link_tx)],
        )
        .with_retransmit_timeout(Duration::from_millis(40));
        // Wait for the maintainer's frontier to cover the appends.
        std::thread::sleep(Duration::from_millis(10));
        let sent = node.round(None);
        assert_eq!(sent, 5);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 5);
        assert_eq!(msg.from, DatacenterId(0));
        // Delta shipping: the cursor advanced, so the very next round does
        // NOT re-offer (no ack yet, but no timeout either).
        assert_eq!(node.round(None), 0, "cursor suppresses the re-offer");
        assert_eq!(node.cache_len(), 5, "unacked records stay cached");
        // After the stall timeout with no ack, the sender falls back to
        // re-offering from the ATable-known cut — the healing path.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(node.round(None), 5, "timeout re-offers the window");
        assert_eq!(node.metrics.retransmits.get(), 1);
        // The peer's applied cut arrives (via a receiver, modelled here by
        // writing the ATable row directly): pruning resumes.
        atable.write().merge_row(
            DatacenterId(1),
            &VersionVector::from_entries(vec![TOId(5), TOId(0)]),
        );
        assert_eq!(node.round(None), 0, "peer has everything");
        assert_eq!(node.cache_len(), 0, "cache pruned");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    /// Regression for retransmit starvation: fresh offers must not restart
    /// the stall clock. Under sustained append load (rounds more frequent
    /// than the timeout), a peer stalled at a dropped chunk still gets its
    /// fallback re-offer within one timeout window.
    #[test]
    fn sustained_append_load_does_not_starve_the_retransmit_fallback() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(3);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer.clone()])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        )
        .with_retransmit_timeout(Duration::from_millis(40));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(node.round(None), 3, "initial window offered");
        let _ = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        // The peer never acks (its chunk was "dropped"); meanwhile the
        // workload keeps appending, so every round has something fresh to
        // offer. The stall clock must keep running regardless.
        let deadline = Instant::now() + Duration::from_millis(400);
        let mut appended = 3;
        while node.metrics.retransmits.get() == 0 {
            assert!(
                Instant::now() < deadline,
                "retransmit fallback starved by sustained fresh offers"
            );
            maintainer
                .append(vec![AppendPayload::new(
                    TagSet::new(),
                    format!("w{appended}"),
                )])
                .unwrap();
            appended += 1;
            std::thread::sleep(Duration::from_millis(10));
            node.round(None);
        }
        // The fallback re-offered from the known cut: the whole window,
        // starting back at TOId 1, goes out again.
        let reoffer = std::iter::from_fn(|| link_rx.recv_timeout(Duration::from_millis(100)).ok())
            .find(|m| m.records.first().is_some_and(|r| r.toid() == TOId(1)))
            .expect("fallback re-offer starts at the known cut");
        assert!(reoffer.records.len() >= 3);
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    /// Regression for cursor gap-skipping: with several maintainers per
    /// sender, a lower TOId surfacing late (its maintainer's group commit
    /// in flight) must not be passed over by a cursor already advanced by
    /// a faster maintainer's higher TOIds. The stable frontier holds the
    /// chunk back until every maintainer has scanned past the gap.
    #[test]
    fn late_record_from_slow_maintainer_is_not_skipped() {
        let shutdown = Shutdown::new();
        let dc = DatacenterId(0);
        // Two maintainers, striped 4 LIds each: m0 owns [0,4), m1 [4,8).
        let journal = EpochJournal::new(RangeMap::new(2, 4));
        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for i in 0..2u16 {
            let core = MaintainerCore::new(MaintainerId(i), dc, journal.clone());
            let station = Arc::new(ServiceStation::new(
                format!("m{i}"),
                StationConfig::uncapped(),
            ));
            let (handle, thread) = chariots_flstore::node::spawn_maintainer(
                core,
                station,
                Fabric::new(),
                Duration::from_millis(1),
                shutdown.clone(),
            );
            handles.push(ReplicaGroupHandle::solo(handle));
            threads.push(thread);
        }
        let local = |toid: u64, body: &str| {
            Record::new(
                RecordId::new(dc, TOId(toid)),
                VersionVector::new(2),
                TagSet::new(),
                Bytes::copy_from_slice(body.as_bytes()),
            )
        };
        let external = |toid: u64| {
            Record::new(
                RecordId::new(DatacenterId(1), TOId(toid)),
                VersionVector::new(2),
                TagSet::new(),
                Bytes::new(),
            )
        };
        // TOId order is LId order for local records: T1@L0, T2@L1 (m0),
        // T3@L4 (m1). T2's store lags — m0's frontier stays at L1 — while
        // m1 has already persisted T3.
        handles[0].store(vec![
            Entry::new(LId(0), local(1, "a")),
            Entry::new(LId(2), external(1)),
            Entry::new(LId(3), external(2)),
        ]);
        handles[1].store(vec![Entry::new(LId(4), local(3, "c"))]);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            dc,
            Arc::new(RwLock::new(handles.clone())),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        );
        std::thread::sleep(Duration::from_millis(10));
        // T3 is cached but unstable (m0's scan stops at its frontier, L1):
        // only T1 ships, and the cursor stays short of the gap.
        assert_eq!(node.round(None), 1, "chunk stops at the stable frontier");
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 1);
        assert_eq!(msg.records[0].toid(), TOId(1));
        // The slow store lands; the frontier and the stable bound advance.
        handles[0].store(vec![Entry::new(LId(1), local(2, "b"))]);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(node.round(None), 2, "gap record and successor ship");
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        let toids: Vec<TOId> = msg.records.iter().map(|r| r.toid()).collect();
        assert_eq!(toids, vec![TOId(2), TOId(3)], "in order, nothing skipped");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn full_reoffer_policy_matches_seed_behavior() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(3);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, _link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        )
        .with_policy(false);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(node.round(None), 3);
        // No ack: the baseline re-offers the whole window every round.
        assert_eq!(node.round(None), 3, "re-offered until acknowledged");
        assert_eq!(node.round(None), 3);
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn shared_chunk_fans_out_to_peers_at_the_same_cursor() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(4);
        let atable = Arc::new(RwLock::new(ATable::new(3)));
        let (tx1, rx1, _h1) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let (tx2, rx2, _h2) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), tx1), (DatacenterId(2), tx2)],
        );
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(node.round(None), 8, "4 records offered to each peer");
        let m1 = rx1.recv_timeout(Duration::from_secs(1)).unwrap();
        let m2 = rx2.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m1.records.len(), 4);
        assert!(
            Arc::ptr_eq(&m1.records, &m2.records),
            "both peers share one payload allocation"
        );
        assert_eq!(
            node.metrics.chunks.get(),
            1,
            "one distinct chunk built, fanned out to both peers"
        );
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn chunks_respect_the_byte_bound() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(6);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        )
        .with_max_chunk_bytes(1); // every record alone exceeds the bound
        std::thread::sleep(Duration::from_millis(10));
        // A chunk always makes progress: exactly one record per round.
        assert_eq!(node.round(None), 1);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 1);
        assert_eq!(msg.records[0].toid(), TOId(1));
        assert_eq!(node.round(None), 1, "cursor advanced to the next record");
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records[0].toid(), TOId(2));
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn cache_cap_evicts_and_rehydrates_for_a_lagging_peer() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(12);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            Arc::clone(&atable),
            vec![(DatacenterId(1), link_tx)],
        )
        .with_cache_cap(4);
        std::thread::sleep(Duration::from_millis(10));
        // The cap evicts the 8 oldest of the 12 scanned records into the
        // location index — but the peer's cursor is still at zero, so the
        // round re-hydrates them by point lookup and the offer still
        // starts at TOId 1. Nothing is lost.
        assert_eq!(node.round(None), 12);
        assert_eq!(node.metrics.cache_evicted.get(), 8, "12 scanned, 4 kept");
        assert_eq!(node.evicted_len(), 0, "rehydration emptied the index");
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.records.len(), 12);
        assert_eq!(
            msg.records[0].toid(),
            TOId(1),
            "offer starts below the eviction high-water: rehydrated"
        );
        // Once the peer acks everything, the cache empties as before.
        atable.write().merge_row(
            DatacenterId(1),
            &VersionVector::from_entries(vec![TOId(12), TOId(0)]),
        );
        node.round(None);
        assert_eq!(node.cache_len(), 0);
        assert_eq!(node.evicted_len(), 0);
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }

    /// The eviction guard: a chunk never offers past a TOId that is still
    /// only in the eviction index (its re-read failed), because the peer's
    /// cursor would skip it permanently.
    #[test]
    fn chunk_stops_short_of_an_unrehydrated_eviction() {
        let rec = |toid: u64| Cached {
            midx: 0,
            lid: LId(toid - 1),
            record: Record::new(
                RecordId::new(DatacenterId(0), TOId(toid)),
                VersionVector::new(2),
                TagSet::new(),
                Bytes::new(),
            ),
        };
        let cache: BTreeMap<TOId, Cached> = [1u64, 2, 4, 5]
            .into_iter()
            .map(|t| (TOId(t), rec(t)))
            .collect();
        let evicted: BTreeMap<TOId, (usize, LId)> = [(TOId(3), (0usize, LId(2)))].into();
        let chunk = build_chunk(&cache, &evicted, TOId::NONE, TOId(5), 512, 1 << 20);
        let toids: Vec<TOId> = chunk.iter().map(|r| r.toid()).collect();
        assert_eq!(toids, vec![TOId(1), TOId(2)], "stops before the hole");
        // Once the hole heals (record back in cache), the rest ships.
        let mut cache = cache;
        cache.insert(TOId(3), rec(3));
        let chunk = build_chunk(&cache, &BTreeMap::new(), TOId::NONE, TOId(5), 512, 1 << 20);
        assert_eq!(chunk.len(), 5);
    }

    #[test]
    fn empty_rounds_still_gossip_applied_cut() {
        let (maintainer, shutdown, threads) = maintainer_with_local_records(0);
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        atable
            .write()
            .observe(DatacenterId(0), DatacenterId(0), TOId(7));
        let (link_tx, link_rx, _h) = Link::spawn_simple::<PropagationMsg>(LinkConfig::default());
        let mut node = SenderNode::new(
            DatacenterId(0),
            Arc::new(RwLock::new(vec![maintainer])),
            0,
            1,
            atable,
            vec![(DatacenterId(1), link_tx)],
        );
        node.round(None);
        let msg = link_rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(msg.records.is_empty());
        assert_eq!(msg.applied.get(DatacenterId(0)), TOId(7));
        assert!(node.metrics.bytes.get() > 0, "gossip bytes are counted");
        assert_eq!(node.metrics.chunks.get(), 0, "heartbeats are not chunks");
        shutdown.signal();
        for t in threads {
            t.join().unwrap();
        }
    }
}
