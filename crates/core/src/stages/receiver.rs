//! The receivers stage (§6.2): the ingress for records propagated from
//! other datacenters.
//!
//! Receivers drain the WAN links, record the sending datacenter's applied
//! cut in the shared ATable (the knowledge that drives propagation
//! filtering and GC), and forward the records to the batchers. When a
//! message actually raises the ATable — new knowledge, not a redundant
//! heartbeat — the receiver signals the local senders' wakeup so the next
//! propagation round runs immediately instead of waiting out the heartbeat
//! floor. Gating the signal on the rise keeps the WAN quiet: redundant
//! gossip never triggers a reply round, so two event-driven datacenters
//! cannot ping-pong each other awake.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chariots_simnet::{Counter, Notify, PipelineTracer, ServiceStation, Shutdown};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::RwLock;

use crate::atable::ATable;
use crate::message::{Incoming, PropagationMsg};
use crate::stages::batcher::BatcherHandle;
use crate::stages::StageHealth;

/// Spawns a receiver node draining `wan_rx`. Multiple receivers of one
/// datacenter share the same channel (crossbeam channels are MPMC), exactly
/// like multiple machines behind one ingress VIP.
#[allow(clippy::too_many_arguments)]
pub fn spawn_receiver(
    wan_rx: Receiver<PropagationMsg>,
    batchers: Arc<RwLock<Vec<BatcherHandle>>>,
    atable: Arc<RwLock<ATable>>,
    wakeup: Notify,
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
    tracer: PipelineTracer,
    health: StageHealth,
) -> (Counter, JoinHandle<()>) {
    let processed = Counter::new();
    let counter = processed.clone();
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let stage = tracer.stage("receiver");
            let mut rr = 0usize;
            loop {
                if shutdown.is_signaled() {
                    return;
                }
                // A receiver holds nothing between iterations; its health
                // is entirely the WAN channel backlog behind it.
                health.depth.set(wan_rx.len() as i64);
                let msg = match wan_rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                };
                let n = msg.records.len() as u64;
                // Empty heartbeats (applied-cut gossip) cost the ingress
                // machine nothing record-shaped: charging them a full
                // record unit would let idle gossip eat serve capacity.
                if n > 0 {
                    station.note_arrival(n);
                    if station.serve(n).is_err() {
                        continue; // crashed: the ATable loop re-sends
                    }
                } else if station.is_crashed() {
                    continue;
                }
                processed.add(n);
                // The sender's applied cut: everything `from` has
                // incorporated — row `from` of our ATable. A rise means our
                // senders may have new room to offer (or prune): wake them.
                if atable.write().merge_row(msg.from, &msg.applied) {
                    wakeup.notify();
                }
                let batchers = batchers.read();
                if batchers.is_empty() {
                    continue;
                }
                let t0 = std::time::Instant::now();
                for record in msg.records.iter() {
                    // A foreign record's trace does not cross the WAN: this
                    // datacenter re-samples it under its own tracer.
                    let record = record.clone().with_trace(tracer.sample());
                    rr = (rr + 1) % batchers.len();
                    batchers[rr].send(Incoming::External(record));
                }
                if n > 0 {
                    stage.observe(t0.elapsed());
                }
            }
        })
        .expect("spawn receiver");
    (counter, thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::batcher::spawn_batcher;
    use crate::stages::filter::FilterRouting;
    use bytes::Bytes;
    use chariots_simnet::StationConfig;
    use chariots_types::{DatacenterId, Record, RecordId, TOId, TagSet, VersionVector};
    use crossbeam::channel::unbounded;
    use std::time::Instant;

    fn test_batchers(
        shutdown: &Shutdown,
    ) -> (
        Arc<RwLock<Vec<BatcherHandle>>>,
        crossbeam::channel::Receiver<Vec<Incoming>>,
        JoinHandle<()>,
    ) {
        let (filter_tx, filter_rx) = unbounded();
        let filter_ingress = crate::stages::filter::FilterIngress::from_parts(
            filter_tx,
            Arc::new(ServiceStation::new("f0", StationConfig::uncapped())),
            chariots_simnet::StageTracer::disabled(),
        );
        let plan = Arc::new(RwLock::new(crate::routing_plan::RoutingPlan::new(
            FilterRouting::new(1, 2),
        )));
        let (batcher, batcher_thread) = spawn_batcher(
            plan,
            1, // flush immediately
            Duration::from_millis(1),
            Arc::new(RwLock::new(vec![filter_ingress])),
            Arc::new(ServiceStation::new("b0", StationConfig::uncapped())),
            shutdown.clone(),
            "batcher".into(),
            chariots_simnet::StageTracer::disabled(),
            StageHealth::disabled(),
        );
        (
            Arc::new(RwLock::new(vec![batcher])),
            filter_rx,
            batcher_thread,
        )
    }

    #[test]
    fn receiver_updates_atable_and_forwards() {
        let shutdown = Shutdown::new();
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let station = Arc::new(ServiceStation::new("r0", StationConfig::uncapped()));
        let (batchers, filter_rx, batcher_thread) = test_batchers(&shutdown);
        let (wan_tx, wan_rx) = unbounded();
        let mut wakeup = Notify::new();
        let (counter, recv_thread) = spawn_receiver(
            wan_rx,
            batchers,
            Arc::clone(&atable),
            wakeup.clone(),
            station,
            shutdown.clone(),
            "receiver".into(),
            PipelineTracer::disabled(),
            StageHealth::disabled(),
        );

        let record = Record::new(
            RecordId::new(DatacenterId(1), TOId(1)),
            VersionVector::new(2),
            TagSet::new(),
            Bytes::from_static(b"ext"),
        );
        wan_tx
            .send(PropagationMsg {
                from: DatacenterId(1),
                records: Arc::from(vec![record]),
                applied: VersionVector::from_entries(vec![TOId(0), TOId(1)]),
            })
            .unwrap();

        // The record flows receiver → batcher → filter channel.
        let batch = filter_rx
            .recv_timeout(Duration::from_secs(2))
            .expect("record forwarded");
        assert_eq!(batch.len(), 1);
        // And the ATable learned DC 1's applied cut.
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            let known = atable.read().get(DatacenterId(1), DatacenterId(1));
            if known == TOId(1) {
                break;
            }
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(counter.get(), 1);
        // The ATable rise signalled the senders' wakeup.
        assert!(wakeup.try_consume(), "knowledge rise wakes the senders");
        shutdown.signal();
        recv_thread.join().unwrap();
        batcher_thread.join().unwrap();
    }

    /// Regression: empty applied-cut heartbeats must not be charged as
    /// record work at the ingress station — under the old `n.max(1)`
    /// accounting, the gossip floor alone consumed serve capacity. And a
    /// redundant heartbeat (no ATable rise) must not wake the senders.
    #[test]
    fn empty_heartbeats_cost_nothing_and_do_not_wake_senders() {
        let shutdown = Shutdown::new();
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let station = Arc::new(ServiceStation::new("r0", StationConfig::uncapped()));
        let (batchers, _filter_rx, batcher_thread) = test_batchers(&shutdown);
        let (wan_tx, wan_rx) = unbounded();
        let mut wakeup = Notify::new();
        let (counter, recv_thread) = spawn_receiver(
            wan_rx,
            batchers,
            Arc::clone(&atable),
            wakeup.clone(),
            Arc::clone(&station),
            shutdown.clone(),
            "receiver".into(),
            PipelineTracer::disabled(),
            StageHealth::disabled(),
        );

        let cut = VersionVector::from_entries(vec![TOId(0), TOId(3)]);
        for _ in 0..5 {
            wan_tx
                .send(PropagationMsg {
                    from: DatacenterId(1),
                    records: Arc::from(vec![]),
                    applied: cut.clone(),
                })
                .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(1);
        while atable.read().get(DatacenterId(1), DatacenterId(1)) < TOId(3) {
            assert!(Instant::now() < deadline, "heartbeats still merge the cut");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Give the remaining redundant heartbeats time to drain.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(station.served(), 0, "heartbeats are not record work");
        assert_eq!(counter.get(), 0);
        // Exactly the first heartbeat raised knowledge; the four redundant
        // ones coalesce into that single pending signal.
        assert!(wakeup.try_consume());
        assert!(!wakeup.try_consume(), "redundant gossip does not re-wake");
        shutdown.signal();
        recv_thread.join().unwrap();
        batcher_thread.join().unwrap();
    }
}
