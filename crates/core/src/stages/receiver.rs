//! The receivers stage (§6.2): the ingress for records propagated from
//! other datacenters.
//!
//! Receivers drain the WAN links, record the sending datacenter's applied
//! cut in the shared ATable (the knowledge that drives propagation
//! filtering and GC), and forward the records to the batchers.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use chariots_simnet::{Counter, PipelineTracer, ServiceStation, Shutdown};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::RwLock;

use crate::atable::ATable;
use crate::message::{Incoming, PropagationMsg};
use crate::stages::batcher::BatcherHandle;

/// Spawns a receiver node draining `wan_rx`. Multiple receivers of one
/// datacenter share the same channel (crossbeam channels are MPMC), exactly
/// like multiple machines behind one ingress VIP.
pub fn spawn_receiver(
    wan_rx: Receiver<PropagationMsg>,
    batchers: Arc<RwLock<Vec<BatcherHandle>>>,
    atable: Arc<RwLock<ATable>>,
    station: Arc<ServiceStation>,
    shutdown: Shutdown,
    name: String,
    tracer: PipelineTracer,
) -> (Counter, JoinHandle<()>) {
    let processed = Counter::new();
    let counter = processed.clone();
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let stage = tracer.stage("receiver");
            let mut rr = 0usize;
            loop {
                if shutdown.is_signaled() {
                    return;
                }
                let msg = match wan_rx.recv_timeout(Duration::from_millis(20)) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                };
                let n = msg.records.len() as u64;
                station.note_arrival(n.max(1));
                if station.serve(n.max(1)).is_err() {
                    continue; // crashed: the ATable loop re-sends
                }
                processed.add(n);
                // The sender's applied cut: everything `from` has
                // incorporated — row `from` of our ATable.
                atable.write().merge_row(msg.from, &msg.applied);
                let batchers = batchers.read();
                if batchers.is_empty() {
                    continue;
                }
                let t0 = std::time::Instant::now();
                for record in msg.records {
                    // A foreign record's trace does not cross the WAN: this
                    // datacenter re-samples it under its own tracer.
                    let record = record.with_trace(tracer.sample());
                    rr = (rr + 1) % batchers.len();
                    batchers[rr].send(Incoming::External(record));
                }
                if n > 0 {
                    stage.observe(t0.elapsed());
                }
            }
        })
        .expect("spawn receiver");
    (counter, thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::batcher::spawn_batcher;
    use crate::stages::filter::FilterRouting;
    use bytes::Bytes;
    use chariots_simnet::StationConfig;
    use chariots_types::{DatacenterId, Record, RecordId, TOId, TagSet, VersionVector};
    use crossbeam::channel::unbounded;
    use std::time::Instant;

    #[test]
    fn receiver_updates_atable_and_forwards() {
        let shutdown = Shutdown::new();
        let atable = Arc::new(RwLock::new(ATable::new(2)));
        let (filter_tx, filter_rx) = unbounded();
        let station = Arc::new(ServiceStation::new("r0", StationConfig::uncapped()));
        let filter_ingress = crate::stages::filter::FilterIngress::from_parts(
            filter_tx,
            Arc::new(ServiceStation::new("f0", StationConfig::uncapped())),
            chariots_simnet::StageTracer::disabled(),
        );
        let plan = Arc::new(RwLock::new(crate::routing_plan::RoutingPlan::new(
            FilterRouting::new(1, 2),
        )));
        let (batcher, batcher_thread) = spawn_batcher(
            plan,
            1, // flush immediately
            Duration::from_millis(1),
            Arc::new(RwLock::new(vec![filter_ingress])),
            Arc::new(ServiceStation::new("b0", StationConfig::uncapped())),
            shutdown.clone(),
            "batcher".into(),
            chariots_simnet::StageTracer::disabled(),
        );
        let batchers = Arc::new(RwLock::new(vec![batcher]));
        let (wan_tx, wan_rx) = unbounded();
        let (counter, recv_thread) = spawn_receiver(
            wan_rx,
            batchers,
            Arc::clone(&atable),
            station,
            shutdown.clone(),
            "receiver".into(),
            PipelineTracer::disabled(),
        );

        let record = Record::new(
            RecordId::new(DatacenterId(1), TOId(1)),
            VersionVector::new(2),
            TagSet::new(),
            Bytes::from_static(b"ext"),
        );
        wan_tx
            .send(PropagationMsg {
                from: DatacenterId(1),
                records: vec![record],
                applied: VersionVector::from_entries(vec![TOId(0), TOId(1)]),
            })
            .unwrap();

        // The record flows receiver → batcher → filter channel.
        let batch = filter_rx
            .recv_timeout(Duration::from_secs(2))
            .expect("record forwarded");
        assert_eq!(batch.len(), 1);
        // And the ATable learned DC 1's applied cut.
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            let known = atable.read().get(DatacenterId(1), DatacenterId(1));
            if known == TOId(1) {
                break;
            }
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(counter.get(), 1);
        shutdown.signal();
        recv_thread.join().unwrap();
        batcher_thread.join().unwrap();
    }
}
