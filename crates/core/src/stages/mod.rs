//! The six pipeline stages of a Chariots datacenter (§6.2, Fig. 6):
//! application clients and [`receiver`]s feed [`batcher`]s, which feed
//! [`filter`]s, which feed [`queue`]s, which persist into FLStore's log
//! maintainers; [`sender`]s propagate local records to other datacenters.

pub mod batcher;
pub mod filter;
pub mod queue;
pub mod receiver;
pub mod sender;

use chariots_simnet::{Gauge, MetricsRegistry};

/// The pipeline stages in flow order, as named in metrics and traces:
/// `dc{N}.{stage}.latency_us` histograms and `dc{N}.{stage}{i}.in` counters
/// both draw from this list.
pub const STAGE_NAMES: [&str; 6] = ["receiver", "batcher", "filter", "queue", "store", "sender"];

/// Per-node health gauges every pipeline stage refreshes once per loop
/// iteration: how much work is waiting at the machine's door (inbound
/// channel depth) and how much is held inside the stage itself (batcher
/// buffers, filter reorder parking, queue staging). Gauges are point
/// reads, so refreshing them costs two relaxed stores per iteration —
/// cheap enough to leave on always.
#[derive(Clone, Debug, Default)]
pub struct StageHealth {
    /// Records waiting in the node's inbound channel.
    pub depth: Gauge,
    /// Records held inside the stage (buffered, parked, or staged).
    pub occupancy: Gauge,
}

impl StageHealth {
    /// Unregistered gauges (tests, standalone nodes).
    pub fn disabled() -> Self {
        StageHealth::default()
    }

    /// Gauges registered as `{prefix}.{node}.queue.depth` and
    /// `{prefix}.{node}.occupancy`, where `node` names the instance
    /// (e.g. `batcher0`).
    pub fn registered(registry: &MetricsRegistry, prefix: &str, node: &str) -> Self {
        StageHealth {
            depth: registry.gauge(&format!("{prefix}.{node}.queue.depth")),
            occupancy: registry.gauge(&format!("{prefix}.{node}.occupancy")),
        }
    }
}

pub use batcher::{spawn_batcher, BatcherCore, BatcherHandle};
pub use filter::{spawn_filter, FilterCore, FilterHandle, FilterIngress, FilterRouting};
pub use queue::{spawn_queue, QueueCore, QueueHandle, QueueIngress, QueueNodeConfig};
pub use receiver::spawn_receiver;
pub use sender::{spawn_sender, SenderHealth, SenderMetrics, SenderNode};
