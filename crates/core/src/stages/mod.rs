//! The six pipeline stages of a Chariots datacenter (§6.2, Fig. 6):
//! application clients and [`receiver`]s feed [`batcher`]s, which feed
//! [`filter`]s, which feed [`queue`]s, which persist into FLStore's log
//! maintainers; [`sender`]s propagate local records to other datacenters.

pub mod batcher;
pub mod filter;
pub mod queue;
pub mod receiver;
pub mod sender;

/// The pipeline stages in flow order, as named in metrics and traces:
/// `dc{N}.{stage}.latency_us` histograms and `dc{N}.{stage}{i}.in` counters
/// both draw from this list.
pub const STAGE_NAMES: [&str; 6] = ["receiver", "batcher", "filter", "queue", "store", "sender"];

pub use batcher::{spawn_batcher, BatcherCore, BatcherHandle};
pub use filter::{spawn_filter, FilterCore, FilterHandle, FilterIngress, FilterRouting};
pub use queue::{spawn_queue, QueueCore, QueueHandle, QueueIngress, QueueNodeConfig};
pub use receiver::spawn_receiver;
pub use sender::{spawn_sender, SenderMetrics, SenderNode};
