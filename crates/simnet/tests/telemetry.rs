//! Telemetry-plane concurrency: scraping under full producer load must
//! never deadlock, and the collector's own cost must stay bounded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use chariots_simnet::{Collector, CollectorConfig, EventKind, MetricsRegistry};

#[test]
fn scraping_under_load_never_deadlocks_and_overhead_stays_bounded() {
    let registries: Vec<MetricsRegistry> = (0..4)
        .map(|i| MetricsRegistry::new(format!("dc{i}")))
        .collect();
    let handle = Collector::spawn(
        registries.clone(),
        CollectorConfig::with_interval(Duration::from_millis(1)),
    );

    // Two producers per registry hammer every metric type plus the
    // journal, while a dashboard reader polls the live view — all
    // concurrent with 1 ms scrapes.
    let stop = AtomicBool::new(false);
    let mut produced = 0u64;
    let mut frames = 0u64;
    std::thread::scope(|s| {
        let mut producers = Vec::new();
        for (i, reg) in registries.iter().enumerate() {
            for p in 0..2 {
                let stop = &stop;
                producers.push(s.spawn(move || {
                    let c = reg.counter(&format!("dc{i}.stage{p}.in"));
                    let g = reg.gauge(&format!("dc{i}.stage{p}.queue.depth"));
                    let h = reg.histogram(&format!("dc{i}.stage{p}.latency_us"));
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        c.add(1);
                        g.set((n % 100) as i64);
                        h.record(n % 10_000);
                        if n % 1_000 == 0 {
                            reg.journal().publish(
                                &format!("dc{i}.stage{p}"),
                                None,
                                EventKind::GcSweep {
                                    bound: n,
                                    collected: 1_000,
                                },
                            );
                        }
                        n += 1;
                    }
                    n
                }));
            }
        }
        let reader = {
            let stop = &stop;
            let handle = &handle;
            s.spawn(move || {
                let mut polls = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let live = handle.live(8, 16);
                    assert!(live.events.len() <= 16);
                    polls += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                polls
            })
        };

        std::thread::sleep(Duration::from_millis(250));
        stop.store(true, Ordering::Relaxed);
        for p in producers {
            produced += p.join().expect("producer panicked");
        }
        frames = reader.join().expect("reader panicked");
    });

    assert!(produced > 0, "producers made progress under scraping");
    assert!(frames > 0, "live view stayed readable under load");
    assert!(
        handle.ticks() >= 10,
        "collector kept scraping under load (ticks={})",
        handle.ticks()
    );

    // Bounded overhead: a scrape pass over 4 registries × 6 metrics plus a
    // journal drain is micro-work; even a loaded CI machine clears it far
    // inside 100 ms. An unbounded p99 here means a scrape is holding a
    // lock it shouldn't.
    let cost = handle.scrape_cost();
    assert!(
        cost.p99 < 100_000,
        "scrape p99 {}µs — collector overhead unbounded",
        cost.p99
    );

    // Clean shutdown under load: stop() joins, takes a final scrape, and
    // the per-tick deltas telescope to the cumulative totals.
    let timeline = handle.stop();
    assert!(!timeline.ticks.is_empty());
    let scraped: u64 = (0..4)
        .flat_map(|i| (0..2).map(move |p| format!("dc{i}.stage{p}.in")))
        .map(|key| timeline.counter_series(&key).deltas.iter().sum::<u64>())
        .sum();
    assert_eq!(
        scraped, produced,
        "per-tick deltas telescope to the produced total"
    );
    assert!(
        !timeline.events.is_empty(),
        "journal events drained into the timeline"
    );
}
