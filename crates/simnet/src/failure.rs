//! Heartbeat-based failure detection for simulated machines.
//!
//! Real deployments detect crashed nodes by the absence of heartbeats; this
//! module reproduces that signal for the simulated cluster. Worker threads
//! call [`FailureDetector::heartbeat`] while they are healthy (a crashed
//! [`ServiceStation`](crate::ServiceStation) stops its owner from beating),
//! and a [`FailureMonitor`] thread periodically asks the detector for the
//! set of *suspected* machines — those whose last heartbeat is older than
//! the suspicion timeout — and hands them to a callback (e.g. a failover
//! routine).
//!
//! The detector is deliberately simple: no phi-accrual, no gossip — a
//! single tunable suspicion timeout, which is all the deterministic
//! simulation needs. False suspicion under load is possible exactly as in a
//! real cluster, and callers must tolerate a suspected machine coming back.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::shutdown::Shutdown;

#[derive(Debug)]
struct Inner {
    suspicion_timeout: Duration,
    beats: Mutex<HashMap<String, Instant>>,
}

/// Tracks per-machine heartbeats and reports machines whose heartbeat is
/// older than the suspicion timeout. Clones share state.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    inner: Arc<Inner>,
}

impl FailureDetector {
    /// Creates a detector that suspects a machine after `suspicion_timeout`
    /// without a heartbeat.
    pub fn new(suspicion_timeout: Duration) -> Self {
        FailureDetector {
            inner: Arc::new(Inner {
                suspicion_timeout,
                beats: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The configured suspicion timeout.
    pub fn suspicion_timeout(&self) -> Duration {
        self.inner.suspicion_timeout
    }

    /// Registers `key` with a fresh heartbeat (a machine is healthy until
    /// proven otherwise — registering starts its timeout clock).
    pub fn register(&self, key: impl Into<String>) {
        self.inner.beats.lock().insert(key.into(), Instant::now());
    }

    /// Removes `key` from monitoring (machine decommissioned).
    pub fn deregister(&self, key: &str) {
        self.inner.beats.lock().remove(key);
    }

    /// Records a heartbeat from `key`. Unregistered keys are registered
    /// implicitly.
    pub fn heartbeat(&self, key: &str) {
        let mut beats = self.inner.beats.lock();
        match beats.get_mut(key) {
            Some(at) => *at = Instant::now(),
            None => {
                beats.insert(key.to_string(), Instant::now());
            }
        }
    }

    /// Whether `key` is currently suspected: registered, and silent for
    /// longer than the suspicion timeout. Unknown keys are not suspected.
    pub fn is_suspected(&self, key: &str) -> bool {
        let beats = self.inner.beats.lock();
        match beats.get(key) {
            Some(at) => at.elapsed() > self.inner.suspicion_timeout,
            None => false,
        }
    }

    /// Age of `key`'s most recent heartbeat, if registered.
    pub fn last_heartbeat_age(&self, key: &str) -> Option<Duration> {
        self.inner.beats.lock().get(key).map(|at| at.elapsed())
    }

    /// All currently suspected machines, sorted by key.
    pub fn suspects(&self) -> Vec<String> {
        let beats = self.inner.beats.lock();
        let mut out: Vec<String> = beats
            .iter()
            .filter(|(_, at)| at.elapsed() > self.inner.suspicion_timeout)
            .map(|(k, _)| k.clone())
            .collect();
        out.sort();
        out
    }
}

/// A periodic monitor thread over a [`FailureDetector`].
///
/// Every `period` it collects the detector's suspect set and invokes the
/// callback (even when the set is empty, so the callback can double as a
/// general periodic maintenance hook — anti-entropy, lag metrics, …).
#[derive(Debug)]
pub struct FailureMonitor {
    handle: Option<JoinHandle<()>>,
    shutdown: Shutdown,
}

impl FailureMonitor {
    /// Spawns the monitor thread. `on_tick` runs on the monitor thread; it
    /// must not block for long relative to `period`.
    pub fn spawn(
        detector: FailureDetector,
        period: Duration,
        mut on_tick: impl FnMut(&[String]) + Send + 'static,
    ) -> Self {
        let shutdown = Shutdown::new();
        let stop = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("failure-monitor".into())
            .spawn(move || {
                while !stop.is_signaled() {
                    std::thread::sleep(period);
                    if stop.is_signaled() {
                        break;
                    }
                    let suspects = detector.suspects();
                    on_tick(&suspects);
                }
            })
            .expect("spawn failure monitor");
        FailureMonitor {
            handle: Some(handle),
            shutdown,
        }
    }

    /// Signals the monitor to stop and joins its thread.
    pub fn stop(mut self) {
        self.shutdown.signal();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FailureMonitor {
    fn drop(&mut self) {
        self.shutdown.signal();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fresh_registration_is_not_suspected() {
        let d = FailureDetector::new(Duration::from_millis(50));
        d.register("m0");
        assert!(!d.is_suspected("m0"));
        assert!(d.suspects().is_empty());
    }

    #[test]
    fn silence_beyond_timeout_is_suspected() {
        let d = FailureDetector::new(Duration::from_millis(20));
        d.register("m0");
        d.register("m1");
        std::thread::sleep(Duration::from_millis(40));
        d.heartbeat("m1");
        assert!(d.is_suspected("m0"));
        assert!(!d.is_suspected("m1"));
        assert_eq!(d.suspects(), vec!["m0".to_string()]);
    }

    #[test]
    fn heartbeat_clears_suspicion() {
        let d = FailureDetector::new(Duration::from_millis(20));
        d.register("m0");
        std::thread::sleep(Duration::from_millis(40));
        assert!(d.is_suspected("m0"));
        d.heartbeat("m0");
        assert!(!d.is_suspected("m0"));
    }

    #[test]
    fn unknown_and_deregistered_keys_are_not_suspected() {
        let d = FailureDetector::new(Duration::from_millis(1));
        assert!(!d.is_suspected("ghost"));
        d.register("m0");
        std::thread::sleep(Duration::from_millis(10));
        d.deregister("m0");
        assert!(!d.is_suspected("m0"));
    }

    #[test]
    fn monitor_reports_suspects_periodically() {
        let d = FailureDetector::new(Duration::from_millis(10));
        d.register("m0");
        let ticks = Arc::new(AtomicUsize::new(0));
        let suspected = Arc::new(AtomicUsize::new(0));
        let (t, s) = (Arc::clone(&ticks), Arc::clone(&suspected));
        let monitor = FailureMonitor::spawn(d.clone(), Duration::from_millis(5), move |sus| {
            t.fetch_add(1, Ordering::Relaxed);
            if !sus.is_empty() {
                s.fetch_add(1, Ordering::Relaxed);
            }
        });
        std::thread::sleep(Duration::from_millis(60));
        monitor.stop();
        assert!(ticks.load(Ordering::Relaxed) >= 3);
        assert!(suspected.load(Ordering::Relaxed) >= 1);
    }
}
