//! Real-socket transport backend: length-prefixed, CRC-checked frames over
//! `std::net::TcpStream`.
//!
//! The simulated substrate moves messages over crossbeam channels; this
//! module moves the *same* `Wire`-encoded messages over real TCP sockets so
//! the pipeline's numbers can be hardware-limited instead of
//! simulation-limited. The protocol code upstream is byte-for-byte
//! identical on both backends — only the substrate changes.
//!
//! Pieces:
//!
//! * [`FrameDecoder`] — torn-frame-safe accumulation of the wire format
//!   `[len u32 LE][crc32 u32 LE][payload]`. Corrupt input is rejected,
//!   never panicked on, and a CRC-failed frame does not mis-frame the next
//!   message (the length prefix still delimits it).
//! * [`TcpSender`] — a pooled, reconnecting connection to one peer. One
//!   serialization per message into a reusable buffer, then a vectored
//!   write of header + payload: zero intermediate copies of record bodies.
//! * [`spawn_wire_listener`] — binds `127.0.0.1:0`, decodes inbound frames
//!   into typed messages, and hands them to a callback (one reader thread
//!   per connection, reusable receive buffer).
//! * [`ReplyTo`] — a reply slot that is a plain channel sender on the
//!   simnet backend and a dial-back (address, token) pair on the TCP
//!   backend, so request/reply RPCs cross the wire without the caller
//!   changing shape.
//!
//! Failures surface as [`ChariotsError::Transport`], which the client
//! retry policy classifies as transient: the sender reconnects on the next
//! call, so a reset mid-burst looks like a failover window, not an outage.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use bytes::{Buf, Bytes, BytesMut};
use chariots_types::{crc32, ChariotsError, Wire, WireReader};
use crossbeam::channel::Sender;
use parking_lot::Mutex;

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::shutdown::Shutdown;

/// Frame header: `[len u32 LE][crc32 u32 LE]`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a single frame's payload. A corrupted or hostile length
/// prefix cannot make the decoder allocate more than this.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// How often blocking socket loops wake up to poll shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Per-endpoint transport counters, registered like the `chariots.wan.*`
/// family: `{prefix}.chariots.transport.{endpoint}.{metric}`.
#[derive(Debug, Clone, Default)]
pub struct TransportMetrics {
    /// Bytes written to sockets (headers included).
    pub bytes_out: Counter,
    /// Bytes read from sockets.
    pub bytes_in: Counter,
    /// Frames successfully sent or decoded.
    pub frames: Counter,
    /// Times a pooled connection had to be re-established.
    pub reconnects: Counter,
    /// Microseconds spent serializing each outbound message.
    pub serialize_us: Histogram,
}

impl TransportMetrics {
    /// Metrics not attached to any registry (reply-path plumbing, tests).
    pub fn detached() -> Self {
        TransportMetrics::default()
    }

    /// Metrics registered under
    /// `{registry name}.chariots.transport.{endpoint}.*`.
    pub fn registered(registry: &MetricsRegistry, endpoint: &str) -> Self {
        let base = format!("{}.chariots.transport.{endpoint}", registry.name());
        TransportMetrics {
            bytes_out: registry.counter(&format!("{base}.bytes_out")),
            bytes_in: registry.counter(&format!("{base}.bytes_in")),
            frames: registry.counter(&format!("{base}.frames")),
            reconnects: registry.counter(&format!("{base}.reconnects")),
            serialize_us: registry.histogram(&format!("{base}.serialize_us")),
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The payload failed its CRC. The frame was skipped; decoding can
    /// continue at the next length boundary, but callers normally drop the
    /// connection instead of trusting a stream that has already lied once.
    CrcMismatch,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`]. The decoder is
    /// poisoned — there is no trustworthy boundary to resynchronize at —
    /// and the connection must be dropped.
    TooLarge(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::CrcMismatch => write!(f, "frame failed CRC check"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_BYTES}")
            }
        }
    }
}

/// Writes one frame to `w` as a vectored write of header + payload. The
/// payload is borrowed, not copied.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
    let total = FRAME_HEADER_BYTES + payload.len();
    let mut written = 0;
    while written < total {
        let n = if written < FRAME_HEADER_BYTES {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            w.write_vectored(&bufs)?
        } else {
            w.write(&payload[written - FRAME_HEADER_BYTES..])?
        };
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        written += n;
    }
    Ok(())
}

/// Incremental, torn-frame-safe decoder for the wire format. Feed it raw
/// socket bytes with [`extend`](Self::extend); pull complete payloads with
/// [`next_frame`](Self::next_frame). Yielded payloads are zero-copy slices
/// of the accumulation buffer (frozen `Bytes`), so a decoded record body
/// aliases the receive buffer rather than being copied out of it.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
    poisoned: bool,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes read off the socket.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next complete, CRC-valid payload, `Ok(None)` if more bytes are
    /// needed, or an error. After [`FrameError::CrcMismatch`] the bad
    /// frame has been skipped and decoding may continue; after
    /// [`FrameError::TooLarge`] the decoder stays poisoned.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.poisoned {
            return Err(FrameError::TooLarge(MAX_FRAME_BYTES + 1));
        }
        if self.buf.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            self.poisoned = true;
            return Err(FrameError::TooLarge(len));
        }
        if self.buf.len() < FRAME_HEADER_BYTES + len {
            return Ok(None);
        }
        let crc = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        if crc32(&self.buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len]) != crc {
            // The length prefix still delimits the bad frame, so skip it
            // and stay framed for the next message.
            self.buf.advance(FRAME_HEADER_BYTES + len);
            return Err(FrameError::CrcMismatch);
        }
        let mut frame = self.buf.split_to(FRAME_HEADER_BYTES + len);
        frame.advance(FRAME_HEADER_BYTES);
        Ok(Some(frame.freeze()))
    }
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

struct SenderState {
    stream: Option<TcpStream>,
    /// Reusable encode buffer: one serialization per message, no
    /// per-message allocation once the buffer has grown to working size.
    buf: Vec<u8>,
    ever_connected: bool,
}

/// A pooled, reconnecting TCP connection to one peer. `send` serializes
/// the message once into a reusable buffer and writes header + payload
/// with a vectored write. On an I/O error the connection is dropped and
/// re-dialed once within the same call; if that also fails the error
/// surfaces as the transient [`ChariotsError::Transport`] and the *next*
/// call dials fresh — callers under a retry policy ride straight through.
pub struct TcpSender {
    peer: SocketAddr,
    state: Mutex<SenderState>,
    metrics: TransportMetrics,
}

impl TcpSender {
    /// A sender for `peer`. The connection is dialed lazily on first send.
    pub fn new(peer: SocketAddr, metrics: TransportMetrics) -> Self {
        TcpSender {
            peer,
            state: Mutex::new(SenderState {
                stream: None,
                buf: Vec::new(),
                ever_connected: false,
            }),
            metrics,
        }
    }

    /// The peer this sender dials.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Serializes `msg` and sends it as one frame.
    pub fn send<T: Wire>(&self, msg: &T) -> Result<(), ChariotsError> {
        let mut guard = self.state.lock();
        let st = &mut *guard;
        st.buf.clear();
        let t0 = Instant::now();
        msg.encode(&mut st.buf);
        self.metrics
            .serialize_us
            .record(t0.elapsed().as_micros() as u64);
        self.send_buffered(st)
    }

    /// Sends an already-encoded payload as one frame (reply plumbing).
    pub fn send_raw(&self, payload: &[u8]) -> Result<(), ChariotsError> {
        let mut guard = self.state.lock();
        let st = &mut *guard;
        st.buf.clear();
        st.buf.extend_from_slice(payload);
        self.send_buffered(st)
    }

    fn send_buffered(&self, st: &mut SenderState) -> Result<(), ChariotsError> {
        let mut last_err: Option<io::Error> = None;
        for _attempt in 0..2 {
            if st.stream.is_none() {
                if st.ever_connected {
                    self.metrics.reconnects.add(1);
                }
                match TcpStream::connect(self.peer) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        st.ever_connected = true;
                        st.stream = Some(s);
                    }
                    Err(e) => {
                        return Err(ChariotsError::Transport(format!(
                            "connect to {} failed: {e}",
                            self.peer
                        )));
                    }
                }
            }
            let stream = st.stream.as_mut().expect("connected above");
            match write_frame(stream, &st.buf) {
                Ok(()) => {
                    self.metrics.frames.add(1);
                    self.metrics
                        .bytes_out
                        .add((FRAME_HEADER_BYTES + st.buf.len()) as u64);
                    return Ok(());
                }
                Err(e) => {
                    // Reconnect once and retry: a peer restart between
                    // sends otherwise loses exactly one message.
                    st.stream = None;
                    last_err = Some(e);
                }
            }
        }
        Err(ChariotsError::Transport(format!(
            "send to {} failed: {}",
            self.peer,
            last_err.expect("loop exited via error")
        )))
    }
}

impl fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpSender")
            .field("peer", &self.peer)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

/// Binds `127.0.0.1:0` and serves inbound frames to `on_frame` until
/// `shutdown` is signaled. Returns the bound address. One reader thread
/// per connection, each with a reusable receive buffer; threads exit on
/// peer disconnect, any frame error (the stream can no longer be
/// trusted), or shutdown.
pub fn spawn_frame_listener<F>(
    name: &str,
    shutdown: Shutdown,
    metrics: TransportMetrics,
    on_frame: F,
) -> io::Result<SocketAddr>
where
    F: Fn(Bytes) + Send + Clone + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let accept_name = format!("{name}-accept");
    thread::Builder::new()
        .name(accept_name)
        .spawn(move || {
            while !shutdown.is_signaled() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let shutdown = shutdown.clone();
                        let metrics = metrics.clone();
                        let on_frame = on_frame.clone();
                        let _ = thread::Builder::new()
                            .name("transport-conn".into())
                            .spawn(move || serve_connection(stream, shutdown, metrics, on_frame));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => break,
                }
            }
        })
        .map_err(io::Error::other)?;
    Ok(addr)
}

fn serve_connection<F>(
    stream: TcpStream,
    shutdown: Shutdown,
    metrics: TransportMetrics,
    on_frame: F,
) where
    F: Fn(Bytes),
{
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL * 10));
    let mut stream = stream;
    let mut decoder = FrameDecoder::new();
    let mut chunk = vec![0u8; 64 * 1024];
    while !shutdown.is_signaled() {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                metrics.bytes_in.add(n as u64);
                decoder.extend(&chunk[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(payload)) => {
                            metrics.frames.add(1);
                            on_frame(payload);
                        }
                        Ok(None) => break,
                        // A stream that failed framing once cannot be
                        // trusted again: drop the connection and let the
                        // sender reconnect.
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
}

/// Like [`spawn_frame_listener`], but decodes each frame into `T` and
/// silently drops frames that fail to decode (the CRC already vouched for
/// transport integrity; a decode failure means a protocol mismatch).
pub fn spawn_wire_listener<T, F>(
    name: &str,
    shutdown: Shutdown,
    metrics: TransportMetrics,
    on_msg: F,
) -> io::Result<SocketAddr>
where
    T: Wire,
    F: Fn(T) + Send + Clone + 'static,
{
    spawn_frame_listener(name, shutdown, metrics, move |frame| {
        if let Some(msg) = chariots_types::decode_exact::<T>(frame) {
            on_msg(msg);
        }
    })
}

// ---------------------------------------------------------------------------
// Reply hub: request/reply over one-way frames
// ---------------------------------------------------------------------------

type ReplyCallback = Box<dyn FnOnce(Option<WireReader>) + Send>;

/// The process-global reply endpoint. When a [`ReplyTo::Local`] is
/// serialized for the wire, the hub registers a one-shot waiter and the
/// frame carries `(hub address, token)` instead of the channel. The server
/// dials back with `[token u64][has u8][reply bytes]`; the hub routes the
/// payload to the waiter. Replies for RPCs whose request frame was lost
/// simply never arrive — callers surface that through their own error
/// paths, exactly as a crashed simnet stage would.
pub struct ReplyHub {
    addr: SocketAddr,
    next_token: AtomicU64,
    waiters: Arc<Mutex<HashMap<u64, ReplyCallback>>>,
}

impl ReplyHub {
    /// The loopback address servers dial back to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a one-shot waiter; returns its token.
    pub fn register(&self, cb: ReplyCallback) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.waiters.lock().insert(token, cb);
        token
    }

    /// Waiters currently parked (diagnostics / tests).
    pub fn pending(&self) -> usize {
        self.waiters.lock().len()
    }

    fn complete(&self, token: u64, reply: Option<WireReader>) {
        let cb = self.waiters.lock().remove(&token);
        if let Some(cb) = cb {
            cb(reply);
        }
    }
}

/// The lazily started process-global [`ReplyHub`]. The accept thread is a
/// daemon: it lives for the process and needs no shutdown plumbing.
pub fn reply_hub() -> &'static ReplyHub {
    static HUB: OnceLock<ReplyHub> = OnceLock::new();
    HUB.get_or_init(|| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind reply hub on loopback");
        let addr = listener.local_addr().expect("reply hub local addr");
        let waiters: Arc<Mutex<HashMap<u64, ReplyCallback>>> = Arc::default();
        let thread_waiters = Arc::clone(&waiters);
        thread::Builder::new()
            .name("reply-hub".into())
            .spawn(move || {
                for stream in listener.incoming().flatten() {
                    let waiters = Arc::clone(&thread_waiters);
                    let _ = thread::Builder::new()
                        .name("reply-hub-conn".into())
                        .spawn(move || hub_serve(stream, waiters));
                }
            })
            .expect("spawn reply hub accept thread");
        ReplyHub {
            addr,
            next_token: AtomicU64::new(1),
            waiters,
        }
    })
}

fn hub_serve(mut stream: TcpStream, waiters: Arc<Mutex<HashMap<u64, ReplyCallback>>>) {
    let mut decoder = FrameDecoder::new();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                decoder.extend(&chunk[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(payload)) => {
                            let mut r = WireReader::new(payload);
                            let (Some(token), Some(has)) = (r.u64(), r.u8()) else {
                                return;
                            };
                            let reply = if has == 1 { Some(r) } else { None };
                            let cb = waiters.lock().remove(&token);
                            if let Some(cb) = cb {
                                cb(reply);
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return,
                    }
                }
            }
        }
    }
}

/// Pooled dial-back senders, keyed by hub address. Every server in the
/// process reuses one connection per client hub rather than dialing per
/// reply.
fn reply_sender(addr: SocketAddr) -> Arc<TcpSender> {
    static POOL: OnceLock<Mutex<HashMap<SocketAddr, Arc<TcpSender>>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    Arc::clone(
        pool.lock()
            .entry(addr)
            .or_insert_with(|| Arc::new(TcpSender::new(addr, TransportMetrics::detached()))),
    )
}

fn send_reply_frame(addr: SocketAddr, payload: &[u8]) -> bool {
    reply_sender(addr).send_raw(payload).is_ok()
}

/// The wire half of a [`ReplyTo`]: where to dial back, and which waiter
/// token to complete. One-shot; dropping it unanswered sends a tombstone
/// so the waiter's channel disconnects instead of hanging (mirroring how
/// dropping a crossbeam `Sender` fails the paired `recv`).
pub struct RemoteReply {
    addr: SocketAddr,
    token: u64,
    sent: AtomicBool,
    forwarded: AtomicBool,
}

impl RemoteReply {
    fn send_value<T: Wire>(&self, value: &T) -> bool {
        if self.sent.swap(true, Ordering::AcqRel) {
            return false;
        }
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&self.token.to_le_bytes());
        buf.push(1);
        value.encode(&mut buf);
        send_reply_frame(self.addr, &buf)
    }
}

impl Drop for RemoteReply {
    fn drop(&mut self) {
        if self.sent.load(Ordering::Acquire) || self.forwarded.load(Ordering::Acquire) {
            return;
        }
        let mut buf = Vec::with_capacity(9);
        buf.extend_from_slice(&self.token.to_le_bytes());
        buf.push(0);
        let _ = send_reply_frame(self.addr, &buf);
    }
}

impl fmt::Debug for RemoteReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RemoteReply({} #{})", self.addr, self.token)
    }
}

/// A reply slot that works on both backends. On the simnet path it wraps
/// the existing crossbeam sender unchanged; when a request is serialized
/// for TCP, the local sender becomes a hub registration and travels as a
/// dial-back `(address, token)` pair. Re-serializing a `Remote` (a hop
/// forwarding the request onward) writes the same pair, so multi-hop
/// pipelines deliver the reply straight to the original caller.
pub enum ReplyTo<T> {
    /// In-process delivery over a channel.
    Local(Sender<T>),
    /// Dial-back delivery to another process's reply hub.
    Remote(RemoteReply),
}

impl<T> ReplyTo<T> {
    /// Wraps a channel sender (the simnet path).
    pub fn local(tx: Sender<T>) -> Self {
        ReplyTo::Local(tx)
    }
}

impl<T: Wire> ReplyTo<T> {
    /// Delivers the reply. Returns false if the receiver is gone, exactly
    /// like `Sender::send(..).is_ok()` — every call site treats that the
    /// same way it treated a dropped channel.
    pub fn send(&self, value: T) -> bool {
        match self {
            ReplyTo::Local(tx) => tx.send(value).is_ok(),
            ReplyTo::Remote(remote) => remote.send_value(&value),
        }
    }
}

impl<T> fmt::Debug for ReplyTo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplyTo::Local(_) => write!(f, "ReplyTo::Local"),
            ReplyTo::Remote(r) => write!(f, "ReplyTo::Remote({r:?})"),
        }
    }
}

impl<T: Wire + Send + 'static> Wire for ReplyTo<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ReplyTo::Local(tx) => {
                let hub = reply_hub();
                let tx = tx.clone();
                let token = hub.register(Box::new(move |reply| {
                    if let Some(mut r) = reply {
                        if let Some(value) = T::decode(&mut r) {
                            let _ = tx.send(value);
                        }
                    }
                    // A tombstone (or undecodable reply) just drops `tx`,
                    // disconnecting the waiter's receive side.
                }));
                hub.addr().to_string().encode(buf);
                buf.extend_from_slice(&token.to_le_bytes());
            }
            ReplyTo::Remote(remote) => {
                remote.forwarded.store(true, Ordering::Release);
                remote.addr.to_string().encode(buf);
                buf.extend_from_slice(&remote.token.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut WireReader) -> Option<Self> {
        let addr: SocketAddr = String::decode(r)?.parse().ok()?;
        let token = r.u64()?;
        Some(ReplyTo::Remote(RemoteReply {
            addr,
            token,
            sent: AtomicBool::new(false),
            forwarded: AtomicBool::new(false),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chariots_types::{
        encode_to_vec, DatacenterId, Entry, LId, Record, RecordId, TOId, TagSet, VersionVector,
    };
    use crossbeam::channel::{bounded, unbounded, RecvTimeoutError};

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    fn entry(lid: u64, body: &'static [u8]) -> Entry {
        Entry::new(
            LId(lid),
            Record::new(
                RecordId::new(DatacenterId(0), TOId(lid + 1)),
                VersionVector::new(2),
                TagSet::new(),
                Bytes::from_static(body),
            ),
        )
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 300], b"hello".to_vec()];
        let stream: Vec<u8> = payloads.iter().flat_map(|p| frame_bytes(p)).collect();
        // Feed one byte at a time: every torn boundary is exercised.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.extend(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f.to_vec());
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn crc_mismatch_skips_frame_and_stays_framed() {
        let mut stream = frame_bytes(b"first");
        let mut bad = frame_bytes(b"second");
        let last = bad.len() - 1;
        bad[last] ^= 0x40; // flip a payload bit
        stream.extend_from_slice(&bad);
        stream.extend_from_slice(&frame_bytes(b"third"));

        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"first");
        assert_eq!(dec.next_frame(), Err(FrameError::CrcMismatch));
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"third");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_length_poisons_instead_of_allocating() {
        let mut dec = FrameDecoder::new();
        let mut header = (u32::MAX).to_le_bytes().to_vec();
        header.extend_from_slice(&0u32.to_le_bytes());
        dec.extend(&header);
        assert!(matches!(dec.next_frame(), Err(FrameError::TooLarge(_))));
        // Poisoned: even after more bytes arrive it refuses to resync.
        dec.extend(&frame_bytes(b"late"));
        assert!(matches!(dec.next_frame(), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn sender_reaches_listener_with_typed_messages() {
        let shutdown = Shutdown::new();
        let registry = MetricsRegistry::new("dc0");
        let rx_metrics = TransportMetrics::registered(&registry, "store0");
        let (tx, rx) = unbounded::<Vec<Entry>>();
        let addr = spawn_wire_listener("test", shutdown.clone(), rx_metrics, move |batch| {
            let _ = tx.send(batch);
        })
        .unwrap();

        let tx_metrics = TransportMetrics::registered(&registry, "client0");
        let sender = TcpSender::new(addr, tx_metrics.clone());
        let batch = vec![entry(7, b"alpha"), entry(8, b"beta")];
        sender.send(&batch).unwrap();
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, batch);
        assert_eq!(tx_metrics.frames.get(), 1);
        assert!(tx_metrics.bytes_out.get() > FRAME_HEADER_BYTES as u64);
        assert_eq!(tx_metrics.reconnects.get(), 0);
        let snap = registry.snapshot();
        assert!(snap.counters["dc0.chariots.transport.client0.bytes_out"] > 0);
        shutdown.signal();
    }

    #[test]
    fn sender_reconnects_after_listener_side_drop() {
        let shutdown = Shutdown::new();
        let (tx, rx) = unbounded::<Vec<Entry>>();
        let seen = tx.clone();
        let metrics = TransportMetrics::detached();
        let addr = spawn_wire_listener(
            "test",
            shutdown.clone(),
            TransportMetrics::detached(),
            move |batch| {
                let _ = seen.send(batch);
            },
        )
        .unwrap();
        drop(tx);

        let sender = TcpSender::new(addr, metrics.clone());
        sender.send(&vec![entry(1, b"a")]).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();

        // Kill the server-side connection by poisoning it with a frame the
        // listener rejects (bad CRC): the handler drops the stream.
        {
            let mut guard = sender.state.lock();
            let mut raw = frame_bytes(b"garbage");
            let last = raw.len() - 1;
            raw[last] ^= 1;
            guard.stream.as_mut().unwrap().write_all(&raw).unwrap();
        }

        // Depending on timing the first resend may be buffered by the
        // kernel before the reset is visible; the retry-once-in-send plus
        // at most one more call always lands it.
        let mut delivered = false;
        for _ in 0..50 {
            if sender.send(&vec![entry(2, b"b")]).is_ok()
                && rx.recv_timeout(Duration::from_millis(200)).is_ok()
            {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "message re-delivered after connection drop");
        assert!(metrics.reconnects.get() >= 1);
        shutdown.signal();
    }

    #[test]
    fn reply_to_roundtrips_over_the_hub() {
        let (tx, rx) = bounded::<chariots_types::Result<Vec<(TOId, LId)>>>(1);
        let encoded = encode_to_vec(&ReplyTo::local(tx));
        let decoded: ReplyTo<chariots_types::Result<Vec<(TOId, LId)>>> =
            chariots_types::decode_exact(Bytes::from(encoded)).unwrap();
        assert!(matches!(decoded, ReplyTo::Remote(_)));
        assert!(decoded.send(Ok(vec![(TOId(3), LId(9))])));
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got, Ok(vec![(TOId(3), LId(9))]));
    }

    #[test]
    fn dropping_remote_reply_disconnects_the_waiter() {
        let (tx, rx) = bounded::<LId>(1);
        let encoded = encode_to_vec(&ReplyTo::local(tx));
        let decoded: ReplyTo<LId> = chariots_types::decode_exact(Bytes::from(encoded)).unwrap();
        drop(decoded); // tombstone
        match rx.recv_timeout(Duration::from_secs(5)) {
            Err(RecvTimeoutError::Disconnected) => {}
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn forwarded_reply_suppresses_tombstone_and_still_delivers() {
        let (tx, rx) = bounded::<LId>(1);
        let hop1 = encode_to_vec(&ReplyTo::local(tx));
        let mid: ReplyTo<LId> = chariots_types::decode_exact(Bytes::from(hop1)).unwrap();
        // The middle hop forwards the request onward: re-encode, then drop
        // its copy. The tombstone must be suppressed.
        let hop2 = encode_to_vec(&mid);
        drop(mid);
        let end: ReplyTo<LId> = chariots_types::decode_exact(Bytes::from(hop2)).unwrap();
        assert!(end.send(LId(42)));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), LId(42));
    }

    #[test]
    fn double_send_on_remote_reply_is_rejected() {
        let (tx, rx) = bounded::<LId>(2);
        let encoded = encode_to_vec(&ReplyTo::local(tx));
        let decoded: ReplyTo<LId> = chariots_types::decode_exact(Bytes::from(encoded)).unwrap();
        assert!(decoded.send(LId(1)));
        assert!(!decoded.send(LId(2)), "remote replies are one-shot");
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), LId(1));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Cutting the stream at *every* byte boundary never loses,
            /// duplicates, or corrupts a frame: the decoder yields exactly
            /// the frames whose bytes have fully arrived.
            #[test]
            fn torn_frames_at_every_boundary(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..64), 1..6),
                cut_seed in any::<u64>(),
            ) {
                let stream: Vec<u8> =
                    payloads.iter().flat_map(|p| frame_bytes(p)).collect();
                let cut = (cut_seed as usize) % (stream.len() + 1);
                let mut dec = FrameDecoder::new();
                let mut got = Vec::new();
                for part in [&stream[..cut], &stream[cut..]] {
                    dec.extend(part);
                    while let Some(f) = dec.next_frame().unwrap() {
                        got.push(f.to_vec());
                    }
                }
                prop_assert_eq!(got, payloads);
            }

            /// A bit flip inside a payload is always caught by the CRC:
            /// the poisoned frame is rejected, every other frame decodes
            /// intact, and the decoder never panics or mis-frames.
            #[test]
            fn payload_bit_flip_is_rejected_without_desync(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..64), 1..6),
                victim_seed in any::<u64>(),
                bit in 0u8..8,
            ) {
                let victim = (victim_seed as usize) % payloads.len();
                let mut stream = Vec::new();
                let mut flip_at = None;
                for (i, p) in payloads.iter().enumerate() {
                    let start = stream.len();
                    stream.extend_from_slice(&frame_bytes(p));
                    if i == victim {
                        let off = (victim_seed as usize) % p.len();
                        flip_at = Some(start + FRAME_HEADER_BYTES + off);
                    }
                }
                stream[flip_at.unwrap()] ^= 1 << bit;

                let mut dec = FrameDecoder::new();
                dec.extend(&stream);
                let mut got = Vec::new();
                let mut crc_errors = 0;
                loop {
                    match dec.next_frame() {
                        Ok(Some(f)) => got.push(f.to_vec()),
                        Ok(None) => break,
                        Err(FrameError::CrcMismatch) => crc_errors += 1,
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                prop_assert_eq!(crc_errors, 1);
                let expected: Vec<Vec<u8>> = payloads
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != victim)
                    .map(|(_, p)| p.clone())
                    .collect();
                prop_assert_eq!(got, expected);
            }

            /// Flipping a bit *anywhere* (headers included) never panics
            /// the decoder, and every frame it does yield carried a valid
            /// CRC for its claimed extent.
            #[test]
            fn arbitrary_corruption_never_panics(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..32), 1..5),
                pos_seed in any::<u64>(),
                bit in 0u8..8,
            ) {
                let mut stream: Vec<u8> =
                    payloads.iter().flat_map(|p| frame_bytes(p)).collect();
                let pos = (pos_seed as usize) % stream.len();
                stream[pos] ^= 1 << bit;
                let mut dec = FrameDecoder::new();
                dec.extend(&stream);
                // Bounded pulls: poison and torn tails both terminate.
                for _ in 0..(payloads.len() + 2) {
                    match dec.next_frame() {
                        Ok(Some(_)) | Err(FrameError::CrcMismatch) => {}
                        Ok(None) | Err(FrameError::TooLarge(_)) => break,
                    }
                }
            }
        }
    }
}
