//! Sampled per-record pipeline tracing.
//!
//! A [`PipelineTracer`] stamps a [`TraceId`] on every N-th record entering
//! the pipeline and keeps a fixed-size slot table of per-stage enter/exit
//! timestamps for the sampled records. Stages hold a [`StageTracer`] and
//! call [`enter`](StageTracer::enter) when a record is handed to them and
//! [`exit`](StageTracer::exit) when they forward or persist it; the exit
//! stamp also feeds the stage's latency [`Histogram`]
//! (`{prefix}.{stage}.latency_us`), so percentiles accumulate even after a
//! slot is recycled.
//!
//! Everything is lock-free: stamps are relaxed atomic stores into the slot
//! table, and an untraced record (`trace == None`) costs one branch per
//! stage. A disabled tracer (`sample_every == 0`) is a no-op everywhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chariots_types::TraceId;

use crate::metrics::{Histogram, MetricsRegistry};

/// Slots in the trace table; sampled records whose trace outlives
/// `capacity` newer samples lose their stamps (the histogram entries
/// already recorded are unaffected).
const DEFAULT_CAPACITY: usize = 4096;

struct Slot {
    /// The trace id currently owning this slot (0 = free). Stamps from a
    /// previous occupant are detected by this generation check.
    id: AtomicU64,
    /// ns since the tracer's epoch, per stage; 0 = not stamped.
    enters: Vec<AtomicU64>,
    exits: Vec<AtomicU64>,
}

struct Inner {
    epoch: Instant,
    every: u64,
    ticks: AtomicU64,
    next_id: AtomicU64,
    slots: Vec<Slot>,
    stages: Vec<String>,
    histograms: Vec<Histogram>,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        // +1 so a stamp taken exactly at the epoch still reads as set.
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX) + 1
    }

    fn slot_of(&self, t: TraceId) -> &Slot {
        &self.slots[(t.0 as usize) % self.slots.len()]
    }
}

/// Samples and records end-to-end traces across a fixed set of pipeline
/// stages. Cheap to clone (shared state); a disabled tracer no-ops.
#[derive(Clone)]
pub struct PipelineTracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for PipelineTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(
                f,
                "PipelineTracer(every={}, stages={:?})",
                i.every, i.stages
            ),
            None => write!(f, "PipelineTracer(disabled)"),
        }
    }
}

impl PipelineTracer {
    /// A tracer that never samples and ignores all stamps.
    pub fn disabled() -> Self {
        PipelineTracer { inner: None }
    }

    /// Creates a tracer over `stages`, sampling one record in
    /// `sample_every` (0 = disabled). A latency histogram named
    /// `{prefix}.{stage}.latency_us` is registered in `registry` for every
    /// stage up front, so snapshots show all stages even before traffic.
    pub fn new(
        stages: &[&str],
        sample_every: u64,
        registry: &MetricsRegistry,
        prefix: &str,
    ) -> Self {
        let histograms = stages
            .iter()
            .map(|s| registry.histogram(&format!("{prefix}.{s}.latency_us")))
            .collect();
        if sample_every == 0 {
            return PipelineTracer { inner: None };
        }
        let num_stages = stages.len();
        let slots = (0..DEFAULT_CAPACITY)
            .map(|_| Slot {
                id: AtomicU64::new(0),
                enters: (0..num_stages).map(|_| AtomicU64::new(0)).collect(),
                exits: (0..num_stages).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        PipelineTracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                every: sample_every,
                ticks: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                slots,
                stages: stages.iter().map(|s| s.to_string()).collect(),
                histograms,
            })),
        }
    }

    /// Whether this tracer ever samples.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Called once per record at the pipeline entrance: every
    /// `sample_every`-th call allocates a fresh trace and returns its id.
    pub fn sample(&self) -> Option<TraceId> {
        let inner = self.inner.as_ref()?;
        if inner.ticks.fetch_add(1, Ordering::Relaxed) % inner.every != 0 {
            return None;
        }
        // Ids start at 1 so 0 can mean "free slot".
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &inner.slots[(id as usize) % inner.slots.len()];
        slot.id.store(id, Ordering::Relaxed);
        for s in 0..inner.stages.len() {
            slot.enters[s].store(0, Ordering::Relaxed);
            slot.exits[s].store(0, Ordering::Relaxed);
        }
        Some(TraceId(id))
    }

    /// A per-stage view for stamping; an unknown stage name yields a
    /// disabled stage tracer.
    pub fn stage(&self, name: &str) -> StageTracer {
        let stage = self
            .inner
            .as_ref()
            .and_then(|i| i.stages.iter().position(|s| s == name));
        match stage {
            Some(stage) => StageTracer {
                tracer: self.clone(),
                stage,
            },
            None => StageTracer::disabled(),
        }
    }

    fn enter(&self, t: TraceId, stage: usize) {
        if let Some(inner) = &self.inner {
            let slot = inner.slot_of(t);
            if slot.id.load(Ordering::Relaxed) == t.0 {
                slot.enters[stage].store(inner.now_ns(), Ordering::Relaxed);
            }
        }
    }

    fn exit(&self, t: TraceId, stage: usize) {
        if let Some(inner) = &self.inner {
            let slot = inner.slot_of(t);
            if slot.id.load(Ordering::Relaxed) != t.0 {
                return;
            }
            let now = inner.now_ns();
            slot.exits[stage].store(now, Ordering::Relaxed);
            let entered = slot.enters[stage].load(Ordering::Relaxed);
            if entered != 0 && now >= entered {
                inner.histograms[stage].record((now - entered) / 1_000);
            }
        }
    }

    fn observe(&self, stage: usize, d: Duration) {
        if let Some(inner) = &self.inner {
            inner.histograms[stage].record_duration(d);
        }
    }

    /// Every complete stage span still resident in the slot table, for
    /// export (Chrome `trace_event` JSON). Each span covers one stage of
    /// one sampled record: `start_ns`/`end_ns` are nanoseconds since the
    /// tracer's epoch. Spans whose slot was recycled by a newer sample are
    /// gone (their latency histograms already recorded them).
    pub fn spans(&self) -> Vec<TraceSpan> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for slot in &inner.slots {
            let id = slot.id.load(Ordering::Relaxed);
            if id == 0 {
                continue;
            }
            for (s, name) in inner.stages.iter().enumerate() {
                let entered = slot.enters[s].load(Ordering::Relaxed);
                let exited = slot.exits[s].load(Ordering::Relaxed);
                if entered != 0 && exited >= entered {
                    out.push(TraceSpan {
                        trace: id,
                        stage: name.clone(),
                        start_ns: entered - 1, // undo the +1 epoch offset
                        end_ns: exited - 1,
                    });
                }
            }
        }
        out.sort_unstable_by_key(|s| (s.start_ns, s.trace));
        out
    }

    /// The per-stage latencies stamped for trace `t`, in stage order,
    /// covering stages with both an enter and an exit. `None` if the
    /// trace's slot was recycled by a newer sample.
    pub fn stage_latencies(&self, t: TraceId) -> Option<Vec<(String, Duration)>> {
        let inner = self.inner.as_ref()?;
        let slot = inner.slot_of(t);
        if slot.id.load(Ordering::Relaxed) != t.0 {
            return None;
        }
        let mut out = Vec::new();
        for (s, name) in inner.stages.iter().enumerate() {
            let entered = slot.enters[s].load(Ordering::Relaxed);
            let exited = slot.exits[s].load(Ordering::Relaxed);
            if entered != 0 && exited >= entered {
                out.push((name.clone(), Duration::from_nanos(exited - entered)));
            }
        }
        Some(out)
    }
}

/// One stage crossing of one sampled record, as reported by
/// [`PipelineTracer::spans`]. Timestamps are ns since the tracer's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// The sampled record's trace id.
    pub trace: u64,
    /// Stage name (e.g. `"batcher"`).
    pub stage: String,
    /// Stage-entry time, ns since the tracer's epoch.
    pub start_ns: u64,
    /// Stage-exit time, ns since the tracer's epoch.
    pub end_ns: u64,
}

/// One stage's handle onto a [`PipelineTracer`]: stamps enters/exits for
/// traced records and records direct service-time observations.
#[derive(Clone, Debug)]
pub struct StageTracer {
    tracer: PipelineTracer,
    stage: usize,
}

impl Default for StageTracer {
    fn default() -> Self {
        StageTracer::disabled()
    }
}

impl StageTracer {
    /// A stage tracer that ignores all stamps.
    pub fn disabled() -> Self {
        StageTracer {
            tracer: PipelineTracer::disabled(),
            stage: 0,
        }
    }

    /// Stamps the stage-entry time for a traced record (no-op for `None`).
    #[inline]
    pub fn enter(&self, t: Option<TraceId>) {
        if let Some(t) = t {
            self.tracer.enter(t, self.stage);
        }
    }

    /// Stamps the stage-exit time for a traced record and records the
    /// enter→exit interval into the stage's latency histogram.
    #[inline]
    pub fn exit(&self, t: Option<TraceId>) {
        if let Some(t) = t {
            self.tracer.exit(t, self.stage);
        }
    }

    /// Records a directly measured service time into the stage's latency
    /// histogram (for stages that process rounds, not individual records).
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.tracer.observe(self.stage, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = PipelineTracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.sample(), None);
        let stage = t.stage("batcher");
        stage.enter(Some(TraceId(1)));
        stage.exit(Some(TraceId(1)));
        assert_eq!(t.stage_latencies(TraceId(1)), None);
    }

    #[test]
    fn sampling_period_is_respected() {
        let reg = MetricsRegistry::new("t");
        let t = PipelineTracer::new(&["a", "b"], 4, &reg, "dc0");
        let sampled: Vec<_> = (0..16).map(|_| t.sample()).collect();
        let hits = sampled.iter().flatten().count();
        assert_eq!(hits, 4, "one in four records sampled");
        assert!(sampled[0].is_some(), "first record always sampled");
    }

    #[test]
    fn stamps_produce_stage_latencies_and_histogram_entries() {
        let reg = MetricsRegistry::new("t");
        let t = PipelineTracer::new(&["batcher", "queue"], 1, &reg, "dc0");
        let id = t.sample().expect("every record sampled");
        let batcher = t.stage("batcher");
        let queue = t.stage("queue");
        batcher.enter(Some(id));
        std::thread::sleep(Duration::from_millis(2));
        batcher.exit(Some(id));
        queue.enter(Some(id));
        queue.exit(Some(id));
        let lat = t.stage_latencies(id).expect("slot still owned");
        assert_eq!(lat.len(), 2);
        assert_eq!(lat[0].0, "batcher");
        assert!(lat[0].1 >= Duration::from_millis(2));
        assert_eq!(reg.histogram("dc0.batcher.latency_us").count(), 1);
        assert!(reg.histogram("dc0.batcher.latency_us").max() >= 2_000);
        // Histograms for all stages exist in the snapshot even if idle.
        assert!(reg
            .snapshot()
            .histograms
            .contains_key("dc0.queue.latency_us"));
    }

    #[test]
    fn spans_export_complete_stage_crossings() {
        let reg = MetricsRegistry::new("t");
        let t = PipelineTracer::new(&["batcher", "queue"], 1, &reg, "dc0");
        let id = t.sample().unwrap();
        let batcher = t.stage("batcher");
        batcher.enter(Some(id));
        batcher.exit(Some(id));
        let queue = t.stage("queue");
        queue.enter(Some(id)); // never exits: incomplete, not exported
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, id.0);
        assert_eq!(spans[0].stage, "batcher");
        assert!(spans[0].end_ns >= spans[0].start_ns);
        assert!(PipelineTracer::disabled().spans().is_empty());
    }

    #[test]
    fn recycled_slots_reject_stale_traces() {
        let reg = MetricsRegistry::new("t");
        let t = PipelineTracer::new(&["a"], 1, &reg, "dc0");
        let first = t.sample().unwrap();
        // Burn through the whole table so `first`'s slot is reused.
        for _ in 0..DEFAULT_CAPACITY {
            t.sample();
        }
        assert_eq!(t.stage_latencies(first), None);
        t.stage("a").exit(Some(first)); // stale stamp: ignored
        assert_eq!(reg.histogram("dc0.a.latency_us").count(), 0);
    }

    #[test]
    fn zero_sampling_disables_but_still_registers_histograms() {
        let reg = MetricsRegistry::new("t");
        let t = PipelineTracer::new(&["a"], 0, &reg, "dc0");
        assert!(!t.is_enabled());
        assert_eq!(t.sample(), None);
        assert!(reg.snapshot().histograms.contains_key("dc0.a.latency_us"));
    }
}
