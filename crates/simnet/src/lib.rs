//! # chariots-simnet
//!
//! Simulated cluster substrate for the Chariots reproduction.
//!
//! The paper evaluates on a private Xeon cluster and on AWS; this crate
//! replaces that hardware with controllable software models (see
//! `DESIGN.md` §3 for why each substitution preserves the behaviour the
//! evaluation measures):
//!
//! * [`station`] — [`ServiceStation`]: per-machine capacity with an
//!   overload-degradation model (the shape of the paper's Fig. 7).
//! * [`link`] — [`Link`]: latency / jitter / bandwidth plus fault injection
//!   (partitions, drops, duplication) for WAN and intra-DC hops.
//! * [`pacing`] — precise sleeps and the open-loop [`RateLimiter`] used by
//!   target-throughput load generators.
//! * [`metrics`] — counters, gauges, log-bucketed latency histograms, the
//!   time-series sampler behind Fig. 9, the named [`MetricsRegistry`]
//!   whose [`MetricsSnapshot`] the bench harness dumps as JSON, and the
//!   live telemetry plane: windowed views, the structured [`EventJournal`],
//!   the background [`Collector`], and Prometheus / Chrome-trace
//!   exporters.
//! * [`trace`] — sampled per-record tracing: a [`PipelineTracer`] stamps
//!   [`TraceId`](chariots_types::TraceId)s on records and stages record
//!   enter/exit times through [`StageTracer`]s.
//! * [`failure`] — heartbeat-based [`FailureDetector`] and the periodic
//!   [`FailureMonitor`] thread that drives failover decisions.
//! * [`retry`] — [`RetryPolicy`]: bounded retries with deterministic
//!   jittered exponential backoff for clients riding out failover windows.
//! * [`notify`] — [`Notify`]: edge-triggered, coalescing wakeups that turn
//!   fixed-interval polling loops into event-driven ones (the interval
//!   demotes to a heartbeat floor).
//! * [`shutdown`] — cooperative worker shutdown.
//! * [`transport`] — the real-socket backend: length-prefixed CRC'd
//!   frames over `std::net::TcpStream` ([`FrameDecoder`], [`TcpSender`],
//!   typed listeners, and the [`ReplyTo`] dial-back reply slot), so the
//!   same `Wire`-encoded protocol runs hardware-limited instead of
//!   simulation-limited.
//! * [`tempdir`] — [`TestDir`]: collision-free, self-cleaning scratch
//!   directories for tests that persist WALs.
//!
//! ```
//! use chariots_simnet::{Link, LinkConfig, ServiceStation, StationConfig};
//! use std::time::Duration;
//!
//! // A machine that can serve 50k records/s, and a 5ms link to it.
//! let station = ServiceStation::new("m0", StationConfig::with_rate(50_000.0));
//! let (tx, rx, handle) = Link::spawn_simple::<u32>(
//!     LinkConfig::with_latency(Duration::from_millis(5)),
//! );
//! tx.send(42);
//! assert_eq!(rx.recv().unwrap(), 42);
//! station.note_arrival(1);
//! station.serve(1).unwrap();
//! assert_eq!(station.served(), 1);
//! handle.partition(); // messages sent now are lost until heal()
//! ```

#![warn(missing_docs)]

pub mod failure;
pub mod link;
pub mod metrics;
pub mod notify;
pub mod pacing;
pub mod retry;
pub mod shutdown;
pub mod station;
pub mod tempdir;
pub mod trace;
pub mod transport;

pub use failure::{FailureDetector, FailureMonitor};
pub use link::{Link, LinkConfig, LinkHandle, LinkSender};
pub use metrics::{
    chrome_trace, parse_prometheus_text, prometheus_text, ChromeTrace, Collector, CollectorConfig,
    CollectorHandle, Counter, Event, EventJournal, EventKind, Gauge, Histogram, HistogramSnapshot,
    LiveView, MetricsRegistry, MetricsSnapshot, Sampler, Series, ThroughputMeter, TimeSeries,
    Timeline, TimelineTick, WindowSummary,
};
pub use notify::Notify;
pub use pacing::{sleep_until, RateLimiter};
pub use retry::RetryPolicy;
pub use shutdown::Shutdown;
pub use station::{ServiceStation, StationConfig};
pub use tempdir::TestDir;
pub use trace::{PipelineTracer, StageTracer, TraceSpan};
pub use transport::{
    reply_hub, spawn_frame_listener, spawn_wire_listener, write_frame, FrameDecoder, FrameError,
    RemoteReply, ReplyHub, ReplyTo, TcpSender, TransportMetrics, FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
};
