//! Shared counters and throughput meters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap shared counter (relaxed atomics; readers tolerate slight skew).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Measures average throughput of a [`Counter`] over a wall-clock window.
#[derive(Debug)]
pub struct ThroughputMeter {
    counter: Counter,
    started: Instant,
    start_value: u64,
}

impl ThroughputMeter {
    /// Starts measuring `counter` from its current value.
    pub fn start(counter: Counter) -> Self {
        let start_value = counter.get();
        ThroughputMeter {
            counter,
            started: Instant::now(),
            start_value,
        }
    }

    /// Units counted since the meter started.
    pub fn count(&self) -> u64 {
        self.counter.get() - self.start_value
    }

    /// Average rate (units/second) since the meter started.
    pub fn rate(&self) -> f64 {
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed == 0.0 {
            0.0
        } else {
            self.count() as f64 / elapsed
        }
    }

    /// Elapsed time since the meter started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        let c2 = c.clone(); // clones share the value
        c2.add(1);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn meter_measures_rate() {
        let c = Counter::new();
        c.add(100); // before the meter starts: excluded
        let meter = ThroughputMeter::start(c.clone());
        c.add(500);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(meter.count(), 500);
        let rate = meter.rate();
        assert!(rate > 0.0 && rate <= 500.0 / 0.05, "rate {rate}");
    }
}
