//! The structured event journal: typed, timestamped lifecycle events.
//!
//! Counters say *how much*; the journal says *what happened when*. Control
//! events that are individually rare but individually meaningful —
//! failovers, fencings, WAN retransmit fallbacks, epoch changes, GC
//! sweeps, WAL sync stalls — are appended as typed [`Event`]s to a bounded
//! ring embedded in every [`MetricsRegistry`](super::MetricsRegistry), so
//! any component holding a registry can publish without new plumbing.
//!
//! Publishing is one `fetch_add` to claim a sequence number plus one
//! uncontended per-slot mutex store (slots are only contended when two
//! publishers race `capacity` events apart); readers never block writers
//! for more than a slot swap. [`recent`](EventJournal::recent) is
//! non-destructive, so multiple consumers (the collector, `chariots-top`,
//! the Chrome-trace exporter) can read the same window.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use chariots_types::TraceId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default journal capacity (events retained).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// What happened. Tagged so the JSON reads as
/// `{"kind": "failover_end", "group": 3, ...}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum EventKind {
    /// A failure monitor suspected a primary and began promotion.
    FailoverStart {
        /// Maintainer/replica group whose primary is suspected.
        group: u64,
    },
    /// A backup finished promotion and the group has a new primary.
    FailoverEnd {
        /// The recovered group.
        group: u64,
        /// Replica index promoted to primary.
        new_primary: u64,
        /// Suspect-to-promoted latency (the paper's recovery metric).
        promotion_latency_us: u64,
    },
    /// A group's generation advanced, fencing the deposed primary.
    Fencing {
        /// The fenced group.
        group: u64,
        /// Generation now required to assign.
        generation: u64,
    },
    /// A WAN sender fell back to retransmitting from its peer cursor.
    WanRetransmit {
        /// Destination datacenter id.
        peer: u64,
    },
    /// A new epoch boundary was announced (elastic reconfiguration).
    EpochChange {
        /// First LId of the new epoch.
        boundary: u64,
    },
    /// A GC pass trimmed the log below the replicated bound.
    GcSweep {
        /// New GC floor (first retained LId).
        bound: u64,
        /// Records collected by this sweep.
        collected: u64,
    },
    /// A WAL batch sync exceeded the sync-policy stall threshold.
    WalSyncStall {
        /// Observed sync duration.
        stall_us: u64,
    },
    /// A WAL batch sync failed outright; the entries it covered were not
    /// made durable and must not be replicated or acked.
    WalSyncFailed {
        /// Records whose durability the failed sync covered.
        records: u64,
    },
    /// The autoscaler added a machine to a pipeline stage.
    ScaleOut {
        /// Stage that grew (`"batcher"`, `"queue"`, `"filter"`,
        /// `"maintainer"`).
        stage: String,
        /// Machines in the stage after the action.
        machines: u64,
        /// The triggering normalized policy signal, in thousandths (1000 =
        /// exactly at the scale-out watermark).
        signal_milli: u64,
    },
    /// The autoscaler drained and retired a machine from a stage.
    ScaleIn {
        /// Stage that shrank.
        stage: String,
        /// Machines in the stage after the action.
        machines: u64,
        /// The triggering normalized policy signal, in thousandths.
        signal_milli: u64,
    },
    /// A storage sweep reclaimed WAL disk: dead segments deleted,
    /// straddling ones rewritten, checkpoint-covered prefix truncated.
    CompactionSweep {
        /// Segments deleted outright.
        segments_deleted: u64,
        /// Segments rewritten keeping only live frames.
        segments_rewritten: u64,
        /// Disk bytes freed by this sweep.
        reclaimed_bytes: u64,
    },
    /// A maintainer snapshotted its durable state; the next recovery
    /// replays only the WAL suffix past this point.
    CheckpointWritten {
        /// Durable frontier the snapshot covers.
        upto: u64,
        /// Entries in the snapshot.
        entries: u64,
        /// Snapshot file size.
        bytes: u64,
    },
}

impl EventKind {
    /// A short lowercase label for dashboards (`"failover_end"` etc.).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::FailoverStart { .. } => "failover_start",
            EventKind::FailoverEnd { .. } => "failover_end",
            EventKind::Fencing { .. } => "fencing",
            EventKind::WanRetransmit { .. } => "wan_retransmit",
            EventKind::EpochChange { .. } => "epoch_change",
            EventKind::GcSweep { .. } => "gc_sweep",
            EventKind::WalSyncStall { .. } => "wal_sync_stall",
            EventKind::WalSyncFailed { .. } => "wal_sync_failed",
            EventKind::ScaleOut { .. } => "scale_out",
            EventKind::ScaleIn { .. } => "scale_in",
            EventKind::CompactionSweep { .. } => "compaction_sweep",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
        }
    }
}

/// One journal entry: what happened, when, where, and (optionally) which
/// traced record it correlates with.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Global publish order within this journal (dense from 0).
    pub seq: u64,
    /// Microseconds since the journal's creation.
    pub at_us: u64,
    /// Component that published (e.g. `"dc0.sender"`).
    pub source: String,
    /// Correlated [`TraceId`] value, if the event arose while handling a
    /// traced record.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<u64>,
    /// The typed payload.
    #[serde(flatten)]
    pub kind: EventKind,
}

struct Inner {
    epoch: Instant,
    seq: AtomicU64,
    slots: Vec<Mutex<Option<Event>>>,
}

/// A bounded, shared ring of [`Event`]s. Clones share the same ring.
#[derive(Clone)]
pub struct EventJournal {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventJournal(published={}, capacity={})",
            self.published(),
            self.inner.slots.len()
        )
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// An empty journal retaining up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Appends an event, evicting the oldest once the ring is full.
    /// Returns the event's sequence number.
    pub fn publish(&self, source: &str, trace: Option<TraceId>, kind: EventKind) -> u64 {
        let inner = &self.inner;
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let event = Event {
            seq,
            at_us,
            source: source.to_string(),
            trace: trace.map(|t| t.0),
            kind,
        };
        let slot = &inner.slots[(seq as usize) % inner.slots.len()];
        let mut guard = slot.lock();
        // A slower writer lapped by a faster one must not clobber the
        // newer occupant (writes race only `capacity` events apart).
        if guard.as_ref().is_none_or(|e| e.seq <= seq) {
            *guard = Some(event);
        }
        seq
    }

    /// Total events ever published (retained or evicted).
    pub fn published(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Whether nothing has ever been published.
    pub fn is_empty(&self) -> bool {
        self.published() == 0
    }

    /// The newest `k` retained events in publish order (oldest first).
    /// Non-destructive: repeated calls see overlapping windows.
    pub fn recent(&self, k: usize) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .inner
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .collect();
        out.sort_unstable_by_key(|e| e.seq);
        if out.len() > k {
            out.drain(..out.len() - k);
        }
        out
    }

    /// Retained events with `seq > after`, in publish order. The cursor
    /// form of [`recent`](Self::recent) for incremental consumers.
    pub fn since(&self, after: u64) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .inner
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .filter(|e| e.seq > after)
            .collect();
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_recent_roundtrip_in_order() {
        let j = EventJournal::new(8);
        assert!(j.is_empty());
        j.publish(
            "dc0.gc",
            None,
            EventKind::GcSweep {
                bound: 10,
                collected: 5,
            },
        );
        j.publish(
            "dc0.sender",
            Some(TraceId(42)),
            EventKind::WanRetransmit { peer: 1 },
        );
        let events = j.recent(10);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(
            events[0].kind,
            EventKind::GcSweep {
                bound: 10,
                collected: 5
            }
        );
        assert_eq!(events[1].trace, Some(42));
        assert!(events[1].at_us >= events[0].at_us);
        assert_eq!(j.published(), 2);
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let j = EventJournal::new(4);
        for i in 0..10u64 {
            j.publish("x", None, EventKind::EpochChange { boundary: i });
        }
        let events = j.recent(100);
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(j.published(), 10);
    }

    #[test]
    fn recent_caps_at_k_and_since_respects_cursor() {
        let j = EventJournal::new(16);
        for i in 0..6u64 {
            j.publish("x", None, EventKind::EpochChange { boundary: i });
        }
        assert_eq!(j.recent(2).len(), 2);
        assert_eq!(j.recent(2)[0].seq, 4);
        let newer = j.since(3);
        assert_eq!(newer.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn events_serialize_with_flat_tagged_kind() {
        let j = EventJournal::new(4);
        j.publish(
            "dc0.flstore",
            None,
            EventKind::FailoverEnd {
                group: 2,
                new_primary: 1,
                promotion_latency_us: 1500,
            },
        );
        let e = &j.recent(1)[0];
        let json = serde_json::to_value(e).unwrap();
        assert_eq!(json["kind"], "failover_end");
        assert_eq!(json["group"], 2);
        assert_eq!(json["promotion_latency_us"], 1500);
        assert!(json.get("trace").is_none(), "None trace is omitted");
        let back: Event = serde_json::from_value(json).unwrap();
        assert_eq!(&back, e);
    }

    #[test]
    fn concurrent_publishers_never_lose_sequence_density() {
        let j = EventJournal::new(64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        j.publish("t", None, EventKind::EpochChange { boundary: i });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.published(), 400);
        let events = j.recent(1000);
        assert_eq!(events.len(), 64, "ring retains exactly its capacity");
        // The retained window is the newest events, in order.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        assert!(events.iter().all(|e| e.seq >= 400 - 64));
    }
}
