//! Snapshot exporters: Prometheus text format and Chrome `trace_event`
//! JSON.
//!
//! [`prometheus_text`] renders any [`MetricsSnapshot`] in the Prometheus
//! exposition format (counters/gauges verbatim, histograms as summaries
//! with `quantile` labels plus `_sum`/`_count`); [`parse_prometheus_text`]
//! is the matching validator the smoke gate round-trips through.
//!
//! [`chrome_trace`] turns [`PipelineTracer`](crate::trace::PipelineTracer)
//! spans and [`EventJournal`](super::EventJournal) entries into a Chrome
//! `trace_event` JSON object (the format Perfetto and `chrome://tracing`
//! open): stage crossings become `ph: "X"` complete events on one track
//! per trace id, journal events become `ph: "i"` instants. Tracer and
//! journal epochs are both "component creation time"; components of one
//! deployment launch within microseconds of each other, so tracks line up
//! to well under a typical stage latency (documented, not corrected).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use super::journal::{Event, EventJournal};
use super::MetricsSnapshot;
use crate::trace::PipelineTracer;

/// Maps a metric name onto the Prometheus name charset: any character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders `snap` in the Prometheus text exposition format. Counters and
/// gauges map directly; each histogram becomes a `summary` with
/// `quantile="0.5|0.95|0.99"` samples plus `_sum` and `_count`. Dotted
/// metric names sanitize to underscores (`dc0.batcher0.in` →
/// `dc0_batcher0_in`); two names that sanitize identically keep the last
/// one (the repo's dotted scheme never collides this way).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        out.push_str(&format!("{n}{{quantile=\"0.5\"}} {}\n", h.p50));
        out.push_str(&format!("{n}{{quantile=\"0.95\"}} {}\n", h.p95));
        out.push_str(&format!("{n}{{quantile=\"0.99\"}} {}\n", h.p99));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

/// A parsed Prometheus text exposition: sample values keyed by
/// `name{labels}` exactly as they appeared, plus declared types.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedProm {
    /// Declared metric types from `# TYPE` lines.
    pub types: BTreeMap<String, String>,
    /// Sample values keyed by the full series name (including labels).
    pub samples: BTreeMap<String, f64>,
}

/// Parses (and thereby validates) Prometheus text exposition format:
/// every non-empty line must be a well-formed comment, `# TYPE`/`# HELP`
/// directive, or `name[{labels}] value` sample with a valid metric name
/// and a parseable value. Returns the parsed samples or a description of
/// the first offending line.
pub fn parse_prometheus_text(text: &str) -> Result<ParsedProm, String> {
    let mut parsed = ParsedProm::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(ty)) = (parts.next(), parts.next()) else {
                    return Err(format!("line {}: malformed TYPE: {line:?}", lineno + 1));
                };
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {}: unknown metric type {ty:?}", lineno + 1));
                }
                parsed.types.insert(name.to_string(), ty.to_string());
            }
            // `# HELP` and plain comments validate trivially.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (series, rest) = match line.find('{') {
            Some(brace) => {
                let close = line[brace..]
                    .find('}')
                    .map(|i| brace + i)
                    .ok_or_else(|| format!("line {}: unclosed label braces", lineno + 1))?;
                (&line[..=close], line[close + 1..].trim_start())
            }
            None => {
                let sp = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| format!("line {}: sample without value", lineno + 1))?;
                (&line[..sp], line[sp..].trim_start())
            }
        };
        let name = series.split('{').next().unwrap_or("");
        let valid_name = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if !valid_name {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        let value_str = rest.split_whitespace().next().unwrap_or("");
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {}: unparseable value {value_str:?}", lineno + 1))?;
        parsed.samples.insert(series.to_string(), value);
    }
    Ok(parsed)
}

/// One Chrome `trace_event`. Only the fields this exporter emits are
/// modelled; `deny_unknown_fields` is deliberately *not* set so traces
/// from richer producers still deserialize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (stage name or journal event label).
    pub name: String,
    /// Category (`"pipeline"` or `"journal"`).
    pub cat: String,
    /// Phase: `"X"` complete event (with `dur`) or `"i"` instant.
    pub ph: String,
    /// Timestamp, microseconds.
    pub ts: f64,
    /// Duration, microseconds (complete events only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dur: Option<f64>,
    /// Process id (one per exported component).
    pub pid: u64,
    /// Thread id (the trace id for pipeline spans).
    pub tid: u64,
    /// Instant-event scope (`"p"` = process), instants only.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub s: Option<String>,
    /// Free-form payload (journal event fields).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub args: Option<serde_json::Value>,
}

/// A Chrome `trace_event` JSON document (object form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// The events, in timestamp order.
    #[serde(rename = "traceEvents")]
    pub trace_events: Vec<TraceEvent>,
    /// Display unit hint for the viewer.
    #[serde(rename = "displayTimeUnit")]
    pub display_time_unit: String,
    /// Metadata: maps pid → component name.
    #[serde(
        rename = "otherData",
        skip_serializing_if = "BTreeMap::is_empty",
        default
    )]
    pub other_data: BTreeMap<String, String>,
}

/// Exports pipeline spans and journal events as a Chrome trace. Each
/// `(name, tracer)` pair becomes one pid whose tids are trace ids; each
/// `(name, journal)` pair becomes one pid of instant events. Open the
/// serialized JSON in Perfetto or `chrome://tracing`.
pub fn chrome_trace(
    tracers: &[(String, PipelineTracer)],
    journals: &[(String, EventJournal)],
) -> ChromeTrace {
    let mut events = Vec::new();
    let mut other_data = BTreeMap::new();
    let mut pid = 0u64;
    for (name, tracer) in tracers {
        pid += 1;
        other_data.insert(format!("pid{pid}"), name.clone());
        for span in tracer.spans() {
            events.push(TraceEvent {
                name: span.stage.clone(),
                cat: "pipeline".to_string(),
                ph: "X".to_string(),
                ts: span.start_ns as f64 / 1_000.0,
                dur: Some((span.end_ns - span.start_ns) as f64 / 1_000.0),
                pid,
                tid: span.trace,
                s: None,
                args: None,
            });
        }
    }
    for (name, journal) in journals {
        pid += 1;
        other_data.insert(format!("pid{pid}"), name.clone());
        for event in journal.recent(usize::MAX) {
            let Event {
                seq,
                at_us,
                source,
                trace,
                kind,
            } = event;
            let mut args = serde_json::to_value(&kind).unwrap_or_default();
            if let Some(map) = args.as_object_mut() {
                map.insert("seq".into(), seq.into());
                map.insert("source".into(), source.clone().into());
            }
            events.push(TraceEvent {
                name: kind.label().to_string(),
                cat: "journal".to_string(),
                ph: "i".to_string(),
                ts: at_us as f64,
                dur: None,
                pid,
                tid: trace.unwrap_or(0),
                s: Some("p".to_string()),
                args: Some(args),
            });
        }
    }
    events.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    ChromeTrace {
        trace_events: events,
        display_time_unit: "ms".to_string(),
        other_data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::journal::EventKind;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new("dc0");
        reg.counter("dc0.batcher0.in").add(42);
        reg.gauge("dc0.queue0.queue.depth").set(-3);
        let h = reg.histogram("dc0.batcher.latency_us");
        for v in [10, 20, 30, 40, 1000] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_text_roundtrips_the_parse_check() {
        let snap = sample_snapshot();
        let text = prometheus_text(&snap);
        let parsed = parse_prometheus_text(&text).expect("rendered output must parse");
        assert_eq!(parsed.samples["dc0_batcher0_in"], 42.0);
        assert_eq!(parsed.samples["dc0_queue0_queue_depth"], -3.0);
        assert_eq!(parsed.types["dc0_batcher_latency_us"], "summary");
        assert_eq!(parsed.samples["dc0_batcher_latency_us_count"], 5.0);
        assert_eq!(parsed.samples["dc0_batcher_latency_us_sum"], 1100.0);
        assert!(parsed
            .samples
            .contains_key("dc0_batcher_latency_us{quantile=\"0.99\"}"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus_text("9leading_digit 1").is_err());
        assert!(parse_prometheus_text("bad-char 1").is_err());
        assert!(parse_prometheus_text("no_value").is_err());
        assert!(parse_prometheus_text("name{unclosed 1").is_err());
        assert!(parse_prometheus_text("x notanumber").is_err());
        assert!(parse_prometheus_text("# TYPE x sideways").is_err());
        assert!(parse_prometheus_text("# HELP x fine\nx 1\n").is_ok());
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("dc0.batcher0.in"), "dc0_batcher0_in");
        assert_eq!(sanitize("0weird"), "_0weird");
        assert_eq!(sanitize("ok:name_1"), "ok:name_1");
    }

    #[test]
    fn chrome_trace_schema_validates_and_roundtrips() {
        let reg = MetricsRegistry::new("dc0");
        let tracer = PipelineTracer::new(&["batcher", "queue"], 1, &reg, "dc0");
        let id = tracer.sample().unwrap();
        let st = tracer.stage("batcher");
        st.enter(Some(id));
        st.exit(Some(id));
        reg.journal().publish(
            "dc0.sender",
            Some(chariots_types::TraceId(7)),
            EventKind::WanRetransmit { peer: 1 },
        );

        let trace = chrome_trace(
            &[("dc0".to_string(), tracer)],
            &[("dc0".to_string(), reg.journal().clone())],
        );
        assert_eq!(trace.trace_events.len(), 2);

        // Schema check per the trace_event spec: every event carries
        // name/cat/ph/ts/pid/tid; "X" events carry dur; "i" events carry a
        // scope. The JSON roundtrips through the typed model.
        let json = serde_json::to_value(&trace).unwrap();
        let events = json["traceEvents"].as_array().unwrap();
        for e in events {
            for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e}");
            }
            match e["ph"].as_str().unwrap() {
                "X" => assert!(e["dur"].as_f64().is_some(), "complete event without dur"),
                "i" => assert!(e["s"].as_str().is_some(), "instant event without scope"),
                ph => panic!("unexpected phase {ph}"),
            }
        }
        assert_eq!(json["displayTimeUnit"], "ms");
        let back: ChromeTrace = serde_json::from_value(json).unwrap();
        assert_eq!(back, trace);

        // The journal instant keeps its trace correlation and payload.
        let instant = trace
            .trace_events
            .iter()
            .find(|e| e.ph == "i")
            .expect("journal event exported");
        assert_eq!(instant.tid, 7);
        let args = instant.args.as_ref().unwrap();
        assert_eq!(args["kind"], "wan_retransmit");
        assert_eq!(args["peer"], 1);
    }
}
