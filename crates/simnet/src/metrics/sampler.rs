//! The time-series sampler behind the paper's Fig. 9.

use std::time::{Duration, Instant};

use super::Counter;

/// One named series of per-interval counts (for Fig. 9-style plots).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name of the machine/stage being sampled.
    pub name: String,
    /// Records per interval, one entry per sample tick.
    pub deltas: Vec<u64>,
}

impl Series {
    /// Converts per-interval deltas into rates (units/second). A zero
    /// `interval` yields all-zero rates rather than `inf`/NaN.
    pub fn rates(&self, interval: Duration) -> Vec<f64> {
        let secs = interval.as_secs_f64();
        if secs == 0.0 {
            return vec![0.0; self.deltas.len()];
        }
        self.deltas.iter().map(|&d| d as f64 / secs).collect()
    }
}

/// A sampled multi-series time series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Sampling interval.
    pub interval: Duration,
    /// One series per sampled counter.
    pub series: Vec<Series>,
}

/// Samples a set of named counters every `interval` until `stop` returns
/// true, producing per-interval deltas. Runs inline on the calling thread —
/// this is [`Sampler`]'s private implementation; external callers use
/// [`Sampler::spawn`] (or the telemetry [`Collector`](super::Collector)).
/// A counter that resets or is replaced mid-run contributes a zero delta
/// for that tick (saturating), not a panic.
fn sample_until(
    counters: &[(String, Counter)],
    interval: Duration,
    mut stop: impl FnMut() -> bool,
) -> TimeSeries {
    let mut last: Vec<u64> = counters.iter().map(|(_, c)| c.get()).collect();
    let mut series: Vec<Series> = counters
        .iter()
        .map(|(name, _)| Series {
            name: name.clone(),
            deltas: Vec::new(),
        })
        .collect();
    let mut next_tick = Instant::now() + interval;
    while !stop() {
        crate::pacing::sleep_until(next_tick);
        next_tick += interval;
        for (i, (_, c)) in counters.iter().enumerate() {
            let now = c.get();
            series[i].deltas.push(now.saturating_sub(last[i]));
            last[i] = now;
        }
    }
    TimeSeries { interval, series }
}

/// A background counter sampler with stop/join semantics. The sampling
/// loop runs on its own thread; [`stop`](Sampler::stop) signals it and
/// joins, returning the accumulated [`TimeSeries`].
#[derive(Debug)]
pub struct Sampler {
    shutdown: crate::Shutdown,
    thread: std::thread::JoinHandle<TimeSeries>,
}

impl Sampler {
    /// Spawns a thread sampling `counters` every `interval` until
    /// [`stop`](Sampler::stop) is called.
    pub fn spawn(counters: Vec<(String, Counter)>, interval: Duration) -> Sampler {
        let shutdown = crate::Shutdown::new();
        let stop = shutdown.clone();
        let thread = std::thread::Builder::new()
            .name("sampler".into())
            .spawn(move || sample_until(&counters, interval, || stop.is_signaled()))
            .expect("spawn sampler thread");
        Sampler { shutdown, thread }
    }

    /// Signals the sampling loop and joins it, returning everything
    /// sampled so far. Returns within one `interval` of the call.
    pub fn stop(self) -> TimeSeries {
        self.shutdown.signal();
        self.thread.join().expect("sampler thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_collects_deltas() {
        let c = Counter::new();
        let sampler = Sampler::spawn(
            vec![("stage".to_string(), c.clone())],
            Duration::from_millis(20),
        );
        let producer = {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    c.add(10);
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        producer.join().unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let ts = sampler.stop();
        assert_eq!(ts.series.len(), 1);
        assert_eq!(ts.series[0].name, "stage");
        let total: u64 = ts.series[0].deltas.iter().sum();
        assert!(total <= 100);
        assert!(!ts.series[0].deltas.is_empty());
    }

    #[test]
    fn series_rates_divide_by_interval() {
        let s = Series {
            name: "x".into(),
            deltas: vec![50, 100],
        };
        assert_eq!(s.rates(Duration::from_millis(500)), vec![100.0, 200.0]);
    }

    #[test]
    fn spawned_sampler_stops_and_returns_series() {
        let c = Counter::new();
        let sampler = Sampler::spawn(
            vec![("stage".to_string(), c.clone())],
            Duration::from_millis(5),
        );
        for _ in 0..10 {
            c.add(10);
            std::thread::sleep(Duration::from_millis(2));
        }
        let ts = sampler.stop();
        assert_eq!(ts.series.len(), 1);
        assert_eq!(ts.series[0].name, "stage");
        let total: u64 = ts.series[0].deltas.iter().sum();
        assert!(total <= 100);
        assert!(
            !ts.series[0].deltas.is_empty(),
            "sampler ran at least one tick before stop"
        );
    }

    #[test]
    fn zero_interval_rates_are_zero() {
        let s = Series {
            name: "x".into(),
            deltas: vec![50, 100],
        };
        let rates = s.rates(Duration::ZERO);
        assert_eq!(rates, vec![0.0, 0.0]);
        assert!(rates.iter().all(|r| r.is_finite()));
    }
}
