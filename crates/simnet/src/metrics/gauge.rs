//! Point-in-time gauges.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A shared point-in-time value (e.g. a queue depth or the head of the
/// log). Relaxed atomics; readers tolerate slight skew.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (monotone watermark).
    #[inline]
    pub fn raise_to(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_sets_adds_and_raises() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        let g2 = g.clone(); // clones share the value
        g2.raise_to(5); // below current: no-op
        assert_eq!(g.get(), 7);
        g2.raise_to(42);
        assert_eq!(g.get(), 42);
    }
}
